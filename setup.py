# Editable-install shim: some sandboxes lack the wheel package that
# PEP 660 editable installs require; `python setup.py develop` is the
# equivalent fallback (see README).
from setuptools import setup

setup()
