# Fallback shim only: all metadata lives in pyproject.toml (setuptools
# reads it since 61).  Some sandboxes lack the `wheel` package that
# PEP 660 editable installs require; `python setup.py develop` is the
# equivalent fallback there.
from setuptools import setup

setup()
