"""Argument-validation helpers shared across the library.

All helpers raise ``ValueError`` with a message naming the offending
parameter, so call sites stay one-liners and error messages stay uniform.
"""

from __future__ import annotations

from typing import Any


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> None:
    """Raise unless ``value`` is a number strictly greater than zero."""
    _require_number(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Raise unless ``value`` is a number greater than or equal to zero."""
    _require_number(value, name)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def require_probability(value: float, name: str) -> None:
    """Raise unless ``value`` lies in the closed interval [0, 1]."""
    _require_number(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def _require_number(value: Any, name: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
