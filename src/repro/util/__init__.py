"""Small shared utilities: deterministic RNG handling, timing, validation."""

from repro.util.rng import derive_seed, make_rng
from repro.util.timing import Timer
from repro.util.validation import (
    require,
    require_non_negative,
    require_positive,
    require_probability,
)

__all__ = [
    "derive_seed",
    "make_rng",
    "Timer",
    "require",
    "require_non_negative",
    "require_positive",
    "require_probability",
]
