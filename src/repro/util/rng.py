"""Deterministic random-number handling.

Every stochastic component in the library accepts either an integer seed or a
ready-made :class:`random.Random`.  Centralising the conversion keeps the
whole pipeline reproducible: the synthetic-world generator derives one child
seed per sub-generator so that, e.g., adding an extra user does not perturb
the knowledge-base evolution stream.
"""

from __future__ import annotations

import hashlib
import random


def make_rng(seed_or_rng: int | random.Random | None) -> random.Random:
    """Return a :class:`random.Random` for ``seed_or_rng``.

    ``None`` yields a freshly, nondeterministically seeded generator;
    an ``int`` yields a deterministic generator; an existing ``Random`` is
    passed through unchanged (shared state, *not* a copy).
    """
    if seed_or_rng is None:
        return random.Random()
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    if isinstance(seed_or_rng, bool) or not isinstance(seed_or_rng, int):
        raise TypeError(
            f"seed must be an int, random.Random or None, got {type(seed_or_rng).__name__}"
        )
    return random.Random(seed_or_rng)


def derive_seed(base_seed: int, *labels: str) -> int:
    """Derive a stable child seed from ``base_seed`` and a label path.

    Uses SHA-256 over the base seed and labels, so child streams are
    independent of each other and insensitive to the order in which sibling
    components are constructed.

    >>> derive_seed(7, "users") == derive_seed(7, "users")
    True
    >>> derive_seed(7, "users") != derive_seed(7, "schema")
    True
    """
    digest = hashlib.sha256()
    digest.update(str(base_seed).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(label.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")
