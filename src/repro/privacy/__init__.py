"""Privacy substrate (system S16): anonymity, Section III.e.

Per-contributor evolution reports, subsumption-based generalisation
hierarchies, k-anonymisation (generalise or suppress) with a guaranteed
post-condition, and the information-loss/utility metrics of experiment E8.
"""

from repro.privacy.build import build_change_report
from repro.privacy.generalization import GeneralizationHierarchy, TOP
from repro.privacy.kanonymity import AnonymizedReport, anonymize_report
from repro.privacy.loss import (
    precision_loss,
    ranking_utility,
    reidentification_rate,
    suppression_rate,
)
from repro.privacy.report import ChangeRecord, EvolutionReport, ReportRow

__all__ = [
    "build_change_report",
    "GeneralizationHierarchy",
    "TOP",
    "AnonymizedReport",
    "anonymize_report",
    "precision_loss",
    "ranking_utility",
    "reidentification_rate",
    "suppression_rate",
    "ChangeRecord",
    "EvolutionReport",
    "ReportRow",
]
