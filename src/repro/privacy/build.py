"""Build per-contributor evolution reports from real deltas.

Bridges the delta layer and the privacy layer: every instance-level change
in an evolution context is attributed to the *instance* whose data changed
(the stand-in for the paper's data subject, e.g. the patient behind a health
record), bucketed under the classes the instance belongs to.

Schema-level changes (class/property declarations) carry no individual's
data and are excluded -- anonymity constrains personal data only.
"""

from __future__ import annotations

from typing import Set

from repro.kb.terms import IRI
from repro.measures.base import EvolutionContext
from repro.privacy.report import ChangeRecord, EvolutionReport


def build_change_report(context: EvolutionContext) -> EvolutionReport:
    """Attribute every instance-level change to its data subject.

    For each added/deleted triple whose subject is an instance (typed into
    at least one class in either version), one
    :class:`~repro.privacy.report.ChangeRecord` of amount 1 is emitted per
    class the instance belongs to, with the instance itself as contributor.
    """
    old_schema, new_schema = context.old_schema, context.new_schema
    report = EvolutionReport()
    for triple in list(context.delta.added) + list(context.delta.deleted):
        subject = triple.subject
        classes: Set[IRI] = set()
        classes |= old_schema.classes_of(subject)
        classes |= new_schema.classes_of(subject)
        for cls in sorted(classes, key=lambda c: c.value):
            report.add(
                ChangeRecord(cls=cls, contributor_id=str(subject), amount=1.0)
            )
    return report
