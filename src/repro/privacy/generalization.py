"""Generalisation hierarchies over the class subsumption forest.

k-anonymisation by generalisation climbs a value-generalisation hierarchy;
for knowledge-base evolution reports the natural hierarchy is the
subsumption forest itself: a too-specific row ("RareDisease, 1 patient")
merges upward into its superclass ("Disease, 140 patients").

The subsumption relation may give a class several superclasses; the
hierarchy picks the lexicographically smallest for determinism.  All roots
generalise to the synthetic top class :data:`TOP`, so every chain ends in a
single bucket that can always absorb leftovers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.kb.namespaces import Namespace
from repro.kb.schema import SchemaView
from repro.kb.terms import IRI

#: Synthetic top of every generalisation chain.
TOP = Namespace("http://repro.org/privacy#").Thing


class GeneralizationHierarchy:
    """Parent-per-class view of a schema's subsumption forest."""

    def __init__(self, schema: SchemaView) -> None:
        self._parents: Dict[IRI, IRI] = {}
        for cls in schema.classes():
            supers = sorted(schema.superclasses(cls), key=lambda c: c.value)
            # Ignore self-loops; pick the smallest superclass for determinism.
            supers = [s for s in supers if s != cls]
            if supers:
                self._parents[cls] = supers[0]

    def parent(self, cls: IRI) -> IRI:
        """The generalisation of ``cls`` (:data:`TOP` for roots and unknowns)."""
        if cls == TOP:
            return TOP
        parent = self._parents.get(cls, TOP)
        # Guard against subsumption cycles: a would-be ancestor equal to the
        # class itself generalises straight to TOP.
        return parent if parent != cls else TOP

    def chain(self, cls: IRI) -> List[IRI]:
        """The full generalisation chain ``cls -> ... -> TOP`` (inclusive)."""
        chain = [cls]
        seen = {cls}
        current = cls
        while current != TOP:
            current = self.parent(current)
            if current in seen:  # cycle guard
                current = TOP
            chain.append(current)
            seen.add(current)
        return chain

    def height(self, cls: IRI) -> int:
        """Number of generalisation steps from ``cls`` to :data:`TOP`."""
        return len(self.chain(cls)) - 1

    def max_height(self) -> int:
        """The tallest chain over all known classes (>= 1 when non-empty)."""
        known = set(self._parents) | set(self._parents.values())
        known.discard(TOP)
        return max((self.height(cls) for cls in known), default=0)

    def steps_between(self, specific: IRI, general: IRI) -> Optional[int]:
        """Steps from ``specific`` up to ``general`` (None if not an ancestor)."""
        chain = self.chain(specific)
        if general not in chain:
            return None
        return chain.index(general)
