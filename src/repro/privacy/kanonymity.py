"""k-anonymisation of evolution reports.

Guarantee: every row of the released report aggregates at least ``k``
distinct contributors (or is suppressed).  Two strategies:

``generalize`` (default)
    Bottom-up hierarchy climb, deepest classes first: a vulnerable row merges
    into its parent's row (creating it if needed).  A vulnerable *ancestor*
    bucket instead absorbs its smallest released descendant bucket, so
    siblings pool at their common ancestor and the released rows stay
    disjoint -- a reader can never subtract one released row from another to
    recover a suppressed individual's data.  Rows that cannot reach ``k``
    even at :data:`~repro.privacy.generalization.TOP` (fewer than ``k``
    contributors exist overall) are suppressed.

``suppress``
    Vulnerable rows are simply dropped.  Cheaper but loses whole regions;
    experiment E8 contrasts the two.

The released report maps each original class to the row that now covers it
(``covering``), which the utility metrics use to compare rankings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Set, Tuple

from repro.kb.terms import IRI
from repro.privacy.generalization import GeneralizationHierarchy, TOP
from repro.privacy.report import EvolutionReport, ReportRow


@dataclass(frozen=True)
class AnonymizedReport:
    """The released, k-anonymous report."""

    k: int
    rows: Tuple[ReportRow, ...]
    covering: Mapping[IRI, IRI]  # original class -> released class (or absent if suppressed)
    suppressed: FrozenSet[IRI]  # original classes whose data was dropped
    generalization_steps: Mapping[IRI, int]  # original class -> levels climbed

    def row_for(self, released_cls: IRI) -> ReportRow | None:
        """The released row for ``released_cls`` (None if absent)."""
        for row in self.rows:
            if row.cls == released_cls:
                return row
        return None

    def ranking(self) -> List[IRI]:
        """Released classes by decreasing total."""
        return [
            row.cls
            for row in sorted(self.rows, key=lambda r: (-r.total, r.cls.value))
        ]

    def is_k_anonymous(self) -> bool:
        """Post-condition check: every released row has >= k contributors."""
        return all(row.contributor_count >= self.k for row in self.rows)


@dataclass
class _Bucket:
    total: float = 0.0
    contributors: Set[str] = field(default_factory=set)
    members: Set[IRI] = field(default_factory=set)  # original classes absorbed


def anonymize_report(
    report: EvolutionReport,
    hierarchy: GeneralizationHierarchy,
    k: int,
    strategy: str = "generalize",
) -> AnonymizedReport:
    """Anonymise ``report`` so every released row has >= ``k`` contributors."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if strategy not in ("generalize", "suppress"):
        raise ValueError(f"strategy must be 'generalize' or 'suppress', got {strategy!r}")

    if strategy == "suppress":
        return _suppress(report, k)
    return _generalize(report, hierarchy, k)


def _suppress(report: EvolutionReport, k: int) -> AnonymizedReport:
    kept: List[ReportRow] = []
    covering: Dict[IRI, IRI] = {}
    suppressed: Set[IRI] = set()
    for row in report.rows():
        if row.contributor_count >= k:
            kept.append(row)
            covering[row.cls] = row.cls
        else:
            suppressed.add(row.cls)
    return AnonymizedReport(
        k=k,
        rows=tuple(kept),
        covering=covering,
        suppressed=frozenset(suppressed),
        generalization_steps={cls: 0 for cls in covering},
    )


def _generalize(
    report: EvolutionReport, hierarchy: GeneralizationHierarchy, k: int
) -> AnonymizedReport:
    # Buckets start as the original rows, keyed by their current class.
    buckets: Dict[IRI, _Bucket] = {}
    for row in report.rows():
        bucket = buckets.setdefault(row.cls, _Bucket())
        bucket.total += row.total
        bucket.contributors |= set(row.contributors)
        bucket.members.add(row.cls)

    # Deepest-first: merging children before parents lets siblings pool at
    # the parent instead of racing past it to TOP.
    def depth_key(cls: IRI) -> Tuple[int, str]:
        return (-hierarchy.height(cls), cls.value)

    def merge(source_cls: IRI, target_cls: IRI) -> None:
        source = buckets.pop(source_cls)
        target = buckets.setdefault(target_cls, _Bucket())
        target.total += source.total
        target.contributors |= source.contributors
        target.members |= source.members

    changed = True
    while changed:
        changed = False
        for cls in sorted(buckets, key=depth_key):
            bucket = buckets[cls]
            if len(bucket.contributors) >= k:
                continue
            # A vulnerable bucket first tries to absorb its smallest released
            # descendant: the released rows stay disjoint (no subtraction
            # attack recovers the vulnerable data) and the label stays as
            # specific as possible.  TOP never absorbs -- data stranded
            # there is suppressed rather than dragging safe rows to TOP.
            if cls != TOP:
                descendants = [
                    other
                    for other in buckets
                    if other != cls
                    and hierarchy.steps_between(other, cls) not in (None, 0)
                ]
                if descendants:
                    victim = min(
                        descendants,
                        key=lambda c: (len(buckets[c].contributors), c.value),
                    )
                    merge(victim, cls)
                    changed = True
                    break  # restart: bucket set changed
                merge(cls, hierarchy.parent(cls))
                changed = True
                break  # restart: depths changed

    rows: List[ReportRow] = []
    covering: Dict[IRI, IRI] = {}
    steps: Dict[IRI, int] = {}
    suppressed: Set[IRI] = set()
    for cls in sorted(buckets, key=lambda c: c.value):
        bucket = buckets[cls]
        if len(bucket.contributors) >= k:
            rows.append(ReportRow(cls, bucket.total, frozenset(bucket.contributors)))
            for member in bucket.members:
                covering[member] = cls
                climbed = hierarchy.steps_between(member, cls)
                steps[member] = climbed if climbed is not None else hierarchy.height(member)
        else:
            # Even TOP could not reach k: fewer than k contributors exist.
            suppressed |= bucket.members

    return AnonymizedReport(
        k=k,
        rows=tuple(rows),
        covering=covering,
        suppressed=frozenset(suppressed),
        generalization_steps=steps,
    )
