"""Evolution reports with per-contributor accounting.

Section III.e motivates anonymity with health data: "the patient health
records cannot be processed individually because of their sensitiveness.
Interestingly, data evolution can be studied from analyzing aggregations on
them ... But often, even if data is aggregated, it is possible to
re-identify sensitive patient's data."

The privacy unit here is the *contributor*: the data subject whose records
caused a change.  A :class:`ChangeRecord` attributes an amount of change on
a class to one contributor; an :class:`EvolutionReport` aggregates records
per class while remembering the distinct contributor set -- the quantity
k-anonymity constrains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List

from repro.kb.terms import IRI


@dataclass(frozen=True)
class ChangeRecord:
    """One contributor's share of the change on one class."""

    cls: IRI
    contributor_id: str
    amount: float = 1.0

    def __post_init__(self) -> None:
        if not self.contributor_id:
            raise ValueError("contributor_id must be non-empty")
        if self.amount < 0:
            raise ValueError(f"amount must be >= 0, got {self.amount}")


@dataclass(frozen=True)
class ReportRow:
    """One released row: a class, its change total, its contributor set."""

    cls: IRI
    total: float
    contributors: FrozenSet[str]

    @property
    def contributor_count(self) -> int:
        """Number of distinct contributors behind this row."""
        return len(self.contributors)


class EvolutionReport:
    """Per-class aggregation of change records.

    Rows are exposed in deterministic (IRI) order.  ``row_for`` returns the
    row of one class; ``vulnerable_rows(k)`` lists the rows whose contributor
    count is below ``k`` -- the re-identification surface the anonymiser
    must eliminate.
    """

    def __init__(self, records: Iterable[ChangeRecord] = ()) -> None:
        self._totals: Dict[IRI, float] = {}
        self._contributors: Dict[IRI, set] = {}
        for record in records:
            self.add(record)

    def add(self, record: ChangeRecord) -> None:
        """Fold one record into the report."""
        self._totals[record.cls] = self._totals.get(record.cls, 0.0) + record.amount
        self._contributors.setdefault(record.cls, set()).add(record.contributor_id)

    def rows(self) -> List[ReportRow]:
        """All rows, IRI-ordered."""
        return [
            ReportRow(cls, self._totals[cls], frozenset(self._contributors[cls]))
            for cls in sorted(self._totals, key=lambda c: c.value)
        ]

    def row_for(self, cls: IRI) -> ReportRow | None:
        """The row of ``cls``, or None if the class has no records."""
        if cls not in self._totals:
            return None
        return ReportRow(cls, self._totals[cls], frozenset(self._contributors[cls]))

    def classes(self) -> List[IRI]:
        """Classes with at least one record, IRI-ordered."""
        return sorted(self._totals, key=lambda c: c.value)

    def vulnerable_rows(self, k: int) -> List[ReportRow]:
        """Rows re-identifiable at threshold ``k`` (contributors < k)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return [row for row in self.rows() if row.contributor_count < k]

    def ranking(self) -> List[IRI]:
        """Classes by decreasing change total (deterministic tie-break)."""
        return [
            cls
            for cls, _ in sorted(
                self._totals.items(), key=lambda kv: (-kv[1], kv[0].value)
            )
        ]

    def total_amount(self) -> float:
        """Sum of change amounts over all rows."""
        return sum(self._totals.values())

    def __len__(self) -> int:
        return len(self._totals)

    def __iter__(self) -> Iterator[ReportRow]:
        return iter(self.rows())
