"""Information-loss and utility metrics for anonymised evolution reports.

Experiment E8 sweeps ``k`` and reports, per the paper's anonymity
discussion, how much analytical value the aggregation costs:

* :func:`reidentification_rate` -- the privacy risk before release,
* :func:`suppression_rate` and :func:`precision_loss` -- information loss,
* :func:`ranking_utility` -- how well the released report still answers the
  question the whole system exists for: *which parts changed most?*
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict

from repro.privacy.generalization import GeneralizationHierarchy
from repro.privacy.kanonymity import AnonymizedReport
from repro.privacy.report import EvolutionReport


def reidentification_rate(report: EvolutionReport, k: int) -> float:
    """Fraction of rows with fewer than ``k`` contributors (risk surface)."""
    rows = report.rows()
    if not rows:
        return 0.0
    return len(report.vulnerable_rows(k)) / len(rows)


def suppression_rate(report: EvolutionReport, anonymized: AnonymizedReport) -> float:
    """Fraction of original classes whose data was dropped entirely."""
    classes = report.classes()
    if not classes:
        return 0.0
    return len(anonymized.suppressed) / len(classes)


def precision_loss(
    anonymized: AnonymizedReport, hierarchy: GeneralizationHierarchy
) -> float:
    """Sweeney-style precision loss: mean generalisation height, normalised.

    0.0 = every class released at its own level; 1.0 = everything climbed
    its full chain (or was suppressed, which counts as a full climb).
    """
    max_height = hierarchy.max_height()
    if max_height == 0:
        return 0.0
    losses = []
    for cls, steps in anonymized.generalization_steps.items():
        height = hierarchy.height(cls)
        losses.append(steps / height if height else 0.0)
    for cls in anonymized.suppressed:
        losses.append(1.0)
    if not losses:
        return 0.0
    return sum(losses) / len(losses)


def ranking_utility(report: EvolutionReport, anonymized: AnonymizedReport) -> float:
    """Pairwise order agreement between true and released change rankings.

    For every pair of original classes that both survived release, compare
    their true change totals with the totals of their covering released
    rows.  Concordant pairs score 1, ties in the released view score 0.5
    (the released report can no longer distinguish them), discordant pairs
    score 0.  Returns 1.0 for degenerate reports (fewer than two survivors).
    """
    truth: Dict = {}
    released: Dict = {}
    for row in report.rows():
        covering = anonymized.covering.get(row.cls)
        if covering is None:
            continue
        truth[row.cls] = row.total
        covering_row = anonymized.row_for(covering)
        released[row.cls] = covering_row.total if covering_row else 0.0

    classes = sorted(truth, key=lambda c: c.value)
    if len(classes) < 2:
        return 1.0

    score = 0.0
    pairs = 0
    for a, b in combinations(classes, 2):
        true_diff = truth[a] - truth[b]
        released_diff = released[a] - released[b]
        if true_diff == 0:
            # The truth cannot order them; any released order is acceptable.
            score += 1.0
        elif released_diff == 0:
            score += 0.5
        elif (true_diff > 0) == (released_diff > 0):
            score += 1.0
        pairs += 1
    return score / pairs
