"""The recommendation engine: the paper's processing model, end to end.

``RecommenderEngine`` ties every perspective together:

1. *Measures* (Section II): the catalogue scores every class/property on the
   evolution context.
2. *Relatedness* (III.a): candidates are scored against the human's profile
   (and collaborative feedback when available).
3. *Diversity* (III.c): the package is diversified (MMR / Max-Min /
   coverage / novelty), not just truncated.
4. *Fairness* (III.d): group recommendations use group-aware selection.
5. *Transparency* (III.b): the pipeline runs through a provenance-capturing
   workflow and every item carries an explanation.
6. *Anonymity* (III.e): change reports derived from the same context can be
   released k-anonymously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.kb.version import VersionedKnowledgeBase
from repro.measures.base import EvolutionContext, MeasureCatalog, MeasureResult
from repro.measures.catalog import default_catalog
from repro.measures.structural import class_graph
from repro.privacy.build import build_change_report
from repro.privacy.generalization import GeneralizationHierarchy
from repro.privacy.kanonymity import AnonymizedReport, anonymize_report
from repro.privacy.report import EvolutionReport
from repro.profiles.feedback import FeedbackStore
from repro.profiles.group import Group
from repro.profiles.user import User
from repro.provenance.store import ProvenanceStore
from repro.provenance.workflow import Workflow
from repro.recommender.diversity import (
    ItemDistance,
    coverage_select,
    max_min_select,
    mmr_select,
    novelty_select,
)
from repro.recommender.fairness import STRATEGIES, select_package
from repro.recommender.items import (
    RecommendationItem,
    RecommendationPackage,
    ScoredItem,
)
from repro.recommender.ranking import (
    generate_candidates,
    rank_items,
    utility_scores_batch,
)
from repro.recommender.relatedness import RelatednessScorer
from repro.recommender.transparency import explain_item
from repro.util.validation import require_probability

DIVERSIFIERS = ("none", "mmr", "max_min", "coverage", "novelty")


@dataclass(frozen=True)
class EngineConfig:
    """All engine knobs in one place (the ablation surface of E4/E5/E7)."""

    k: int = 10
    per_measure_candidates: int | None = 25
    alpha: float = 0.6  # semantic vs collaborative relatedness blend
    diversifier: str = "mmr"
    mmr_lambda: float = 0.7
    group_strategy: str = "fairness_aware"
    fairness_beta: float = 0.5
    spread_depth: int = 0  # interest spreading hops (0 = profile as-is)
    spread_decay: float = 0.5

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValueError(f"k must be >= 0, got {self.k}")
        require_probability(self.alpha, "alpha")
        require_probability(self.mmr_lambda, "mmr_lambda")
        require_probability(self.fairness_beta, "fairness_beta")
        require_probability(self.spread_decay, "spread_decay")
        if self.diversifier not in DIVERSIFIERS:
            raise ValueError(
                f"diversifier must be one of {DIVERSIFIERS}, got {self.diversifier!r}"
            )
        if self.group_strategy not in STRATEGIES:
            raise ValueError(
                f"group_strategy must be one of {STRATEGIES}, got {self.group_strategy!r}"
            )


class RecommenderEngine:
    """Facade over the full human-aware recommendation pipeline."""

    def __init__(
        self,
        kb: VersionedKnowledgeBase,
        catalog: MeasureCatalog | None = None,
        config: EngineConfig | None = None,
        feedback: FeedbackStore | None = None,
        provenance_store: ProvenanceStore | None = None,
    ) -> None:
        self._kb = kb
        self._catalog = catalog or default_catalog()
        self._config = config or EngineConfig()
        self._feedback = feedback
        self._workflow = Workflow("recommender", provenance_store)
        self._context_cache: EvolutionContext | None = None
        self._contexts_by_pair: Dict[Tuple[str, str], EvolutionContext] = {}
        # Contexts hash by identity, so they key their own cache entries.
        self._results_cache: Dict[EvolutionContext, Mapping[str, MeasureResult]] = {}
        self._candidates_cache: Dict[EvolutionContext, List[RecommendationItem]] = {}
        self._by_key_cache: Dict[EvolutionContext, Dict[str, RecommendationItem]] = {}
        self._scorer: RelatednessScorer | None = None

    # -- shared pipeline pieces ---------------------------------------------------

    @property
    def catalog(self) -> MeasureCatalog:
        """The measure catalogue being recommended from."""
        return self._catalog

    @property
    def config(self) -> EngineConfig:
        """The engine configuration."""
        return self._config

    @property
    def workflow(self) -> Workflow:
        """The provenance-capturing workflow (capture may be disabled)."""
        return self._workflow

    def context(self) -> EvolutionContext:
        """The default evolution context: the latest version pair."""
        if self._context_cache is None:
            versions = list(self._kb)
            if len(versions) < 2:
                raise ValueError(
                    "knowledge base needs at least two versions to recommend on"
                )
            self._context_cache = self.context_for(
                versions[-2].version_id, versions[-1].version_id
            )
        return self._context_cache

    def context_for(self, old_id: str, new_id: str) -> EvolutionContext:
        """The evolution context between two named versions (cached per pair).

        Contexts come from the KB's own :class:`~repro.kb.version.Version`
        objects, so adjacent pairs reuse the delta recorded at commit time
        and every derived artefact memoised on a version's schema view
        (betweenness, semantic centralities) is shared across all contexts
        touching that version -- walking a chain pair-by-pair updates each
        artefact incrementally from its parent instead of recomputing cold.
        """
        key = (old_id, new_id)
        if key not in self._contexts_by_pair:
            self._contexts_by_pair[key] = EvolutionContext(
                self._kb.version(old_id), self._kb.version(new_id)
            )
        return self._contexts_by_pair[key]

    def contexts(self) -> List[EvolutionContext]:
        """One cached context per adjacent version pair, in chain order."""
        return [
            self.context_for(old.version_id, new.version_id)
            for old, new in self._kb.pairs()
        ]

    def measure_results(
        self, context: EvolutionContext | None = None
    ) -> Mapping[str, MeasureResult]:
        """All measure results on the context (cached per context)."""
        context = context or self.context()
        key = context
        if key not in self._results_cache:
            run = self._workflow.run_task(
                "compute_measures",
                self._catalog.compute_all,
                args=(context,),
                output_label=f"measure results {context.old.version_id}->{context.new.version_id}",
            )
            self._results_cache[key] = run.value
        return self._results_cache[key]

    def candidates(
        self, context: EvolutionContext | None = None
    ) -> List[RecommendationItem]:
        """The candidate item pool (cached per context)."""
        context = context or self.context()
        key = context
        if key not in self._candidates_cache:
            results = self.measure_results(context)
            run = self._workflow.run_task(
                "generate_candidates",
                generate_candidates,
                args=(self._catalog, context),
                kwargs={
                    "per_measure": self._config.per_measure_candidates,
                    "results": results,
                },
                output_label="candidate items",
            )
            self._candidates_cache[key] = run.value
        return self._candidates_cache[key]

    def scorer(self, context: EvolutionContext | None = None) -> RelatednessScorer:
        """The relatedness scorer (built once; uses the new version's schema)."""
        if self._scorer is None:
            context = context or self.context()
            self._scorer = RelatednessScorer(
                alpha=self._config.alpha,
                feedback=self._feedback,
                schema=context.new_schema,
                spread_decay=self._config.spread_decay,
                spread_depth=self._config.spread_depth,
            )
        return self._scorer

    def _distance(self, context: EvolutionContext) -> ItemDistance:
        return ItemDistance(class_graph=class_graph(context.new_schema))

    def _diversify(
        self,
        ranked: Sequence[ScoredItem],
        k: int,
        context: EvolutionContext,
        seen: Sequence[RecommendationItem] = (),
    ) -> List[ScoredItem]:
        name = self._config.diversifier
        if name == "none":
            return list(ranked[:k])
        distance = self._distance(context)
        if name == "mmr":
            return mmr_select(ranked, k, distance, self._config.mmr_lambda)
        if name == "max_min":
            return max_min_select(ranked, k, distance, self._config.mmr_lambda)
        if name == "coverage":
            return coverage_select(ranked, k, distance)
        return novelty_select(ranked, k, distance, seen, self._config.mmr_lambda)

    def _candidates_by_key(
        self, context: EvolutionContext | None = None
    ) -> Dict[str, RecommendationItem]:
        """Candidate items keyed by item key (cached per context)."""
        context = context or self.context()
        key = context
        if key not in self._by_key_cache:
            self._by_key_cache[key] = {
                item.key: item for item in self.candidates(context)
            }
        return self._by_key_cache[key]

    def _seen_items(
        self, user: User, context: EvolutionContext | None = None
    ) -> List[RecommendationItem]:
        """Items the user has already interacted with (novelty history)."""
        if self._feedback is None:
            return []
        seen: List[RecommendationItem] = []
        by_key = self._candidates_by_key(context)
        for key in self._feedback.ratings_by_user(user.user_id):
            if key in by_key:
                seen.append(by_key[key])
        return seen

    # -- single-user recommendation -------------------------------------------------

    def recommend(
        self,
        user: User,
        k: int | None = None,
        context: EvolutionContext | None = None,
    ) -> RecommendationPackage:
        """Recommend a diversified, explained package for one human."""
        context = context or self.context()
        k = self._config.k if k is None else k
        candidates = self.candidates(context)
        scorer = self.scorer(context)

        relatedness_by_key: Dict[str, float] = {}

        def _score_utilities() -> Dict[str, float]:
            # One batch pass yields both the utilities and the relatedness
            # values the explanations need.
            scores = scorer.score_batch([user], candidates)[user.user_id]
            relatedness_by_key.update(
                (item.key, float(related)) for item, related in zip(candidates, scores)
            )
            return {
                item.key: float(item.evolution_score * related)
                for item, related in zip(candidates, scores)
            }

        utilities_run = self._workflow.run_task(
            "score_utilities",
            _score_utilities,
            output_label=f"utilities for {user.user_id}",
        )
        ranked = rank_items(candidates, utilities_run.value)
        selected = self._diversify(ranked, k, context, seen=self._seen_items(user, context))

        relatedness = {
            scored.item.key: relatedness_by_key[scored.item.key] for scored in selected
        }
        explanations = {
            scored.item.key: explain_item(
                scored, user, self._catalog, relatedness[scored.item.key]
            )
            for scored in selected
        }
        package = RecommendationPackage(
            items=tuple(selected),
            audience=user.user_id,
            explanations=explanations,
            metadata={
                "context": f"{context.old.version_id}->{context.new.version_id}",
                "diversifier": self._config.diversifier,
            },
        )
        self._workflow.run_task(
            "assemble_package",
            lambda: package,
            inputs=[utilities_run.output],
            output_label=f"package for {user.user_id}",
        )
        return package

    # -- group recommendation ----------------------------------------------------------

    def recommend_group(
        self,
        group: Group,
        k: int | None = None,
        strategy: str | None = None,
        context: EvolutionContext | None = None,
    ) -> RecommendationPackage:
        """Recommend one package for a whole group (Section III.d)."""
        context = context or self.context()
        k = self._config.k if k is None else k
        strategy = strategy or self._config.group_strategy
        candidates = self.candidates(context)
        scorer = self.scorer(context)

        # One batch pass scores all candidates for all members at once over
        # the interned profile vectors (same values as per-member
        # utility_scores, minus the per-(user, item) Python overhead).
        utilities = utility_scores_batch(list(group), candidates, scorer)
        selected = select_package(
            group,
            candidates,
            utilities,
            k,
            strategy=strategy,
            beta=self._config.fairness_beta,
        )
        explanations = {
            scored.item.key: (
                f"Group pick ({strategy}): "
                + "; ".join(
                    f"{member.user_id} utility "
                    f"{utilities[member.user_id].get(scored.item.key, 0.0):.2f}"
                    for member in group
                )
            )
            for scored in selected
        }
        return RecommendationPackage(
            items=tuple(selected),
            audience=group.group_id,
            explanations=explanations,
            metadata={
                "context": f"{context.old.version_id}->{context.new.version_id}",
                "strategy": strategy,
            },
        )

    # -- anonymised reporting --------------------------------------------------------

    def change_report(self, context: EvolutionContext | None = None) -> EvolutionReport:
        """The per-contributor change report of the context (Section III.e)."""
        context = context or self.context()
        return build_change_report(context)

    def anonymized_report(
        self,
        k: int,
        strategy: str = "generalize",
        context: EvolutionContext | None = None,
    ) -> AnonymizedReport:
        """A k-anonymous release of the change report."""
        context = context or self.context()
        report = self.change_report(context)
        hierarchy = GeneralizationHierarchy(context.new_schema)
        return anonymize_report(report, hierarchy, k, strategy=strategy)

    # -- transparency ------------------------------------------------------------------

    def explain(self, entity_id: str) -> List[str]:
        """Provenance answers for an entity produced by this engine."""
        return self._workflow.explain(entity_id)
