"""The recommendation engine: the paper's processing model, end to end.

``RecommenderEngine`` ties every perspective together:

1. *Measures* (Section II): the catalogue scores every class/property on the
   evolution context.
2. *Relatedness* (III.a): candidates are scored against the human's profile
   (and collaborative feedback when available).
3. *Diversity* (III.c): the package is diversified (MMR / Max-Min /
   coverage / novelty), not just truncated.
4. *Fairness* (III.d): group recommendations use group-aware selection.
5. *Transparency* (III.b): the pipeline runs through a provenance-capturing
   workflow and every item carries an explanation.
6. *Anonymity* (III.e): change reports derived from the same context can be
   released k-anonymously.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.kb.version import VersionedKnowledgeBase
from repro.measures.base import EvolutionContext, MeasureCatalog, MeasureResult
from repro.measures.catalog import default_catalog
from repro.measures.structural import class_graph
from repro.privacy.build import build_change_report
from repro.privacy.generalization import GeneralizationHierarchy
from repro.privacy.kanonymity import AnonymizedReport, anonymize_report
from repro.privacy.report import EvolutionReport
from repro.profiles.feedback import FeedbackStore
from repro.profiles.group import Group
from repro.profiles.user import User
from repro.provenance.store import ProvenanceStore
from repro.provenance.workflow import Workflow
from repro.recommender.diversity import (
    ItemDistance,
    coverage_select,
    max_min_select,
    mmr_select,
    novelty_select,
)
from repro.recommender.fairness import STRATEGIES, select_package
from repro.recommender.items import (
    RecommendationItem,
    RecommendationPackage,
    ScoredItem,
)
from repro.recommender.ranking import (
    generate_candidates,
    rank_items,
    utility_scores_batch,
)
from repro.recommender.relatedness import RelatednessScorer
from repro.recommender.transparency import explain_item
from repro.util.validation import require_probability

DIVERSIFIERS = ("none", "mmr", "max_min", "coverage", "novelty")


def _scores_from_row(
    candidates: Sequence[RecommendationItem], row
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """``(utilities, relatedness)`` per item key from one user's score row.

    The single definition both :meth:`RecommenderEngine.recommend` and
    :meth:`RecommenderEngine.recommend_many` reduce through -- the batched
    path's bit-identical guarantee is this shared arithmetic, not two
    copies kept in sync by hand.
    """
    relatedness = {
        item.key: float(related) for item, related in zip(candidates, row)
    }
    utilities = {
        item.key: float(item.evolution_score * related)
        for item, related in zip(candidates, row)
    }
    return utilities, relatedness


@dataclass(frozen=True)
class EngineConfig:
    """All engine knobs in one place (the ablation surface of E4/E5/E7)."""

    k: int = 10
    per_measure_candidates: int | None = 25
    alpha: float = 0.6  # semantic vs collaborative relatedness blend
    diversifier: str = "mmr"
    mmr_lambda: float = 0.7
    group_strategy: str = "fairness_aware"
    fairness_beta: float = 0.5
    spread_depth: int = 0  # interest spreading hops (0 = profile as-is)
    spread_decay: float = 0.5
    #: How many version pairs keep warm per-context artefacts (measure
    #: results, candidate pools, scorers).  A long-lived serving engine sees
    #: an unbounded stream of pairs as writers commit; beyond this many the
    #: oldest pair's caches are evicted (recomputable, never wrong).
    max_cached_contexts: int = 8

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValueError(f"k must be >= 0, got {self.k}")
        if self.max_cached_contexts < 1:
            raise ValueError(
                f"max_cached_contexts must be >= 1, got {self.max_cached_contexts}"
            )
        require_probability(self.alpha, "alpha")
        require_probability(self.mmr_lambda, "mmr_lambda")
        require_probability(self.fairness_beta, "fairness_beta")
        require_probability(self.spread_decay, "spread_decay")
        if self.diversifier not in DIVERSIFIERS:
            raise ValueError(
                f"diversifier must be one of {DIVERSIFIERS}, got {self.diversifier!r}"
            )
        if self.group_strategy not in STRATEGIES:
            raise ValueError(
                f"group_strategy must be one of {STRATEGIES}, got {self.group_strategy!r}"
            )


class _ContextArtefacts:
    """One context's cached pipeline artefacts, with their own fill lock.

    Per-entry locking means a cold fill for pair A never blocks a cold
    fill for an unrelated pair B -- only requests for the *same* context
    wait on (and then reuse) each other's computation, which is exactly
    the admission-batching story.  The lock is reentrant because
    ``candidates`` fills ``results`` under the same entry lock.
    """

    __slots__ = ("lock", "results", "candidates", "by_key", "scorer")

    def __init__(self) -> None:
        self.lock = threading.RLock()
        self.results: Mapping[str, MeasureResult] | None = None
        self.candidates: List[RecommendationItem] | None = None
        self.by_key: Dict[str, RecommendationItem] | None = None
        self.scorer: RelatednessScorer | None = None

    def fill(self, field: str, factory):
        """``getattr(self, field)``, computed by ``factory()`` exactly once.

        The engine-side sibling of :meth:`SchemaView.memoize`: one
        double-checked locked fill instead of a hand-copied idiom per
        artefact.  ``factory`` may itself fill other fields of the same
        entry (the lock is reentrant).
        """
        value = getattr(self, field)
        if value is None:
            with self.lock:
                value = getattr(self, field)
                if value is None:
                    value = factory()
                    setattr(self, field, value)
        return value


class RecommenderEngine:
    """Facade over the full human-aware recommendation pipeline.

    Engine instances are shareable across threads: every per-context
    artefact (measure results, candidate pool, scorer) lives in one bundle
    that fills under a per-context lock -- the first request for a cold
    pair computes, concurrent requests for the same pair wait and reuse,
    and unrelated pairs proceed in parallel.  The engine-wide lock only
    guards the (bounded) cache maps themselves; the scoring path reads
    immutable snapshots.
    """

    def __init__(
        self,
        kb: VersionedKnowledgeBase,
        catalog: MeasureCatalog | None = None,
        config: EngineConfig | None = None,
        feedback: FeedbackStore | None = None,
        provenance_store: ProvenanceStore | None = None,
    ) -> None:
        self._kb = kb
        self._catalog = catalog or default_catalog()
        self._config = config or EngineConfig()
        self._feedback = feedback
        self._workflow = Workflow("recommender", provenance_store)
        self._context_cache: EvolutionContext | None = None
        # Both maps are insertion-ordered and bounded by max_cached_contexts:
        # a serving engine sees an unbounded pair stream as writers commit,
        # so the oldest entries are evicted.  Contexts hash by identity, and
        # *every* context that acquires artefacts -- tracked pairs and
        # caller-constructed contexts alike -- goes through _artefacts, so
        # nothing can refill outside the bound.
        self._contexts_by_pair: "OrderedDict[Tuple[str, str], EvolutionContext]" = (
            OrderedDict()
        )
        self._artefacts: "OrderedDict[EvolutionContext, _ContextArtefacts]" = (
            OrderedDict()
        )
        # Guards the two cache maps only -- never held during computation.
        self._cache_lock = threading.RLock()

    # -- shared pipeline pieces ---------------------------------------------------

    @property
    def catalog(self) -> MeasureCatalog:
        """The measure catalogue being recommended from."""
        return self._catalog

    @property
    def config(self) -> EngineConfig:
        """The engine configuration."""
        return self._config

    @property
    def workflow(self) -> Workflow:
        """The provenance-capturing workflow (capture may be disabled)."""
        return self._workflow

    def context(self) -> EvolutionContext:
        """The default evolution context: the latest version pair."""
        if self._context_cache is None:
            with self._cache_lock:
                if self._context_cache is None:
                    versions = list(self._kb)
                    if len(versions) < 2:
                        raise ValueError(
                            "knowledge base needs at least two versions to recommend on"
                        )
                    self._context_cache = self.context_for(
                        versions[-2].version_id, versions[-1].version_id
                    )
        return self._context_cache

    def context_for(self, old_id: str, new_id: str) -> EvolutionContext:
        """The evolution context between two named versions (cached per pair).

        Contexts come from the KB's own :class:`~repro.kb.version.Version`
        objects, so adjacent pairs reuse the delta recorded at commit time
        and every derived artefact memoised on a version's schema view
        (betweenness, semantic centralities) is shared across all contexts
        touching that version -- walking a chain pair-by-pair updates each
        artefact incrementally from its parent instead of recomputing cold.
        """
        key = (old_id, new_id)
        context = self._contexts_by_pair.get(key)
        if context is None:
            with self._cache_lock:
                context = self._contexts_by_pair.get(key)
                if context is None:
                    context = EvolutionContext(
                        self._kb.version(old_id), self._kb.version(new_id)
                    )
                    self._contexts_by_pair[key] = context
                    self._evict_stale_contexts()
        return context

    def _artefacts_for(self, context: EvolutionContext) -> _ContextArtefacts:
        """The context's artefact bundle (created, and the caches bounded).

        Also the single chokepoint for eviction: every artefact fill passes
        through here, so re-requesting an evicted (or never-tracked)
        context re-registers a bounded entry instead of leaking one.
        """
        entry = self._artefacts.get(context)
        if entry is None:
            with self._cache_lock:
                entry = self._artefacts.get(context)
                if entry is None:
                    entry = _ContextArtefacts()
                    self._artefacts[context] = entry
                    self._evict_stale_contexts()
        return entry

    def _evict_stale_contexts(self) -> None:
        """Drop the oldest contexts' caches beyond the configured bound.

        Called under the cache lock.  Eviction only removes *this engine's*
        references: requests already holding an evicted context (or its
        artefact bundle) keep using it -- the context and its version
        snapshots stay alive and valid -- and a re-requested pair simply
        recomputes.  Bounded memory, never a wrong answer.  The
        default-context pair is pinned.
        """
        limit = self._config.max_cached_contexts
        while len(self._artefacts) > limit:
            victim = None
            for context in self._artefacts:
                if context is not self._context_cache:
                    victim = context
                    break
            if victim is None:  # only the pinned default context remains
                break
            del self._artefacts[victim]
            for key, context in list(self._contexts_by_pair.items()):
                if context is victim:
                    del self._contexts_by_pair[key]
        # Pair handles without artefacts yet (context_for without a fill)
        # are bounded the same way.
        while len(self._contexts_by_pair) > limit:
            for key, context in self._contexts_by_pair.items():
                if context is not self._context_cache:
                    break
            else:
                break
            del self._contexts_by_pair[key]

    def contexts(self) -> List[EvolutionContext]:
        """One cached context per adjacent version pair, in chain order."""
        return [
            self.context_for(old.version_id, new.version_id)
            for old, new in self._kb.pairs()
        ]

    def measure_results(
        self, context: EvolutionContext | None = None
    ) -> Mapping[str, MeasureResult]:
        """All measure results on the context (cached per context)."""
        context = context or self.context()

        def _compute() -> Mapping[str, MeasureResult]:
            run = self._workflow.run_task(
                "compute_measures",
                self._catalog.compute_all,
                args=(context,),
                output_label=(
                    f"measure results "
                    f"{context.old.version_id}->{context.new.version_id}"
                ),
            )
            return run.value

        return self._artefacts_for(context).fill("results", _compute)

    def candidates(
        self, context: EvolutionContext | None = None
    ) -> List[RecommendationItem]:
        """The candidate item pool (cached per context)."""
        context = context or self.context()

        def _generate() -> List[RecommendationItem]:
            results = self.measure_results(context)
            run = self._workflow.run_task(
                "generate_candidates",
                generate_candidates,
                args=(self._catalog, context),
                kwargs={
                    "per_measure": self._config.per_measure_candidates,
                    "results": results,
                },
                output_label="candidate items",
            )
            return run.value

        return self._artefacts_for(context).fill("candidates", _generate)

    def scorer(self, context: EvolutionContext | None = None) -> RelatednessScorer:
        """The relatedness scorer of one context (cached per context).

        Scorers are per-context because interest spreading runs over the
        *new* version's schema: one engine-wide scorer would pin every pair
        to whichever version was scored first, serving stale spread
        profiles after a commit.
        """
        context = context or self.context()
        return self._artefacts_for(context).fill(
            "scorer",
            lambda: RelatednessScorer(
                alpha=self._config.alpha,
                feedback=self._feedback,
                schema=context.new_schema,
                spread_decay=self._config.spread_decay,
                spread_depth=self._config.spread_depth,
            ),
        )

    def _distance(self, context: EvolutionContext) -> ItemDistance:
        return ItemDistance(class_graph=class_graph(context.new_schema))

    def _diversify(
        self,
        ranked: Sequence[ScoredItem],
        k: int,
        context: EvolutionContext,
        seen: Sequence[RecommendationItem] = (),
    ) -> List[ScoredItem]:
        name = self._config.diversifier
        if name == "none":
            return list(ranked[:k])
        distance = self._distance(context)
        if name == "mmr":
            return mmr_select(ranked, k, distance, self._config.mmr_lambda)
        if name == "max_min":
            return max_min_select(ranked, k, distance, self._config.mmr_lambda)
        if name == "coverage":
            return coverage_select(ranked, k, distance)
        return novelty_select(ranked, k, distance, seen, self._config.mmr_lambda)

    def _candidates_by_key(
        self, context: EvolutionContext | None = None
    ) -> Dict[str, RecommendationItem]:
        """Candidate items keyed by item key (cached per context)."""
        context = context or self.context()
        return self._artefacts_for(context).fill(
            "by_key",
            lambda: {item.key: item for item in self.candidates(context)},
        )

    def _seen_items(
        self, user: User, context: EvolutionContext | None = None
    ) -> List[RecommendationItem]:
        """Items the user has already interacted with (novelty history)."""
        if self._feedback is None:
            return []
        seen: List[RecommendationItem] = []
        by_key = self._candidates_by_key(context)
        for key in self._feedback.ratings_by_user(user.user_id):
            if key in by_key:
                seen.append(by_key[key])
        return seen

    # -- single-user recommendation -------------------------------------------------

    def recommend(
        self,
        user: User,
        k: int | None = None,
        context: EvolutionContext | None = None,
    ) -> RecommendationPackage:
        """Recommend a diversified, explained package for one human."""
        context = context or self.context()
        k = self._config.k if k is None else k
        candidates = self.candidates(context)
        scorer = self.scorer(context)

        relatedness_by_key: Dict[str, float] = {}

        def _score_utilities() -> Dict[str, float]:
            # One batch pass yields both the utilities and the relatedness
            # values the explanations need.
            scores = scorer.score_batch([user], candidates)[user.user_id]
            utilities, relatedness = _scores_from_row(candidates, scores)
            relatedness_by_key.update(relatedness)
            return utilities

        utilities_run = self._workflow.run_task(
            "score_utilities",
            _score_utilities,
            output_label=f"utilities for {user.user_id}",
        )
        package = self._assemble_package(
            user, k, context, candidates, utilities_run.value, relatedness_by_key
        )
        self._workflow.run_task(
            "assemble_package",
            lambda: package,
            inputs=[utilities_run.output],
            output_label=f"package for {user.user_id}",
        )
        return package

    def _assemble_package(
        self,
        user: User,
        k: int,
        context: EvolutionContext,
        candidates: Sequence[RecommendationItem],
        utilities: Mapping[str, float],
        relatedness_by_key: Mapping[str, float],
    ) -> RecommendationPackage:
        """Rank, diversify and explain one user's package from raw scores."""
        ranked = rank_items(candidates, utilities)
        selected = self._diversify(ranked, k, context, seen=self._seen_items(user, context))
        relatedness = {
            scored.item.key: relatedness_by_key[scored.item.key] for scored in selected
        }
        explanations = {
            scored.item.key: explain_item(
                scored, user, self._catalog, relatedness[scored.item.key]
            )
            for scored in selected
        }
        return RecommendationPackage(
            items=tuple(selected),
            audience=user.user_id,
            explanations=explanations,
            metadata={
                "context": f"{context.old.version_id}->{context.new.version_id}",
                "diversifier": self._config.diversifier,
            },
        )

    def recommend_many(
        self,
        users: Sequence[User],
        k: int | None = None,
        context: EvolutionContext | None = None,
    ) -> Dict[str, RecommendationPackage]:
        """Recommend to many humans with one batched relatedness sweep.

        The serving layer's admission queue coalesces concurrent requests
        for the same (tenant, version pair) into one call here: the
        candidate pool is interned and scored for all users in a single
        :meth:`RelatednessScorer.score_batch` pass, then each user's
        package is ranked, diversified and explained individually.
        Packages are bit-identical to calling :meth:`recommend` once per
        user -- ``score_batch`` computes every user's row independently, so
        batching changes cost, never values.
        """
        context = context or self.context()
        k = self._config.k if k is None else k
        users = list(users)
        candidates = self.candidates(context)
        scorer = self.scorer(context)
        scores_run = self._workflow.run_task(
            "score_utilities_batch",
            scorer.score_batch,
            args=(users, candidates),
            output_label=f"batched utilities for {len(users)} users",
        )
        packages: Dict[str, RecommendationPackage] = {}
        for user in users:
            utilities, relatedness_by_key = _scores_from_row(
                candidates, scores_run.value[user.user_id]
            )
            packages[user.user_id] = self._assemble_package(
                user, k, context, candidates, utilities, relatedness_by_key
            )
        return packages

    # -- group recommendation ----------------------------------------------------------

    def recommend_group(
        self,
        group: Group,
        k: int | None = None,
        strategy: str | None = None,
        context: EvolutionContext | None = None,
    ) -> RecommendationPackage:
        """Recommend one package for a whole group (Section III.d)."""
        context = context or self.context()
        k = self._config.k if k is None else k
        strategy = strategy or self._config.group_strategy
        candidates = self.candidates(context)
        scorer = self.scorer(context)

        # One batch pass scores all candidates for all members at once over
        # the interned profile vectors (same values as per-member
        # utility_scores, minus the per-(user, item) Python overhead).
        utilities = utility_scores_batch(list(group), candidates, scorer)
        selected = select_package(
            group,
            candidates,
            utilities,
            k,
            strategy=strategy,
            beta=self._config.fairness_beta,
        )
        explanations = {
            scored.item.key: (
                f"Group pick ({strategy}): "
                + "; ".join(
                    f"{member.user_id} utility "
                    f"{utilities[member.user_id].get(scored.item.key, 0.0):.2f}"
                    for member in group
                )
            )
            for scored in selected
        }
        return RecommendationPackage(
            items=tuple(selected),
            audience=group.group_id,
            explanations=explanations,
            metadata={
                "context": f"{context.old.version_id}->{context.new.version_id}",
                "strategy": strategy,
            },
        )

    # -- anonymised reporting --------------------------------------------------------

    def change_report(self, context: EvolutionContext | None = None) -> EvolutionReport:
        """The per-contributor change report of the context (Section III.e)."""
        context = context or self.context()
        return build_change_report(context)

    def anonymized_report(
        self,
        k: int,
        strategy: str = "generalize",
        context: EvolutionContext | None = None,
    ) -> AnonymizedReport:
        """A k-anonymous release of the change report."""
        context = context or self.context()
        report = self.change_report(context)
        hierarchy = GeneralizationHierarchy(context.new_schema)
        return anonymize_report(report, hierarchy, k, strategy=strategy)

    # -- transparency ------------------------------------------------------------------

    def explain(self, entity_id: str) -> List[str]:
        """Provenance answers for an entity produced by this engine."""
        return self._workflow.explain(entity_id)
