"""The relatedness perspective (Section III.a).

"Users would like to retrieve only a small piece of the evolved data, namely
the most relevant to their interests and needs."

Relatedness of an item ``(measure, target)`` to a user blends two signals:

semantic
    How much the user's interest profile covers the item's target class,
    weighted by the user's preference for the measure's family.  Optionally
    the profile is first *spread* over the class graph with per-hop decay,
    so interest in ``Person`` also lights up ``Student`` (an ablation knob
    of experiment E4).

collaborative
    Item-based collaborative filtering over the feedback store: items the
    user rated highly pull up similar items (cosine similarity of item
    rating vectors across users).

``score = alpha * semantic + (1 - alpha) * collaborative``; with no feedback
available the scorer degrades to the semantic part alone.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.kb.schema import SchemaView
from repro.kb.terms import IRI
from repro.measures.structural import class_graph
from repro.profiles.feedback import FeedbackStore
from repro.profiles.user import InterestProfile, User
from repro.recommender.items import RecommendationItem
from repro.graphtools.spread import spread_interest
from repro.util.validation import require_probability


def spread_profile(
    profile: InterestProfile,
    schema: SchemaView,
    decay: float = 0.5,
    depth: int = 2,
) -> InterestProfile:
    """Spread a profile's class interest over the schema's class graph.

    Each class the user cares about radiates ``decay ** distance`` interest
    to classes within ``depth`` hops; overlapping sources take the maximum
    (scaled by the source's own weight).
    """
    require_probability(decay, "decay")
    graph = class_graph(schema)
    spread: Dict[IRI, float] = dict(profile.class_weights)
    for focus, weight in profile.class_weights.items():
        if weight <= 0:
            continue
        for cls, base in spread_interest(graph, [focus], decay, depth).items():
            scaled = base * weight
            if scaled > spread.get(cls, 0.0):
                spread[cls] = scaled
    return InterestProfile(
        class_weights=spread, family_weights=dict(profile.family_weights)
    )


def semantic_relatedness(user: User, item: RecommendationItem) -> float:
    """Profile-based relatedness in [0, 1].

    Interest in the target class times the (normalised-to-1-max) family
    preference.  Family preferences are already in [0, 1] by convention of
    :class:`~repro.profiles.user.InterestProfile`.
    """
    interest = min(1.0, user.profile.interest_in(item.target))
    family = min(1.0, user.profile.family_preference(item.family))
    return interest * family


class CollaborativeModel:
    """Item-based CF over a feedback store.

    Similarities are cosine over the user x item mean-rating matrix,
    computed once at construction (numpy); prediction is the
    similarity-weighted average of the user's own ratings.
    """

    def __init__(self, store: FeedbackStore) -> None:
        self._users, self._items, matrix = store.matrix()
        self._user_index = {u: i for i, u in enumerate(self._users)}
        self._item_index = {k: j for j, k in enumerate(self._items)}
        self._matrix = matrix
        if matrix.size:
            norms = np.linalg.norm(matrix, axis=0)
            norms[norms == 0.0] = 1.0
            normalised = matrix / norms
            self._similarity = normalised.T @ normalised
        else:
            self._similarity = np.zeros((0, 0))

    def predict_batch(self, user_id: str, item_keys: Sequence[str]) -> "np.ndarray":
        """Predicted ratings for many items at once; ``nan`` marks undecidable.

        Vectorised but numerically identical to :meth:`predict`: each row's
        weighted average reduces the same values in the same order as the
        per-item code path.
        """
        return self.predict_matrix([user_id], item_keys)[0]

    def predict_matrix(
        self, user_ids: Sequence[str], item_keys: Sequence[str]
    ) -> "np.ndarray":
        """Predicted ratings for every (user, item) pair; ``nan`` marks undecidable.

        Returns an array of shape ``(len(user_ids), len(item_keys))``.  The
        item-side work -- key interning and the similarity-row gather -- is
        user-independent and done once for the whole matrix.
        """
        out = np.full((len(user_ids), len(item_keys)), np.nan)
        if not len(item_keys) or not len(user_ids):
            return out
        positions = [i for i, k in enumerate(item_keys) if k in self._item_index]
        if not positions:
            return out
        item_idxs = np.fromiter(
            (self._item_index[item_keys[i]] for i in positions),
            dtype=np.intp,
            count=len(positions),
        )
        similarity_rows = self._similarity[item_idxs]
        for row, user_id in enumerate(user_ids):
            user_idx = self._user_index.get(user_id)
            if user_idx is None:
                continue
            ratings = self._matrix[user_idx]
            rated = ratings > 0.0
            if not rated.any():
                continue
            # Boolean indexing copies, so clipping in place never touches
            # the shared similarity rows.
            similarities = similarity_rows[:, rated]
            similarities[similarities < 0.0] = 0.0
            weights = similarities.sum(axis=1)
            decidable = weights > 0.0
            values = np.full(len(positions), np.nan)
            if decidable.any():
                weighted = (similarities[decidable] * ratings[rated]).sum(axis=1)
                values[decidable] = np.minimum(
                    1.0, np.maximum(0.0, weighted / weights[decidable])
                )
            out[row, positions] = values
        return out

    def predict(self, user_id: str, item_key: str) -> Optional[float]:
        """Predicted rating in [0, 1], or None when undecidable.

        Undecidable: unknown user, or the user rated nothing that is
        similar to any known item.  An unknown item with a known user
        predicts from nothing and is also None.
        """
        user_idx = self._user_index.get(user_id)
        if user_idx is None:
            return None
        item_idx = self._item_index.get(item_key)
        if item_idx is None:
            return None
        ratings = self._matrix[user_idx]
        rated = ratings > 0.0
        if not rated.any():
            return None
        similarities = self._similarity[item_idx][rated].copy()
        similarities[similarities < 0.0] = 0.0
        weight = similarities.sum()
        if weight <= 0.0:
            return None
        value = float((similarities * ratings[rated]).sum() / weight)
        return min(1.0, max(0.0, value))

    def known_items(self) -> Sequence[str]:
        """Item keys the model has seen feedback for."""
        return list(self._items)


class RelatednessScorer:
    """The blended relatedness score (Section III.a).

    ``alpha`` weighs the semantic part; ``1 - alpha`` the collaborative
    part.  By default, items unknown to the collaborative model fall back to
    the semantic score alone (rather than being zeroed out), so cold-start
    items are never structurally suppressed; ``cold_start_fallback=False``
    scores undecidable predictions as 0 instead (used by the E4 ablation to
    isolate the pure collaborative signal).
    """

    def __init__(
        self,
        alpha: float = 0.6,
        feedback: FeedbackStore | None = None,
        schema: SchemaView | None = None,
        spread_decay: float = 0.5,
        spread_depth: int = 0,
        cold_start_fallback: bool = True,
    ) -> None:
        require_probability(alpha, "alpha")
        self._alpha = alpha
        self._model = CollaborativeModel(feedback) if feedback is not None else None
        self._schema = schema
        self._spread_decay = spread_decay
        self._spread_depth = spread_depth
        self._cold_start_fallback = cold_start_fallback
        # user_id -> (source profile, spread user).  The source profile is
        # kept for an identity check so replacing a user (same id, new
        # profile object) invalidates the cached spread instead of serving
        # the old interests forever.
        self._spread_cache: Dict[str, tuple] = {}

    def _effective_user(self, user: User) -> User:
        if self._schema is None or self._spread_depth <= 0:
            return user
        cached = self._spread_cache.get(user.user_id)
        if cached is None or cached[0] is not user.profile:
            spread_user = User(
                user_id=user.user_id,
                profile=spread_profile(
                    user.profile, self._schema, self._spread_decay, self._spread_depth
                ),
                name=user.name,
            )
            cached = (user.profile, spread_user)
            self._spread_cache[user.user_id] = cached
        return cached[1]

    def score(self, user: User, item: RecommendationItem) -> float:
        """Relatedness of ``item`` to ``user`` in [0, 1]."""
        semantic = semantic_relatedness(self._effective_user(user), item)
        if self._model is None:
            return semantic
        predicted = self._model.predict(user.user_id, item.key)
        if predicted is None:
            if self._cold_start_fallback:
                return semantic
            predicted = 0.0
        return self._alpha * semantic + (1.0 - self._alpha) * predicted

    def score_all(
        self, user: User, items: Sequence[RecommendationItem]
    ) -> Dict[str, float]:
        """Relatedness per item key."""
        return {item.key: self.score(user, item) for item in items}

    def score_batch(
        self, users: Sequence[User], items: Sequence[RecommendationItem]
    ) -> Dict[str, "np.ndarray"]:
        """Relatedness of every item for every user, in one vectorised pass.

        Returns ``{user_id: scores}`` with ``scores[i]`` the relatedness of
        ``items[i]`` (same value :meth:`score` would produce).  The item pool
        is interned once -- targets and families map to dense indices, each
        user's profile becomes two small weight vectors gathered through
        those indices -- so group and multi-user workloads cost one profile
        sweep per user instead of one Python call per (user, item) pair.
        """
        n_items = len(items)
        if n_items == 0:
            return {user.user_id: np.zeros(0) for user in users}
        # Intern the item pool: dense indices over distinct targets/families.
        targets = list(dict.fromkeys(item.target for item in items))
        families = list(dict.fromkeys(item.family for item in items))
        target_index = {t: i for i, t in enumerate(targets)}
        family_index = {f: i for i, f in enumerate(families)}
        target_of = np.fromiter(
            (target_index[item.target] for item in items), dtype=np.intp, count=n_items
        )
        family_of = np.fromiter(
            (family_index[item.family] for item in items), dtype=np.intp, count=n_items
        )
        keys = [item.key for item in items]
        if self._model is not None:
            predictions = self._model.predict_matrix([u.user_id for u in users], keys)

        results: Dict[str, np.ndarray] = {}
        for row, user in enumerate(users):
            profile = self._effective_user(user).profile
            interest = np.fromiter(
                (min(1.0, profile.interest_in(t)) for t in targets),
                dtype=float,
                count=len(targets),
            )
            preference = np.fromiter(
                (min(1.0, profile.family_preference(f)) for f in families),
                dtype=float,
                count=len(families),
            )
            semantic = interest[target_of] * preference[family_of]
            if self._model is None:
                results[user.user_id] = semantic
                continue
            predicted = predictions[row]
            undecidable = np.isnan(predicted)
            blended = self._alpha * semantic + (1.0 - self._alpha) * np.where(
                undecidable, 0.0, predicted
            )
            fallback = semantic if self._cold_start_fallback else self._alpha * semantic
            results[user.user_id] = np.where(undecidable, fallback, blended)
        return results
