"""The transparency perspective (Section III.b) inside the recommender.

Two mechanisms make recommendations transparent:

* :func:`explain_item` -- a per-item natural-language explanation naming the
  measure, what it captures, how strongly the target changed and why it is
  related to this human;
* the engine runs its pipeline stages through a provenance-capturing
  :class:`~repro.provenance.workflow.Workflow`, so for every package the
  store can answer *who created it, from what, by which process* (the
  paper's three questions; overhead measured by E9).
"""

from __future__ import annotations

from typing import Mapping

from repro.measures.base import MeasureCatalog
from repro.profiles.user import User
from repro.recommender.items import ScoredItem


def explain_item(
    scored: ScoredItem,
    user: User,
    catalog: MeasureCatalog,
    relatedness: float | None = None,
) -> str:
    """A one-paragraph explanation of why this item was recommended."""
    item = scored.item
    measure = catalog.get(item.measure_name)
    parts = [
        f"'{item.target.local_name}' ranked high under {item.measure_name} "
        f"(evolution score {item.evolution_score:.2f}).",
        measure.description,
    ]
    interest = user.profile.interest_in(item.target)
    if interest > 0:
        parts.append(
            f"Your profile weights this class at {interest:.2f}."
        )
    family_pref = user.profile.family_preference(item.family)
    if family_pref != 1.0:
        parts.append(
            f"You weight {item.family.value} measures at {family_pref:.2f}."
        )
    if relatedness is not None:
        parts.append(f"Overall relatedness: {relatedness:.2f}.")
    parts.append(f"Final utility: {scored.utility:.2f}.")
    return " ".join(part for part in parts if part)


def explain_package(
    package_items: Mapping[str, ScoredItem],
    user: User,
    catalog: MeasureCatalog,
    relatedness_scores: Mapping[str, float] | None = None,
) -> dict:
    """Explanations per item key for a whole package."""
    relatedness_scores = relatedness_scores or {}
    return {
        key: explain_item(scored, user, catalog, relatedness_scores.get(key))
        for key, scored in package_items.items()
    }
