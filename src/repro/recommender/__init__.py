"""The human-aware recommender (systems S12, S14, S15, S17).

Implements the paper's core contribution: recommending evolution measures
under the five Section III perspectives (relatedness, transparency,
diversity, fairness, anonymity).
"""

from repro.recommender.diversity import (
    ItemDistance,
    coverage_select,
    family_coverage,
    intra_list_distance,
    max_min_select,
    mmr_select,
    novelty_select,
)
from repro.recommender.engine import DIVERSIFIERS, EngineConfig, RecommenderEngine
from repro.recommender.fairness import (
    STRATEGIES,
    aggregate_average,
    aggregate_least_misery,
    catalog_coverage,
    long_tail_exposure,
    mean_satisfaction,
    min_satisfaction,
    satisfaction_gini,
    satisfaction_vector,
    select_package,
)
from repro.recommender.items import (
    RecommendationItem,
    RecommendationPackage,
    ScoredItem,
)
from repro.recommender.notifications import (
    Notification,
    NotificationService,
    Watch,
)
from repro.recommender.ranking import (
    generate_candidates,
    rank_items,
    utility_scores,
    utility_scores_batch,
)
from repro.recommender.relatedness import (
    CollaborativeModel,
    RelatednessScorer,
    semantic_relatedness,
    spread_profile,
)
from repro.recommender.transparency import explain_item, explain_package

__all__ = [
    "ItemDistance",
    "coverage_select",
    "family_coverage",
    "intra_list_distance",
    "max_min_select",
    "mmr_select",
    "novelty_select",
    "DIVERSIFIERS",
    "EngineConfig",
    "RecommenderEngine",
    "STRATEGIES",
    "aggregate_average",
    "aggregate_least_misery",
    "catalog_coverage",
    "long_tail_exposure",
    "mean_satisfaction",
    "min_satisfaction",
    "satisfaction_gini",
    "satisfaction_vector",
    "select_package",
    "RecommendationItem",
    "RecommendationPackage",
    "ScoredItem",
    "Notification",
    "NotificationService",
    "Watch",
    "generate_candidates",
    "rank_items",
    "utility_scores",
    "utility_scores_batch",
    "CollaborativeModel",
    "RelatednessScorer",
    "semantic_relatedness",
    "spread_profile",
    "explain_item",
    "explain_package",
]
