"""The fairness perspective (Section III.d) -- group recommendation.

"Given a particular set of measures, it is possible to have a human u that
is the least satisfied human in the group for all measures in the
recommendations list ... we should be able to recommend measures that are
both strongly related and fair to the majority of the group members."

Three package-selection strategies over per-user utilities:

``average``
    Top-k by mean utility across members -- the classic aggregation that
    the paper criticises (it can starve a minority member).
``least_misery``
    Top-k by the minimum member utility -- protects the least satisfied
    member item-by-item.
``fairness_aware``
    Greedy package construction maximising
    ``beta * mean_utility(package) + (1 - beta) * min_member_satisfaction(package)``
    where a member's *package satisfaction* is their mean utility over the
    package so far.  This is set-level fairness: it looks at the whole
    package, not individual items, exactly the paper's point.

Post-hoc diagnostics (:func:`satisfaction_vector`, :func:`min_satisfaction`,
:func:`satisfaction_gini`) provide the "insights into the properties of the
produced recommendations" the paper asks for.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence

from repro.profiles.group import Group
from repro.recommender.items import RecommendationItem, ScoredItem
from repro.util.validation import require_probability

#: Per-user utilities: user_id -> item key -> utility in [0, 1].
GroupUtilities = Mapping[str, Mapping[str, float]]

STRATEGIES = ("average", "least_misery", "fairness_aware")


def _check_utilities(group: Group, utilities: GroupUtilities) -> None:
    missing = [u.user_id for u in group if u.user_id not in utilities]
    if missing:
        raise ValueError(f"utilities missing for group members: {missing}")


def aggregate_average(group: Group, utilities: GroupUtilities, item_key: str) -> float:
    """Mean member utility of one item."""
    _check_utilities(group, utilities)
    return sum(utilities[u.user_id].get(item_key, 0.0) for u in group) / len(group)


def aggregate_least_misery(group: Group, utilities: GroupUtilities, item_key: str) -> float:
    """Minimum member utility of one item."""
    _check_utilities(group, utilities)
    return min(utilities[u.user_id].get(item_key, 0.0) for u in group)


def select_package(
    group: Group,
    candidates: Sequence[RecommendationItem],
    utilities: GroupUtilities,
    k: int,
    strategy: str = "fairness_aware",
    beta: float = 0.5,
) -> List[ScoredItem]:
    """Select a k-item package for the group under the given strategy.

    The returned :class:`ScoredItem` utilities are the *group* scores the
    strategy optimised (mean utility for ``average`` and ``fairness_aware``,
    minimum for ``least_misery``), so downstream ordering is meaningful.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    _check_utilities(group, utilities)

    if strategy == "average":
        return _top_by(group, candidates, utilities, k, aggregate_average)
    if strategy == "least_misery":
        return _top_by(group, candidates, utilities, k, aggregate_least_misery)
    return _greedy_fair(group, candidates, utilities, k, beta)


def _top_by(
    group: Group,
    candidates: Sequence[RecommendationItem],
    utilities: GroupUtilities,
    k: int,
    aggregate: Callable[[Group, GroupUtilities, str], float],
) -> List[ScoredItem]:
    scored = [
        ScoredItem(item=item, utility=aggregate(group, utilities, item.key))
        for item in candidates
    ]
    scored.sort(key=lambda s: (-s.utility, s.item.key))
    return scored[:k]


def _greedy_fair(
    group: Group,
    candidates: Sequence[RecommendationItem],
    utilities: GroupUtilities,
    k: int,
    beta: float,
) -> List[ScoredItem]:
    require_probability(beta, "beta")
    pool = sorted(candidates, key=lambda item: item.key)
    selected: List[RecommendationItem] = []
    member_totals: Dict[str, float] = {u.user_id: 0.0 for u in group}

    while pool and len(selected) < k:
        best_item = None
        best_value = float("-inf")
        for item in pool:
            size = len(selected) + 1
            totals = {
                uid: member_totals[uid] + utilities[uid].get(item.key, 0.0)
                for uid in member_totals
            }
            mean_utility = sum(totals.values()) / (len(totals) * size)
            min_member = min(totals.values()) / size
            value = beta * mean_utility + (1.0 - beta) * min_member
            if value > best_value + 1e-12:
                best_value = value
                best_item = item
        assert best_item is not None
        pool.remove(best_item)
        selected.append(best_item)
        for uid in member_totals:
            member_totals[uid] += utilities[uid].get(best_item.key, 0.0)

    group_scores = [
        ScoredItem(
            item=item,
            utility=aggregate_average(group, utilities, item.key),
        )
        for item in selected
    ]
    return group_scores


# -- diagnostics -------------------------------------------------------------------


def satisfaction_vector(
    group: Group,
    package: Sequence[ScoredItem],
    utilities: GroupUtilities,
) -> Dict[str, float]:
    """Each member's package satisfaction: mean utility over package items."""
    _check_utilities(group, utilities)
    if not package:
        return {u.user_id: 0.0 for u in group}
    return {
        u.user_id: sum(utilities[u.user_id].get(s.item.key, 0.0) for s in package)
        / len(package)
        for u in group
    }


def min_satisfaction(
    group: Group, package: Sequence[ScoredItem], utilities: GroupUtilities
) -> float:
    """The least satisfied member's package satisfaction."""
    return min(satisfaction_vector(group, package, utilities).values())


def mean_satisfaction(
    group: Group, package: Sequence[ScoredItem], utilities: GroupUtilities
) -> float:
    """The average member's package satisfaction."""
    vector = satisfaction_vector(group, package, utilities)
    return sum(vector.values()) / len(vector)


def catalog_coverage(
    packages: Sequence[Sequence[ScoredItem]],
    candidates: Sequence[RecommendationItem],
) -> float:
    """Fraction of the candidate catalogue recommended to *someone*.

    Section III.d (individual fairness): "the intuitive searching and
    ranking based on relevance is not enough, since, in that cases, we
    mostly care about common needs.  Clearly, supporting uncommon
    information needs is important as well."  A system that funnels every
    user to the same few popular items has low catalogue coverage.
    """
    if not candidates:
        return 1.0
    recommended = {
        scored.item.key for package in packages for scored in package
    }
    return len(recommended & {item.key for item in candidates}) / len(candidates)


def long_tail_exposure(
    packages: Sequence[Sequence[ScoredItem]],
    popularity: Mapping[str, float],
    tail_fraction: float = 0.5,
) -> float:
    """Share of recommendation slots given to long-tail items.

    The *tail* is the ``tail_fraction`` least-popular half (by the supplied
    popularity scores; items missing from ``popularity`` count as
    popularity 0, i.e. maximally tail).  Returns the fraction of all
    recommended slots occupied by tail items -- higher means uncommon needs
    get exposure.
    """
    if not 0.0 < tail_fraction < 1.0:
        raise ValueError(f"tail_fraction must be in (0, 1), got {tail_fraction}")
    slots = [scored.item.key for package in packages for scored in package]
    if not slots:
        return 0.0
    universe = sorted(set(slots) | set(popularity), key=lambda k: (popularity.get(k, 0.0), k))
    cutoff = max(1, int(len(universe) * tail_fraction))
    tail = set(universe[:cutoff])
    return sum(1 for key in slots if key in tail) / len(slots)


def satisfaction_gini(
    group: Group, package: Sequence[ScoredItem], utilities: GroupUtilities
) -> float:
    """Gini coefficient of member satisfactions (0 = perfectly even).

    All-zero satisfaction counts as perfectly even (0.0).
    """
    values = sorted(satisfaction_vector(group, package, utilities).values())
    total = sum(values)
    if total <= 0.0:
        return 0.0
    n = len(values)
    cumulative = sum((index + 1) * value for index, value in enumerate(values))
    return (2.0 * cumulative) / (n * total) - (n + 1.0) / n
