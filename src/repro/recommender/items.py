"""Recommendation items and packages.

What gets recommended (Section III): *evolution measures* -- more precisely,
a measure applied to a part of the knowledge base the human may care about.
A :class:`RecommendationItem` is a ``(measure, target)`` pair carrying the
measure's (normalised) evolution score for that target; a
:class:`RecommendationPackage` is the ordered set handed to a human or
group, with optional per-item explanations (the transparency perspective).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Mapping, Tuple

from repro.kb.terms import IRI
from repro.measures.base import MeasureFamily, TargetKind

#: Separator in item keys; IRIs cannot contain it (they exclude whitespace
#: and '|' is illegal in our IRI validation), so keys parse unambiguously.
_KEY_SEPARATOR = "||"


@dataclass(frozen=True)
class RecommendationItem:
    """One candidate: an evolution measure focused on one target.

    ``evolution_score`` is the measure's normalised score of the target in
    the evolution context at hand (in [0, 1]; how strongly this part of the
    KB changed *according to this measure*).
    """

    measure_name: str
    family: MeasureFamily
    target_kind: TargetKind
    target: IRI
    evolution_score: float

    def __post_init__(self) -> None:
        if not self.measure_name:
            raise ValueError("measure_name must be non-empty")
        if not 0.0 <= self.evolution_score <= 1.0:
            raise ValueError(
                f"evolution_score must be in [0, 1], got {self.evolution_score}"
            )

    @property
    def key(self) -> str:
        """Stable string key (used by feedback stores and provenance)."""
        return f"{self.measure_name}{_KEY_SEPARATOR}{self.target.value}"

    @staticmethod
    def parse_key(key: str) -> Tuple[str, IRI]:
        """Invert :attr:`key` into ``(measure_name, target IRI)``."""
        measure_name, separator, target = key.partition(_KEY_SEPARATOR)
        if not separator or not measure_name or not target:
            raise ValueError(f"malformed item key: {key!r}")
        return measure_name, IRI(target)

    def describe(self) -> str:
        """Short human-readable form."""
        return f"{self.measure_name} @ {self.target.local_name}"


@dataclass(frozen=True)
class ScoredItem:
    """An item with the utility assigned to it for a particular human."""

    item: RecommendationItem
    utility: float

    def __post_init__(self) -> None:
        if self.utility < 0.0:
            raise ValueError(f"utility must be >= 0, got {self.utility}")


@dataclass(frozen=True)
class RecommendationPackage:
    """The ordered recommendation handed to a user or group."""

    items: Tuple[ScoredItem, ...]
    audience: str  # user id or group id
    explanations: Mapping[str, str] = field(default_factory=dict)  # item key -> text
    metadata: Mapping[str, str] = field(default_factory=dict)

    def keys(self) -> List[str]:
        """Item keys in rank order."""
        return [scored.item.key for scored in self.items]

    def targets(self) -> List[IRI]:
        """Targets in rank order (may repeat across measures)."""
        return [scored.item.target for scored in self.items]

    def measures(self) -> List[str]:
        """Measure names in rank order (may repeat across targets)."""
        return [scored.item.measure_name for scored in self.items]

    def families(self) -> List[MeasureFamily]:
        """Measure families in rank order."""
        return [scored.item.family for scored in self.items]

    def explanation_for(self, item_key: str) -> str:
        """The explanation of one item ('' when absent)."""
        return self.explanations.get(item_key, "")

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[ScoredItem]:
        return iter(self.items)
