"""Notifications: telling humans when data they care about evolves.

Section III: "given that nowadays big data is produced from the human daily
activities ... anyone at personal or group (e.g., family) level, may want
to be *notified* about the evolution of data."

A :class:`Watch` subscribes a user to a class (or a class region via the
profile) under one measure with a threshold; the
:class:`NotificationService` evaluates all watches against an evolution
context and emits :class:`Notification` objects -- each carrying the same
transparency-style explanation the recommender produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.kb.terms import IRI
from repro.measures.base import EvolutionContext, MeasureCatalog, MeasureResult
from repro.profiles.user import User


@dataclass(frozen=True)
class Watch:
    """A standing subscription: notify ``user_id`` when ``measure_name``
    scores ``target`` at or above ``threshold`` (on normalised scores)."""

    user_id: str
    measure_name: str
    target: IRI
    threshold: float = 0.5

    def __post_init__(self) -> None:
        if not self.user_id:
            raise ValueError("user_id must be non-empty")
        if not self.measure_name:
            raise ValueError("measure_name must be non-empty")
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {self.threshold}")


@dataclass(frozen=True)
class Notification:
    """One fired watch: who, what, how strongly, and why."""

    user_id: str
    measure_name: str
    target: IRI
    score: float
    threshold: float
    context_label: str
    message: str

    def __str__(self) -> str:
        return self.message


class NotificationService:
    """Evaluates watches against evolution contexts."""

    def __init__(self, catalog: MeasureCatalog) -> None:
        self._catalog = catalog
        self._watches: List[Watch] = []

    def subscribe(self, watch: Watch) -> Watch:
        """Register a watch; validates the measure exists in the catalogue."""
        self._catalog.get(watch.measure_name)  # raises KeyError if unknown
        self._watches.append(watch)
        return watch

    def subscribe_profile(
        self, user: User, measure_name: str, threshold: float = 0.5, top: int = 3
    ) -> List[Watch]:
        """Subscribe a user to their ``top`` highest-interest classes."""
        watches = [
            self.subscribe(Watch(user.user_id, measure_name, cls, threshold))
            for cls in user.profile.top_classes(top)
        ]
        return watches

    def unsubscribe(self, user_id: str) -> int:
        """Remove every watch of ``user_id``; returns how many were removed."""
        before = len(self._watches)
        self._watches = [w for w in self._watches if w.user_id != user_id]
        return before - len(self._watches)

    def watches(self, user_id: str | None = None) -> List[Watch]:
        """All watches, or those of one user."""
        if user_id is None:
            return list(self._watches)
        return [w for w in self._watches if w.user_id == user_id]

    def check(self, context: EvolutionContext) -> List[Notification]:
        """Evaluate every watch on ``context``; returns fired notifications.

        Measure results are computed once per measure and normalised, so a
        threshold of 0.8 means "within 20% of the most affected target".
        """
        needed = {watch.measure_name for watch in self._watches}
        results: Dict[str, MeasureResult] = {
            name: self._catalog.get(name).compute(context).normalized()
            for name in sorted(needed)
        }
        label = f"{context.old.version_id}->{context.new.version_id}"
        fired: List[Notification] = []
        for watch in self._watches:
            score = results[watch.measure_name].score(watch.target)
            if score >= watch.threshold and score > 0.0:
                measure = self._catalog.get(watch.measure_name)
                message = (
                    f"[{label}] {watch.user_id}: '{watch.target.local_name}' "
                    f"scored {score:.2f} (>= {watch.threshold:.2f}) under "
                    f"{watch.measure_name}. {measure.description}"
                )
                fired.append(
                    Notification(
                        user_id=watch.user_id,
                        measure_name=watch.measure_name,
                        target=watch.target,
                        score=score,
                        threshold=watch.threshold,
                        context_label=label,
                        message=message,
                    )
                )
        fired.sort(key=lambda n: (n.user_id, -n.score, n.target.value))
        return fired

    def __len__(self) -> int:
        return len(self._watches)
