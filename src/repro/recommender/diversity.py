"""The diversity perspective (Section III.c).

"The produced set of measures should cover all the different needs of the
human in question and not focus on a particular aspect of evolution."

The paper classifies diversification into content-based, novelty-based and
semantic-based; all three are implemented over one item-distance model:

* :class:`ItemDistance` -- distance of two items combines measure identity,
  measure family, and target distance in the class graph.
* :func:`mmr_select` -- content-based: greedy Maximal Marginal Relevance.
* :func:`max_min_select` -- content-based: greedy Max-Min dispersion
  (ablation alternative to MMR).
* :func:`novelty_select` -- novelty-based: MMR where the penalty also counts
  similarity to *previously seen* items.
* :func:`coverage_select` -- semantic-based: greedy coverage of "categories"
  (measure families and target regions).
* :func:`intra_list_distance` / :func:`family_coverage` -- the set-level
  metrics experiments E5/E6 report.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.graphtools.adjacency import UndirectedGraph
from repro.graphtools.traversal import bfs_distances
from repro.kb.terms import IRI
from repro.measures.base import MeasureFamily
from repro.recommender.items import RecommendationItem, ScoredItem
from repro.util.validation import require_probability


class ItemDistance:
    """Distance in [0, 1] between recommendation items.

    ``d = w_m * [different measure] + w_f * [different family] + w_t * target_distance``
    with weights summing to 1.  Target distance is the class-graph hop
    distance capped at ``horizon`` and normalised (identical targets 0,
    beyond-horizon or disconnected 1); without a class graph it is the
    0/1 indicator of different targets.
    """

    def __init__(
        self,
        class_graph: UndirectedGraph | None = None,
        measure_weight: float = 0.3,
        family_weight: float = 0.3,
        target_weight: float = 0.4,
        horizon: int = 3,
    ) -> None:
        total = measure_weight + family_weight + target_weight
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"distance weights must sum to 1, got {total}")
        for name, value in (
            ("measure_weight", measure_weight),
            ("family_weight", family_weight),
            ("target_weight", target_weight),
        ):
            require_probability(value, name)
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        self._graph = class_graph
        self._wm = measure_weight
        self._wf = family_weight
        self._wt = target_weight
        self._horizon = horizon
        self._distance_cache: Dict[IRI, Dict[IRI, int]] = {}

    def _target_distance(self, a: IRI, b: IRI) -> float:
        if a == b:
            return 0.0
        if self._graph is None or a not in self._graph or b not in self._graph:
            return 1.0
        if a not in self._distance_cache:
            self._distance_cache[a] = bfs_distances(self._graph, a)
        hops = self._distance_cache[a].get(b)
        if hops is None or hops >= self._horizon:
            return 1.0
        return hops / self._horizon

    def __call__(self, a: RecommendationItem, b: RecommendationItem) -> float:
        """The distance ``d(a, b)`` in [0, 1]."""
        measure_term = 0.0 if a.measure_name == b.measure_name else 1.0
        family_term = 0.0 if a.family is b.family else 1.0
        target_term = self._target_distance(a.target, b.target)
        return self._wm * measure_term + self._wf * family_term + self._wt * target_term


def mmr_select(
    candidates: Sequence[ScoredItem],
    k: int,
    distance: ItemDistance,
    lam: float = 0.7,
) -> List[ScoredItem]:
    """Greedy Maximal Marginal Relevance.

    Iteratively picks ``argmax lam * utility - (1 - lam) * max_similarity``
    to the already-selected set (similarity = 1 - distance).  ``lam = 1``
    reduces to pure relevance ranking; ``lam = 0`` to pure diversification.
    """
    require_probability(lam, "lam")
    return _greedy_mmr(candidates, k, distance, lam, seen=())


def novelty_select(
    candidates: Sequence[ScoredItem],
    k: int,
    distance: ItemDistance,
    seen: Sequence[RecommendationItem],
    lam: float = 0.7,
) -> List[ScoredItem]:
    """Novelty-based diversification: also avoid *previously seen* items.

    The MMR penalty takes the maximum similarity over both the selected set
    and the ``seen`` history, so the package prefers items that tell the
    human something new relative to past recommendations (the paper's
    "novelty-based" category).
    """
    require_probability(lam, "lam")
    return _greedy_mmr(candidates, k, distance, lam, seen=tuple(seen))


def _greedy_mmr(
    candidates: Sequence[ScoredItem],
    k: int,
    distance: ItemDistance,
    lam: float,
    seen: Tuple[RecommendationItem, ...],
) -> List[ScoredItem]:
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    pool = sorted(candidates, key=lambda s: (-s.utility, s.item.key))
    selected: List[ScoredItem] = []
    while pool and len(selected) < k:
        best_index = 0
        best_value = float("-inf")
        for index, scored in enumerate(pool):
            reference = [s.item for s in selected] + list(seen)
            if reference:
                max_similarity = max(1.0 - distance(scored.item, other) for other in reference)
            else:
                max_similarity = 0.0
            value = lam * scored.utility - (1.0 - lam) * max_similarity
            if value > best_value + 1e-12:
                best_value = value
                best_index = index
        selected.append(pool.pop(best_index))
    return selected


def max_min_select(
    candidates: Sequence[ScoredItem],
    k: int,
    distance: ItemDistance,
    lam: float = 0.7,
) -> List[ScoredItem]:
    """Greedy Max-Min dispersion (the E5 ablation alternative to MMR).

    Starts from the highest-utility item, then repeatedly adds
    ``argmax lam * utility + (1 - lam) * min_distance`` to the selected set.
    """
    require_probability(lam, "lam")
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    pool = sorted(candidates, key=lambda s: (-s.utility, s.item.key))
    if not pool or k == 0:
        return []
    selected = [pool.pop(0)]
    while pool and len(selected) < k:
        best_index = 0
        best_value = float("-inf")
        for index, scored in enumerate(pool):
            min_distance = min(distance(scored.item, s.item) for s in selected)
            value = lam * scored.utility + (1.0 - lam) * min_distance
            if value > best_value + 1e-12:
                best_value = value
                best_index = index
        selected.append(pool.pop(best_index))
    return selected


def coverage_select(
    candidates: Sequence[ScoredItem],
    k: int,
    distance: ItemDistance | None = None,
) -> List[ScoredItem]:
    """Semantic-based diversification: cover categories first.

    Categories are the measure families; within one round the selector picks
    the best unused item of each not-yet-covered family (by utility), then
    starts a new round.  This directly implements the paper's "semantic-
    based, selecting items that belong to different categories and topics".
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    pool = sorted(candidates, key=lambda s: (-s.utility, s.item.key))
    selected: List[ScoredItem] = []
    while pool and len(selected) < k:
        covered: Set[MeasureFamily] = set()
        progressed = False
        for scored in list(pool):
            if len(selected) >= k:
                break
            if scored.item.family in covered:
                continue
            covered.add(scored.item.family)
            selected.append(scored)
            pool.remove(scored)
            progressed = True
        if not progressed:
            break
    return selected


# -- set-level metrics -----------------------------------------------------------


def intra_list_distance(
    items: Sequence[RecommendationItem], distance: ItemDistance
) -> float:
    """Mean pairwise distance of the set (0.0 for fewer than two items)."""
    if len(items) < 2:
        return 0.0
    total = 0.0
    pairs = 0
    for i, a in enumerate(items):
        for b in items[i + 1 :]:
            total += distance(a, b)
            pairs += 1
    return total / pairs


def family_coverage(items: Sequence[RecommendationItem]) -> float:
    """Fraction of the four Section II families present in the set."""
    if not items:
        return 0.0
    return len({item.family for item in items}) / len(MeasureFamily)
