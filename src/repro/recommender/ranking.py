"""Candidate generation and relevance ranking.

The engine's pipeline starts here: every measure in the catalogue scores its
targets on the evolution context; each (measure, target) pair with a
non-zero normalised score becomes a candidate
:class:`~repro.recommender.items.RecommendationItem`.  A candidate's
*utility* for a user is::

    utility(u, item) = evolution_score(item) * relatedness(u, item)

-- an item is only worth recommending when its part of the KB both changed
(the measure says so) and matters to the human (relatedness says so).  Both
factors are in [0, 1], so utilities are too.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.measures.base import EvolutionContext, MeasureCatalog, MeasureResult
from repro.profiles.user import User
from repro.recommender.items import RecommendationItem, ScoredItem
from repro.recommender.relatedness import RelatednessScorer


def generate_candidates(
    catalog: MeasureCatalog,
    context: EvolutionContext,
    per_measure: int | None = None,
    results: Mapping[str, MeasureResult] | None = None,
) -> List[RecommendationItem]:
    """Build the candidate item pool from a measure catalogue.

    ``per_measure`` caps how many top targets each measure contributes
    (None = every non-zero target).  ``results`` lets callers reuse
    already-computed measure results (the engine caches them per context).
    """
    if per_measure is not None and per_measure < 1:
        raise ValueError(f"per_measure must be >= 1 or None, got {per_measure}")
    if results is None:
        results = catalog.compute_all(context)

    candidates: List[RecommendationItem] = []
    for name in sorted(results):
        measure = catalog.get(name)
        normalised = results[name].normalized()
        pairs = normalised.top(per_measure if per_measure is not None else len(normalised))
        for target, score in pairs:
            if score <= 0.0:
                continue
            candidates.append(
                RecommendationItem(
                    measure_name=name,
                    family=measure.family,
                    target_kind=measure.target_kind,
                    target=target,
                    evolution_score=score,
                )
            )
    return candidates


def utility_scores(
    user: User,
    candidates: Sequence[RecommendationItem],
    scorer: RelatednessScorer,
) -> Dict[str, float]:
    """``utility(u, item)`` per item key (see module docstring)."""
    return {
        item.key: item.evolution_score * scorer.score(user, item)
        for item in candidates
    }


def utility_scores_batch(
    users: Sequence[User],
    candidates: Sequence[RecommendationItem],
    scorer: RelatednessScorer,
) -> Dict[str, Dict[str, float]]:
    """``utility(u, item)`` for every user and item in one vectorised pass.

    Returns ``{user_id: {item_key: utility}}`` with the same values
    :func:`utility_scores` computes per member; the engine's group and
    multi-user paths use this so relatedness scoring sweeps the interned
    candidate pool once per user instead of once per (user, item) pair.
    """
    relatedness = scorer.score_batch(users, candidates)
    keys = [item.key for item in candidates]
    return {
        user.user_id: {
            key: float(item.evolution_score * related)
            for key, item, related in zip(keys, candidates, relatedness[user.user_id])
        }
        for user in users
    }


def rank_items(
    candidates: Sequence[RecommendationItem],
    utilities: Mapping[str, float],
    k: int | None = None,
) -> List[ScoredItem]:
    """Candidates by decreasing utility (deterministic tie-break by key)."""
    scored = [
        ScoredItem(item=item, utility=utilities.get(item.key, 0.0))
        for item in candidates
    ]
    scored.sort(key=lambda s: (-s.utility, s.item.key))
    return scored if k is None else scored[:k]
