"""E3 (Figure 1): neighbourhood measures localise changed *areas*.

Claim (Section II.b): changes in a class's neighbourhood allow "determining
whether the topology of the knowledge base changed in a particular area".

Workload: worlds evolved at increasing hotspot concentration (0.0 -> 0.9).
Two ground truths, matching what each measure claims to find:

* the *region* (hotspots + their schema neighbourhood) -- what the direct
  change count should recover (recall@k);
* the *area* (the region plus one more neighbourhood hop) -- the
  neighbourhood measure flags classes whose surroundings changed, which
  legitimately includes hub classes adjacent to the region, so it is scored
  by precision@k against this 2-hop area.

Expected shape: both signals sharpen as evolution localises; at high
concentration the neighbourhood measure's top-k sits almost entirely inside
the changed area (it answers "did the topology around here change?"), while
the direct count recovers the exact region.
"""

from __future__ import annotations

from typing import List, Set

from repro.eval.experiments.common import make_world
from repro.eval.harness import ExperimentResult
from repro.eval.metrics import precision_at_k, recall_at_k
from repro.eval.tables import TextTable
from repro.kb.terms import IRI
from repro.measures.counts import ClassChangeCount
from repro.measures.neighborhood import NeighborhoodChangeCount


def run(scale: float = 1.0) -> ExperimentResult:
    """Run E3 (see module docstring)."""
    concentrations = [0.0, 0.3, 0.6, 0.9]
    k = 15

    table = TextTable(
        title=f"E3: localisation quality at top-{k} vs. evolution locality",
        columns=[
            "hotspot concentration",
            "region size",
            "area size",
            "region recall (own count)",
            "area precision (neighborhood)",
        ],
    )

    recalls_count: List[float] = []
    area_precisions: List[float] = []
    for concentration in concentrations:
        world = make_world(
            scale=scale,
            seed=202,
            hotspot_concentration=concentration,
            n_versions=3,
        )
        context = world.latest_context()
        schema = context.old_schema
        region: Set[IRI] = set(world.trace.hotspot_region(schema))
        area: Set[IRI] = set(region)
        for cls in region:
            if cls in schema.classes():
                area |= schema.neighborhood(cls)

        own = ClassChangeCount().compute(context).ranking()
        neighborhood = NeighborhoodChangeCount().compute(context).ranking()
        recall_own = recall_at_k(own, region, k)
        area_precision = precision_at_k(neighborhood, area, k)
        recalls_count.append(recall_own)
        area_precisions.append(area_precision)
        table.add_row(concentration, len(region), len(area), recall_own, area_precision)

    return ExperimentResult(
        experiment_id="e3",
        title="Neighbourhood change counts localise changed areas",
        claim=(
            "neighbourhood changes allow 'determining whether the topology "
            "of the knowledge base changed in a particular area' (Section II.b)"
        ),
        tables=[table],
        shape_checks={
            # Non-strict: on small schemas the 2-hop area covers nearly all
            # classes and precision saturates at ~1.0 for every locality.
            "neighbourhood area precision does not degrade with locality": (
                area_precisions[-1] >= area_precisions[0] - 1e-9
            ),
            "own-count region recall grows with locality": recalls_count[-1]
            > recalls_count[0],
            "neighbourhood top-k concentrates in the area at high locality": (
                area_precisions[-1] >= 0.8
            ),
        },
        notes=(
            f"k={k}; region = hotspots + neighbourhood; area = region + one "
            "more hop; seed 202"
        ),
    )
