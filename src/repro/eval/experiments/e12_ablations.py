"""E12 (Table 6): ablations of the engine's design knobs.

DESIGN.md section 6 calls out two knobs whose value the other experiments
fix: the graph-decay interest-spreading of the relatedness scorer, and the
``beta`` blend of the fairness-aware group selector.  This experiment
sweeps both.

Spreading ablation
    Real interest elicitation is sparse: a curator names a couple of
    classes, not their full latent interest surface.  We simulate this by
    *truncating* each synthetic user's profile to its top-2 classes while
    keeping the full profile as ground truth, then score rankings produced
    with ``spread_depth`` in {0, 1, 2} x ``spread_decay`` in {0.3, 0.7}.
    Expected shape: spreading (depth >= 1) recovers latent interests and
    beats the unspread profile on nDCG.

Fairness beta sweep
    ``beta`` trades mean group utility (beta = 1) against the least
    satisfied member (beta = 0).  Expected shape: min-satisfaction falls
    and mean satisfaction rises monotonically (within tolerance) along the
    sweep -- the knob actually spans the frontier.
"""

from __future__ import annotations

from typing import Dict, List

from repro.eval.experiments.common import class_items, make_world, relevance_by_key
from repro.eval.harness import ExperimentResult
from repro.eval.metrics import ndcg_at_k
from repro.eval.tables import TextTable
from repro.measures.catalog import default_catalog
from repro.profiles.group import Group
from repro.profiles.user import InterestProfile, User
from repro.recommender.fairness import (
    mean_satisfaction,
    min_satisfaction,
    select_package,
)
from repro.recommender.ranking import generate_candidates, utility_scores
from repro.recommender.relatedness import RelatednessScorer

K = 10


def _truncated(user: User, keep: int = 2) -> User:
    """The sparse-elicitation version of a user: top-``keep`` classes only."""
    top = user.profile.top_classes(keep)
    return User(
        user_id=user.user_id,
        profile=InterestProfile(
            class_weights={cls: user.profile.interest_in(cls) for cls in top},
            family_weights=dict(user.profile.family_weights),
        ),
        name=user.name,
    )


def run(scale: float = 1.0) -> ExperimentResult:
    """Run E12 (see module docstring)."""
    world = make_world(scale=scale, seed=1212, hotspot_affinity=0.6, n_users=16)
    context = world.latest_context()
    candidates = class_items(
        generate_candidates(default_catalog(), context, per_measure=30)
    )

    # --- spreading ablation -------------------------------------------------
    spread_table = TextTable(
        title=f"E12a: interest spreading under sparse elicitation (mean nDCG@{K})",
        columns=["spread depth", "decay", "nDCG@10"],
    )
    ndcg_by_config: Dict[tuple, float] = {}
    configs = [(0, 0.5), (1, 0.3), (1, 0.7), (2, 0.3), (2, 0.7)]
    for depth, decay in configs:
        scorer = RelatednessScorer(
            alpha=1.0,
            schema=context.new_schema,
            spread_depth=depth,
            spread_decay=decay,
        )
        ndcgs: List[float] = []
        for user in world.users:
            sparse = _truncated(user)
            truth = relevance_by_key(user, candidates)  # full latent profile
            scores = scorer.score_all(sparse, candidates)
            ranking = [
                key for key, _ in sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
            ]
            ndcgs.append(ndcg_at_k(ranking, truth, K))
        mean_ndcg = sum(ndcgs) / len(ndcgs)
        ndcg_by_config[(depth, decay)] = mean_ndcg
        spread_table.add_row(depth, decay, mean_ndcg)

    no_spread = ndcg_by_config[(0, 0.5)]
    best_spread = max(v for (d, _), v in ndcg_by_config.items() if d > 0)

    # --- fairness beta sweep --------------------------------------------------
    beta_table = TextTable(
        title="E12b: fairness-aware beta sweep (size-4 groups, mean over groups)",
        columns=["beta", "min satisfaction", "mean satisfaction"],
    )
    scorer = RelatednessScorer(alpha=1.0, schema=context.new_schema, spread_depth=1)
    utilities_all = {
        user.user_id: utility_scores(user, candidates, scorer) for user in world.users
    }
    groups = [
        Group(f"g{i}", tuple(world.users[i * 4 : (i + 1) * 4]))
        for i in range(len(world.users) // 4)
    ]
    betas = [0.0, 0.25, 0.5, 0.75, 1.0]
    min_curve: List[float] = []
    mean_curve: List[float] = []
    for beta in betas:
        mins: List[float] = []
        means: List[float] = []
        for group in groups:
            utilities = {u.user_id: utilities_all[u.user_id] for u in group}
            package = select_package(
                group, candidates, utilities, 8, strategy="fairness_aware", beta=beta
            )
            mins.append(min_satisfaction(group, package, utilities))
            means.append(mean_satisfaction(group, package, utilities))
        min_curve.append(sum(mins) / len(mins))
        mean_curve.append(sum(means) / len(means))
        beta_table.add_row(beta, min_curve[-1], mean_curve[-1])

    tolerance = 0.01
    return ExperimentResult(
        experiment_id="e12",
        title="Design-knob ablations: interest spreading and fairness beta",
        claim=(
            "design choices called out in DESIGN.md section 6: graph-decay "
            "interest propagation for relatedness (III.a) and the package "
            "fairness/relevance blend (III.d)"
        ),
        tables=[spread_table, beta_table],
        shape_checks={
            "spreading recovers latent interests (depth>=1 beats depth 0)": (
                best_spread > no_spread
            ),
            "min-satisfaction weakly falls as beta -> 1": min_curve[-1]
            <= min_curve[0] + tolerance
            and min(min_curve) >= min_curve[-1] - tolerance,
            "mean satisfaction weakly rises as beta -> 1": mean_curve[-1]
            >= mean_curve[0] - tolerance
            and max(mean_curve) <= mean_curve[-1] + tolerance,
            "the sweep spans a real frontier (endpoints differ)": (
                abs(min_curve[0] - min_curve[-1]) > 1e-6
                or abs(mean_curve[0] - mean_curve[-1]) > 1e-6
            ),
        },
        notes="16 users; profiles truncated to top-2 classes for E12a; seed 1212",
    )
