"""Shared workload helpers for the experiment suite."""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.measures.base import TargetKind
from repro.profiles.user import User
from repro.recommender.items import RecommendationItem
from repro.synthetic.config import (
    EvolutionConfig,
    InstanceConfig,
    SchemaConfig,
    UserConfig,
    WorldConfig,
)
from repro.synthetic.world import SyntheticWorld, generate_world


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale an integer workload parameter, keeping a sane floor."""
    return max(minimum, int(round(value * scale)))


def make_world(
    scale: float = 1.0,
    seed: int = 0,
    n_classes: int = 120,
    n_properties: int = 80,
    n_versions: int = 3,
    changes_per_version: int = 150,
    hotspot_concentration: float = 0.8,
    n_hotspots: int = 4,
    n_users: int = 12,
    events_per_user: int = 30,
    feedback_noise: float = 0.15,
    hotspot_affinity: float = 0.5,
    group_size: int = 4,
) -> SyntheticWorld:
    """The standard experiment world, scaled by ``scale``."""
    config = WorldConfig(
        schema=SchemaConfig(
            n_classes=scaled(n_classes, scale, minimum=10),
            n_properties=scaled(n_properties, scale, minimum=5),
        ),
        instances=InstanceConfig(base_instances_per_class=12),
        evolution=EvolutionConfig(
            n_versions=n_versions,
            changes_per_version=scaled(changes_per_version, scale, minimum=20),
            n_hotspots=n_hotspots,
            hotspot_concentration=hotspot_concentration,
        ),
        # Users are not scaled: they are cheap to generate, and statistical
        # components (collaborative filtering, group studies) need a stable
        # population size regardless of how much the KB is shrunk.
        users=UserConfig(
            n_users=n_users,
            events_per_user=events_per_user,
            feedback_noise=feedback_noise,
            hotspot_affinity=hotspot_affinity,
        ),
    )
    return generate_world(seed=seed, config=config, group_size=group_size)


def ground_truth_relevance(user: User, item: RecommendationItem) -> float:
    """The planted relevance of an item to a synthetic user, in [0, 1].

    Synthetic profiles *are* the ground truth (they were generated, not
    learned): relevance is interest in the target class times the user's
    (unit-capped) preference for the measure's family.
    """
    interest = min(1.0, user.profile.interest_in(item.target))
    family = min(1.0, user.profile.family_preference(item.family))
    return interest * family


def class_items(items: Sequence[RecommendationItem]) -> List[RecommendationItem]:
    """Only the class-target items (ground truth is class-based)."""
    return [item for item in items if item.target_kind is TargetKind.CLASS]


def relevance_by_key(
    user: User, items: Sequence[RecommendationItem]
) -> Dict[str, float]:
    """Ground-truth relevance per item key."""
    return {item.key: ground_truth_relevance(user, item) for item in items}


def random_ranking(items: Sequence[RecommendationItem], seed: int) -> List[str]:
    """The random baseline: a seeded shuffle of the item keys."""
    keys = [item.key for item in items]
    random.Random(seed).shuffle(keys)
    return keys
