"""E4 (Figure 2): relatedness ranking vs. baselines, with an alpha ablation.

Claim (Section III.a): "users would like to retrieve only a small piece of
the evolved data, namely the most relevant to their interests and needs."

Workload: the standard world; candidates are all class-target items; each
user's ground-truth relevance is their planted profile.  Rankers compared:

* ``random`` -- seeded shuffle,
* ``popularity`` -- items by total feedback rating (user-independent),
* ``semantic`` -- relatedness with alpha = 1 (profile only),
* ``collaborative`` -- alpha = 0 (feedback only),
* ``blend`` -- alpha = 0.6 (the engine default).

Reported: mean nDCG@10 and P@10 over users, per feedback volume
(events/user in {5, 20, 50}).  Expected shape: every informed ranker beats
random; the blend is at least as good as either pure signal at the largest
feedback volume; collaborative improves with more feedback.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.eval.experiments.common import (
    class_items,
    ground_truth_relevance,
    make_world,
    random_ranking,
    relevance_by_key,
)
from repro.eval.harness import ExperimentResult
from repro.eval.metrics import ndcg_at_k, precision_at_k
from repro.eval.tables import TextTable
from repro.measures.catalog import default_catalog
from repro.recommender.items import RecommendationItem
from repro.recommender.ranking import generate_candidates
from repro.recommender.relatedness import RelatednessScorer
from repro.synthetic.config import UserConfig
from repro.synthetic.users import simulate_feedback

K = 10


def _rank_by(scores: Dict[str, float]) -> List[str]:
    return [key for key, _ in sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))]


def _evaluate_ranking(
    ranking: Sequence[str], truth: Dict[str, float]
) -> Dict[str, float]:
    relevant = {key for key, value in truth.items() if value >= 0.5}
    return {
        "ndcg": ndcg_at_k(ranking, truth, K),
        "precision": precision_at_k(ranking, relevant, K),
    }


def run(scale: float = 1.0) -> ExperimentResult:
    """Run E4 (see module docstring)."""
    # The user population is NOT scaled down: item-based CF needs enough
    # raters to estimate item-item similarities (scale only shrinks the KB).
    world = make_world(scale=scale, seed=303, hotspot_affinity=0.6, n_users=16)
    context = world.latest_context()
    candidates = class_items(
        generate_candidates(default_catalog(), context, per_measure=30)
    )
    users = world.users

    table = TextTable(
        title=f"E4: ranking quality (mean over {len(users)} users), nDCG@{K} / P@{K}",
        columns=["events/user", "ranker", "nDCG@10", "P@10"],
    )

    volumes = [5, 20, 50]
    ndcg_by_ranker: Dict[str, Dict[int, float]] = {}
    for volume in volumes:
        feedback = simulate_feedback(
            users,
            [item.key for item in candidates],
            relevance=lambda u, key: ground_truth_relevance(
                u, _by_key(candidates)[key]
            ),
            config=UserConfig(
                n_users=len(users), events_per_user=volume, feedback_noise=0.15
            ),
            seed=volume,
        )
        popularity = feedback.popularity()
        rankers = {
            "random": None,
            "popularity": None,
            "semantic (a=1.0)": RelatednessScorer(alpha=1.0),
            # No cold-start fallback: this arm must expose the *pure*
            # collaborative signal, not silently degrade to semantic.
            "collaborative (a=0.0)": RelatednessScorer(
                alpha=0.0, feedback=feedback, cold_start_fallback=False
            ),
            "blend (a=0.6)": RelatednessScorer(alpha=0.6, feedback=feedback),
        }
        for ranker_name, scorer in rankers.items():
            ndcgs: List[float] = []
            precisions: List[float] = []
            for index, user in enumerate(users):
                truth = relevance_by_key(user, candidates)
                if ranker_name == "random":
                    ranking = random_ranking(candidates, seed=index)
                elif ranker_name == "popularity":
                    ranking = _rank_by(
                        {item.key: popularity.get(item.key, 0.0) for item in candidates}
                    )
                else:
                    ranking = _rank_by(scorer.score_all(user, candidates))
                quality = _evaluate_ranking(ranking, truth)
                ndcgs.append(quality["ndcg"])
                precisions.append(quality["precision"])
            mean_ndcg = sum(ndcgs) / len(ndcgs)
            mean_precision = sum(precisions) / len(precisions)
            table.add_row(volume, ranker_name, mean_ndcg, mean_precision)
            ndcg_by_ranker.setdefault(ranker_name, {})[volume] = mean_ndcg

    semantic = ndcg_by_ranker["semantic (a=1.0)"]
    collaborative = ndcg_by_ranker["collaborative (a=0.0)"]
    blend = ndcg_by_ranker["blend (a=0.6)"]
    rand = ndcg_by_ranker["random"]
    pop = ndcg_by_ranker["popularity"]
    top_volume = volumes[-1]

    return ExperimentResult(
        experiment_id="e4",
        title="Relatedness ranking vs. baselines (alpha ablation)",
        claim=(
            "'users would like to retrieve only a small piece of the evolved "
            "data, namely the most relevant to their interests and needs' "
            "(Section III.a)"
        ),
        tables=[table],
        shape_checks={
            "semantic beats random at every volume": all(
                semantic[v] > rand[v] for v in volumes
            ),
            "semantic beats popularity at every volume": all(
                semantic[v] > pop[v] for v in volumes
            ),
            "collaborative improves with feedback volume": collaborative[top_volume]
            > collaborative[volumes[0]],
            "blend within 5% of the best pure signal at high volume": blend[top_volume]
            >= max(semantic[top_volume], collaborative[top_volume]) - 0.05,
        },
        notes=f"candidates: {len(candidates)} class items; K={K}; seed 303",
    )


def _by_key(items: Sequence[RecommendationItem]) -> Dict[str, RecommendationItem]:
    return {item.key: item for item in items}
