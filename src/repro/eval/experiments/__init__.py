"""The derived experiment suite (one module per table/figure in DESIGN.md)."""
