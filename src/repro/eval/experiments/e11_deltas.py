"""E11 (Table 5): high-level deltas compress low-level change descriptions.

Claim (Section I): delta approaches range "from low-level deltas
(describing simple additions and deletions) to high-level deltas
(describing complex updates, such as different change patterns in the
subsumption hierarchy)" -- the point of high-level deltas being that one
pattern explains many triples.

Workload: evolutions under three op mixes -- instance-churn-heavy,
schema-heavy, and the default mixed profile.  Reported per mix: low-level
delta size, high-level record count, compression ratio, and the share of
records that are pattern-level (not generic ADD/DELETE_TRIPLE leftovers).

Expected shape: ratio > 1 for every mix (patterns aggregate), and the
pattern share is high (the change vocabulary actually explains the
workload rather than falling through to generic records).
"""

from __future__ import annotations

from typing import Dict, List

from repro.deltas.changelog import ChangeLog
from repro.deltas.highlevel import ChangeKind
from repro.eval.experiments.common import scaled
from repro.eval.harness import ExperimentResult
from repro.eval.tables import TextTable
from repro.synthetic.config import (
    EvolutionConfig,
    InstanceConfig,
    SchemaConfig,
    WorldConfig,
)
from repro.synthetic.world import generate_world

MIXES: Dict[str, Dict[str, float]] = {
    "instance-churn": {
        "add_instance": 4.0,
        "remove_instance": 4.0,
        "add_link": 2.0,
        "remove_link": 2.0,
        "change_attribute": 4.0,
    },
    "schema-heavy": {
        "add_subclass": 4.0,
        "move_class": 4.0,
        "add_property": 2.0,
        "add_instance": 1.0,
    },
    "default-mixed": {
        "add_instance": 4.0,
        "remove_instance": 2.0,
        "add_link": 4.0,
        "remove_link": 2.0,
        "change_attribute": 2.0,
        "add_subclass": 1.0,
        "move_class": 0.5,
        "add_property": 0.5,
    },
}

GENERIC = {ChangeKind.ADD_TRIPLE, ChangeKind.DELETE_TRIPLE}


def run(scale: float = 1.0) -> ExperimentResult:
    """Run E11 (see module docstring)."""
    table = TextTable(
        title="E11: high-level vs. low-level delta size by op mix",
        columns=[
            "op mix",
            "low-level triples",
            "high-level records",
            "compression",
            "pattern share",
        ],
    )

    ratios: List[float] = []
    pattern_shares: List[float] = []
    for mix_name, op_mix in MIXES.items():
        config = WorldConfig(
            schema=SchemaConfig(
                n_classes=scaled(80, scale, minimum=10),
                n_properties=scaled(50, scale, minimum=5),
            ),
            instances=InstanceConfig(base_instances_per_class=10),
            evolution=EvolutionConfig(
                n_versions=3,
                changes_per_version=scaled(120, scale, minimum=20),
                op_mix=dict(op_mix),
            ),
        )
        world = generate_world(seed=1010, config=config)
        log = ChangeLog(world.kb)
        low_total = 0
        high_total = 0
        pattern_records = 0
        for old, new in world.kb.pairs():
            highlevel = log.highlevel(old.version_id, new.version_id)
            low_total += highlevel.source.size
            high_total += highlevel.size
            pattern_records += sum(
                1 for change in highlevel.changes if change.kind not in GENERIC
            )
        ratio = low_total / high_total if high_total else 1.0
        share = pattern_records / high_total if high_total else 1.0
        ratios.append(ratio)
        pattern_shares.append(share)
        table.add_row(mix_name, low_total, high_total, ratio, share)

    return ExperimentResult(
        experiment_id="e11",
        title="High-level deltas compress change descriptions",
        claim=(
            "high-level deltas 'describ[e] complex updates, such as different "
            "change patterns in the subsumption hierarchy' where low-level "
            "deltas list simple additions and deletions (Section I)"
        ),
        tables=[table],
        shape_checks={
            "every mix compresses (ratio > 1)": all(r > 1.0 for r in ratios),
            "pattern vocabulary explains most records (share > 0.8)": all(
                s > 0.8 for s in pattern_shares
            ),
        },
        notes="3 versions per mix; seed 1010",
    )
