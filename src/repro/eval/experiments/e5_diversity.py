"""E5 (Figure 3): the relevance-diversity trade-off of the package selectors.

Claim (Section III.c): "the produced set of measures should cover all the
different needs of the human in question and not focus on a particular
aspect of evolution."

Workload: standard world; per-user utilities as in the engine; the MMR
lambda sweep 0 -> 1 plus the Max-Min and coverage selectors as ablations.
Reported (mean over users): package nDCG@k against planted relevance,
intra-list distance (ILD), and measure-family coverage.

Expected shape: relevance (nDCG) is monotonically non-decreasing in lambda
while ILD is non-increasing -- the classic trade-off -- and an intermediate
lambda keeps most of the relevance while covering more families than pure
relevance ranking.
"""

from __future__ import annotations

from typing import Dict

from repro.eval.experiments.common import class_items, make_world, relevance_by_key
from repro.eval.harness import ExperimentResult
from repro.eval.metrics import ndcg_at_k
from repro.eval.tables import TextTable
from repro.measures.catalog import default_catalog
from repro.measures.structural import class_graph
from repro.recommender.diversity import (
    ItemDistance,
    coverage_select,
    family_coverage,
    intra_list_distance,
    max_min_select,
    mmr_select,
)
from repro.recommender.items import ScoredItem
from repro.recommender.ranking import generate_candidates, utility_scores
from repro.recommender.relatedness import RelatednessScorer

K = 8


def run(scale: float = 1.0) -> ExperimentResult:
    """Run E5 (see module docstring)."""
    world = make_world(scale=scale, seed=404, hotspot_affinity=0.7)
    context = world.latest_context()
    candidates = class_items(
        generate_candidates(default_catalog(), context, per_measure=30)
    )
    scorer = RelatednessScorer(alpha=1.0, schema=context.new_schema, spread_depth=1)
    distance = ItemDistance(class_graph=class_graph(context.new_schema))

    lambdas = [0.0, 0.25, 0.5, 0.75, 1.0]
    selectors: Dict[str, object] = {f"mmr l={lam}": lam for lam in lambdas}

    table = TextTable(
        title=f"E5: relevance vs. diversity at package size {K} (mean over users)",
        columns=["selector", "nDCG@8", "ILD", "family coverage"],
    )

    def evaluate(select) -> Dict[str, float]:
        ndcgs, ilds, coverages = [], [], []
        for user in world.users:
            utilities = utility_scores(user, candidates, scorer)
            scored = [
                ScoredItem(item=item, utility=utilities[item.key])
                for item in candidates
            ]
            package = select(scored)
            items = [s.item for s in package]
            truth = relevance_by_key(user, candidates)
            ndcgs.append(ndcg_at_k([i.key for i in items], truth, K))
            ilds.append(intra_list_distance(items, distance))
            coverages.append(family_coverage(items))
        n = len(world.users)
        return {
            "ndcg": sum(ndcgs) / n,
            "ild": sum(ilds) / n,
            "coverage": sum(coverages) / n,
        }

    sweep: Dict[float, Dict[str, float]] = {}
    for lam in lambdas:
        outcome = evaluate(lambda scored, lam=lam: mmr_select(scored, K, distance, lam))
        sweep[lam] = outcome
        table.add_row(f"mmr lambda={lam}", outcome["ndcg"], outcome["ild"], outcome["coverage"])

    maxmin = evaluate(lambda scored: max_min_select(scored, K, distance, lam=0.5))
    table.add_row("max-min lambda=0.5", maxmin["ndcg"], maxmin["ild"], maxmin["coverage"])
    coverage_based = evaluate(lambda scored: coverage_select(scored, K))
    table.add_row(
        "coverage (semantic)", coverage_based["ndcg"], coverage_based["ild"],
        coverage_based["coverage"],
    )

    ndcg_curve = [sweep[lam]["ndcg"] for lam in lambdas]
    ild_curve = [sweep[lam]["ild"] for lam in lambdas]
    tolerance = 0.02  # greedy MMR is not perfectly monotone; allow small wiggles

    return ExperimentResult(
        experiment_id="e5",
        title="Relevance-diversity trade-off (MMR sweep + selector ablation)",
        claim=(
            "'the produced set of measures should cover all the different "
            "needs of the human in question and not focus on a particular "
            "aspect of evolution' (Section III.c)"
        ),
        tables=[table],
        shape_checks={
            "relevance rises along the lambda sweep": ndcg_curve[-1]
            >= ndcg_curve[0] - tolerance
            and ndcg_curve[-1] >= max(ndcg_curve) - tolerance,
            "diversity falls along the lambda sweep": ild_curve[0]
            >= ild_curve[-1] - tolerance
            and ild_curve[0] >= max(ild_curve) - tolerance,
            "an interior lambda keeps >= 90% of peak relevance": sweep[0.75]["ndcg"]
            >= 0.9 * max(ndcg_curve),
            "interior lambda covers more families than pure relevance": sweep[0.5][
                "coverage"
            ]
            >= sweep[1.0]["coverage"],
            "coverage selector attains full family coverage": coverage_based["coverage"]
            == 1.0,
        },
        notes=f"candidates: {len(candidates)}; package size {K}; seed 404",
    )
