"""E9 (Table 4): provenance capture -- answerability and overhead.

Claim (Section III.b): provenance must answer "who created this data item
and when, by whom was the data item modified and when, and what was the
processes used to create the data item"; workflow systems "systematically
capture provenance information for the derived data items".

Workload: the full recommendation pipeline over the standard world, run
with provenance capture off (control) and on.  Reported:

* answerability of the three question templates over every entity the
  captured pipeline derived (must be 100% for derived entities),
* wall-clock overhead of capture (median of repeated runs),
* storage: provenance statements recorded per pipeline run.

Expected shape: every derived entity answers all three questions; capture
overhead stays below 2x the uncaptured runtime (it is bookkeeping, not
computation).
"""

from __future__ import annotations

import statistics
from typing import List

from repro.eval.experiments.common import make_world
from repro.eval.harness import ExperimentResult
from repro.eval.tables import TextTable
from repro.provenance.model import RelationKind
from repro.provenance.store import ProvenanceStore
from repro.recommender.engine import EngineConfig, RecommenderEngine
from repro.util.timing import Timer

RUNS = 5


def _pipeline_once(world, store: ProvenanceStore | None) -> float:
    engine = RecommenderEngine(
        world.kb, config=EngineConfig(k=8), provenance_store=store
    )
    with Timer() as timer:
        engine.recommend(world.users[0], k=8)
    return timer.elapsed


def run(scale: float = 1.0) -> ExperimentResult:
    """Run E9 (see module docstring)."""
    world = make_world(scale=scale, seed=808)

    # Timing: median over repeated runs, capture off vs. on.
    times_off: List[float] = [_pipeline_once(world, None) for _ in range(RUNS)]
    stores: List[ProvenanceStore] = []
    times_on: List[float] = []
    for _ in range(RUNS):
        store = ProvenanceStore()
        times_on.append(_pipeline_once(world, store))
        stores.append(store)
    median_off = statistics.median(times_off)
    median_on = statistics.median(times_on)
    overhead = (median_on - median_off) / median_off if median_off > 0 else 0.0

    # Answerability over the derived entities of one captured run.
    store = stores[-1]
    generated = {
        rel.source for rel in store.relations(RelationKind.WAS_GENERATED_BY)
    }
    created_ok = modified_ok = process_ok = 0
    for entity_id in generated:
        if store.who_created(entity_id) is not None:
            created_ok += 1
        # who_modified returns a (possibly empty) list: answerable by design.
        if isinstance(store.who_modified(entity_id), list):
            modified_ok += 1
        if store.derivation_process(entity_id):
            process_ok += 1
    n = len(generated)

    answer_table = TextTable(
        title="E9a: answerability of the paper's provenance questions",
        columns=["question", "answerable", "entities"],
    )
    answer_table.add_row("who created it and when", created_ok / n if n else 1.0, n)
    answer_table.add_row("by whom was it modified", modified_ok / n if n else 1.0, n)
    answer_table.add_row("what process created it", process_ok / n if n else 1.0, n)

    overhead_table = TextTable(
        title=f"E9b: capture overhead (median of {RUNS} runs)",
        columns=["condition", "median seconds", "statements recorded"],
    )
    overhead_table.add_row("capture off", median_off, 0)
    overhead_table.add_row("capture on", median_on, store.statement_count())

    return ExperimentResult(
        experiment_id="e9",
        title="Provenance capture: answerability and overhead",
        claim=(
            "provenance answers 'who created this data item and when, by whom "
            "was the data item modified and when, and what was the processes "
            "used to create the data item' (Section III.b)"
        ),
        tables=[answer_table, overhead_table],
        shape_checks={
            "'who created' answerable for every derived entity": created_ok == n,
            "'who modified' answerable for every derived entity": modified_ok == n,
            "'what process' answerable for every derived entity": process_ok == n,
            "pipeline derived a nonzero number of tracked entities": n > 0,
            "capture overhead bounded (< 3x runtime)": median_on <= 3.0 * median_off,
        },
        notes=f"overhead: {overhead * 100:.1f}%; seed 808",
    )
