"""E6 (Table 3): merging per-user diverse lists is not group diversification.

Claim (Section III.c): "This problem becomes more difficult when we would
like to locate the evolving parts ... that a group of humans is interested
in.  This is a different aspect of diversity, because we cannot just
combine the diverse measures produced for the humans in the group, since in
this case we may construct a non diverse measures set."

Workload: groups pooled from several worlds (seeds 505-507) with high
hotspot affinity, so many groups are *homogeneous* -- members share tastes,
which is exactly when merging collapses (every member's diversified list
front-loads the same items).  Two constructions of a k-item group package:

* ``merge-per-user`` -- diversify per member (MMR), then merge the per-user
  lists round-robin, deduplicating, until k items;
* ``group-level`` -- MMR on the group's average utilities.

Reported per group: ILD and family coverage of both packages.  Expected
shape (matching the paper's *existential* phrasing "we may construct a non
diverse measures set"): some group is strictly less diverse under the merge
construction, and group-level diversification does not lose diversity on
average across the pooled groups.
"""

from __future__ import annotations

from typing import Dict, List

from repro.eval.experiments.common import class_items, make_world
from repro.eval.harness import ExperimentResult
from repro.eval.tables import TextTable
from repro.measures.catalog import default_catalog
from repro.measures.structural import class_graph
from repro.recommender.diversity import (
    ItemDistance,
    family_coverage,
    intra_list_distance,
    mmr_select,
)
from repro.recommender.items import RecommendationItem, ScoredItem
from repro.recommender.ranking import generate_candidates, utility_scores
from repro.recommender.relatedness import RelatednessScorer

K = 8
LAMBDA = 0.5


def run(scale: float = 1.0) -> ExperimentResult:
    """Run E6 (see module docstring)."""
    table = TextTable(
        title=f"E6: group package diversity, k={K} (per group)",
        columns=[
            "world",
            "group",
            "members",
            "ILD merge-per-user",
            "ILD group-level",
            "coverage merge",
            "coverage group",
        ],
    )

    merge_ilds: List[float] = []
    group_ilds: List[float] = []
    for seed in (505, 506, 507):
        world = make_world(scale=scale, seed=seed, hotspot_affinity=0.9, group_size=4)
        context = world.latest_context()
        candidates = class_items(
            generate_candidates(default_catalog(), context, per_measure=30)
        )
        scorer = RelatednessScorer(
            alpha=1.0, schema=context.new_schema, spread_depth=1
        )
        distance = ItemDistance(class_graph=class_graph(context.new_schema))
        _evaluate_world(
            world, seed, candidates, scorer, distance, table, merge_ilds, group_ilds
        )

    mean_merge = sum(merge_ilds) / len(merge_ilds)
    mean_group = sum(group_ilds) / len(group_ilds)
    summary = TextTable(
        title="E6 summary",
        columns=["construction", "mean ILD", "groups"],
    )
    summary.add_row("merge-per-user", mean_merge, len(merge_ilds))
    summary.add_row("group-level", mean_group, len(group_ilds))

    return ExperimentResult(
        experiment_id="e6",
        title="Group diversity cannot be composed from per-user diversity",
        claim=(
            "'we cannot just combine the diverse measures produced for the "
            "humans in the group, since in this case we may construct a non "
            "diverse measures set' (Section III.c)"
        ),
        tables=[table, summary],
        shape_checks={
            "group-level does not lose diversity on average": mean_group
            >= mean_merge - 0.02,
            "some merged package is strictly less diverse (the paper's 'may')": any(
                g > m + 1e-9 for g, m in zip(group_ilds, merge_ilds)
            ),
        },
        notes=f"{len(merge_ilds)} groups pooled over seeds 505-507, lambda={LAMBDA}",
    )


def _evaluate_world(
    world, seed, candidates, scorer, distance, table, merge_ilds, group_ilds
) -> None:
    for group in world.groups:
        member_utilities: Dict[str, Dict[str, float]] = {
            member.user_id: utility_scores(member, candidates, scorer)
            for member in group
        }

        # Construction A: diversify per member, merge round-robin.
        per_member_lists = []
        for member in group:
            scored = [
                ScoredItem(item=item, utility=member_utilities[member.user_id][item.key])
                for item in candidates
            ]
            per_member_lists.append(mmr_select(scored, K, distance, LAMBDA))
        merged: List[RecommendationItem] = []
        seen_keys = set()
        rank = 0
        while len(merged) < K and rank < K:
            for member_list in per_member_lists:
                if rank < len(member_list):
                    item = member_list[rank].item
                    if item.key not in seen_keys:
                        seen_keys.add(item.key)
                        merged.append(item)
                        if len(merged) == K:
                            break
            rank += 1

        # Construction B: group-level MMR on average utilities.
        average = {
            item.key: sum(
                member_utilities[m.user_id][item.key] for m in group
            )
            / len(group)
            for item in candidates
        }
        group_scored = [
            ScoredItem(item=item, utility=average[item.key]) for item in candidates
        ]
        group_package = [s.item for s in mmr_select(group_scored, K, distance, LAMBDA)]

        ild_merge = intra_list_distance(merged, distance)
        ild_group = intra_list_distance(group_package, distance)
        merge_ilds.append(ild_merge)
        group_ilds.append(ild_group)
        table.add_row(
            seed,
            group.group_id,
            len(group),
            ild_merge,
            ild_group,
            family_coverage(merged),
            family_coverage(group_package),
        )
