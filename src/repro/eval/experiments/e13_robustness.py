"""E13 (Table 7): seed robustness of the headline effects.

Every world-based experiment in this suite fixes one seed; the obvious
threat to validity is that an effect holds only for that seed.  E13 reruns
the three headline comparisons on five fresh worlds each and checks *sign
consistency*:

* relatedness (E4's core): semantic relatedness nDCG@10 minus the random
  baseline's,
* fairness (E7's core): fairness-aware minus average strategy on package
  min-satisfaction (size-4 groups),
* hotspot detection (E3's core): change-count region recall@15 minus the
  chance level (region size / #classes).

Expected shape: each effect is positive for every seed (sign-consistent),
and the mean effect is well clear of zero.
"""

from __future__ import annotations

import statistics
from typing import Dict, List

from repro.eval.experiments.common import (
    class_items,
    make_world,
    random_ranking,
    relevance_by_key,
)
from repro.eval.harness import ExperimentResult
from repro.eval.metrics import ndcg_at_k, recall_at_k
from repro.eval.tables import TextTable
from repro.measures.catalog import default_catalog
from repro.measures.counts import ClassChangeCount
from repro.profiles.group import Group
from repro.recommender.fairness import min_satisfaction, select_package
from repro.recommender.ranking import generate_candidates, utility_scores
from repro.recommender.relatedness import RelatednessScorer

SEEDS = (1301, 1302, 1303, 1304, 1305)
K = 10


def _relatedness_effect(world) -> float:
    context = world.latest_context()
    candidates = class_items(
        generate_candidates(default_catalog(), context, per_measure=25)
    )
    if not candidates:
        return 0.0
    scorer = RelatednessScorer(alpha=1.0)
    semantic_scores: List[float] = []
    random_scores: List[float] = []
    for index, user in enumerate(world.users):
        truth = relevance_by_key(user, candidates)
        scores = scorer.score_all(user, candidates)
        ranking = [k for k, _ in sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))]
        semantic_scores.append(ndcg_at_k(ranking, truth, K))
        random_scores.append(ndcg_at_k(random_ranking(candidates, index), truth, K))
    return statistics.mean(semantic_scores) - statistics.mean(random_scores)


def _fairness_effect(world) -> float:
    context = world.latest_context()
    candidates = class_items(
        generate_candidates(default_catalog(), context, per_measure=25)
    )
    if not candidates:
        return 0.0
    scorer = RelatednessScorer(alpha=1.0, schema=context.new_schema, spread_depth=1)
    utilities_all = {
        u.user_id: utility_scores(u, candidates, scorer) for u in world.users
    }
    gaps: List[float] = []
    groups = [
        Group(f"g{i}", tuple(world.users[i * 4 : (i + 1) * 4]))
        for i in range(len(world.users) // 4)
    ]
    for group in groups:
        utilities = {u.user_id: utilities_all[u.user_id] for u in group}
        fair = select_package(
            group, candidates, utilities, 8, strategy="fairness_aware", beta=0.5
        )
        avg = select_package(group, candidates, utilities, 8, strategy="average")
        gaps.append(
            min_satisfaction(group, fair, utilities)
            - min_satisfaction(group, avg, utilities)
        )
    return statistics.mean(gaps) if gaps else 0.0


def _detection_effect(world) -> float:
    context = world.latest_context()
    region = set(world.trace.hotspot_region(context.old_schema))
    n_classes = len(context.union_classes())
    if not region or not n_classes:
        return 0.0
    ranking = ClassChangeCount().compute(context).ranking()
    recall = recall_at_k(ranking, region, 15)
    chance = min(1.0, 15 / n_classes)  # expected recall of a random top-15
    return recall - chance


def run(scale: float = 1.0) -> ExperimentResult:
    """Run E13 (see module docstring)."""
    table = TextTable(
        title="E13: headline effect sizes across seeds",
        columns=[
            "seed",
            "relatedness gap (nDCG)",
            "fairness gap (min-sat)",
            "detection gap (recall)",
        ],
    )
    effects: Dict[str, List[float]] = {
        "relatedness": [],
        "fairness": [],
        "detection": [],
    }
    for seed in SEEDS:
        world = make_world(
            scale=scale, seed=seed, n_users=16, hotspot_affinity=0.6
        )
        relatedness = _relatedness_effect(world)
        fairness = _fairness_effect(world)
        detection = _detection_effect(world)
        effects["relatedness"].append(relatedness)
        effects["fairness"].append(fairness)
        effects["detection"].append(detection)
        table.add_row(seed, relatedness, fairness, detection)

    summary = TextTable(
        title="E13 summary (mean +/- stdev over seeds)",
        columns=["effect", "mean", "stdev", "sign-consistent"],
    )
    consistency: Dict[str, bool] = {}
    for name, values in effects.items():
        # Fairness-aware can tie with average (gap 0) and still be "no worse".
        floor = -1e-9 if name == "fairness" else 0.0
        consistent = all(v > floor for v in values)
        consistency[name] = consistent
        summary.add_row(
            name, statistics.mean(values), statistics.stdev(values), consistent
        )

    return ExperimentResult(
        experiment_id="e13",
        title="Seed robustness of the headline effects",
        claim=(
            "methodological: the E3/E4/E7 effects must not be artefacts of "
            "the single seed each experiment fixes"
        ),
        tables=[table, summary],
        shape_checks={
            "relatedness beats random on every seed": consistency["relatedness"],
            "fairness-aware never worse than average on any seed": consistency["fairness"],
            "hotspot detection beats chance on every seed": consistency["detection"],
            "mean relatedness gap is large (> 0.3 nDCG)": statistics.mean(
                effects["relatedness"]
            )
            > 0.3,
        },
        notes=f"seeds {SEEDS}; 16 users each; K={K}",
    )
