"""E8 (Figure 5): the privacy-utility trade-off of k-anonymous reports.

Claim (Section III.e): "even if data is aggregated, it is possible to
re-identify sensitive patient's data or significant parts of it ...
strict rules prohibiting reach[ing] such data should apply."

Workload: the per-contributor change report of the standard world's latest
evolution step.  For k in {1, 2, 5, 10, 20} and both strategies
(generalise / suppress): re-identification risk before release, and after
release the suppression rate, precision loss and ranking utility.

Expected shape: risk before release is positive (the attack exists) and the
released report is always k-anonymous; information loss grows monotonically
with k while ranking utility decays; generalisation retains more change
mass than suppression at every k.
"""

from __future__ import annotations

from typing import Dict, List

from repro.eval.experiments.common import make_world
from repro.eval.harness import ExperimentResult
from repro.eval.tables import TextTable
from repro.privacy.build import build_change_report
from repro.privacy.generalization import GeneralizationHierarchy
from repro.privacy.kanonymity import anonymize_report
from repro.privacy.loss import (
    precision_loss,
    ranking_utility,
    reidentification_rate,
    suppression_rate,
)

KS = [1, 2, 5, 10, 20]


def run(scale: float = 1.0) -> ExperimentResult:
    """Run E8 (see module docstring)."""
    world = make_world(scale=scale, seed=707)
    context = world.latest_context()
    report = build_change_report(context)
    hierarchy = GeneralizationHierarchy(context.new_schema)

    table = TextTable(
        title="E8: k-anonymity sweep over the change report",
        columns=[
            "k",
            "risk before",
            "strategy",
            "k-anonymous",
            "suppression",
            "precision loss",
            "ranking utility",
        ],
    )

    loss_curve: List[float] = []
    utility_curve: List[float] = []
    mass: Dict[str, Dict[int, float]] = {"generalize": {}, "suppress": {}}
    anonymous_everywhere = True
    for k in KS:
        risk = reidentification_rate(report, k)
        for strategy in ("generalize", "suppress"):
            released = anonymize_report(report, hierarchy, k, strategy=strategy)
            anonymous_everywhere &= released.is_k_anonymous()
            suppression = suppression_rate(report, released)
            loss = precision_loss(released, hierarchy)
            utility = ranking_utility(report, released)
            mass[strategy][k] = sum(row.total for row in released.rows)
            if strategy == "generalize":
                loss_curve.append(loss)
                utility_curve.append(utility)
            table.add_row(
                k, risk, strategy, released.is_k_anonymous(), suppression, loss, utility
            )

    tolerance = 1e-9
    return ExperimentResult(
        experiment_id="e8",
        title="Privacy-utility trade-off of k-anonymous evolution reports",
        claim=(
            "'even if data is aggregated, it is possible to re-identify "
            "sensitive patient's data ... strict rules prohibiting reach[ing] "
            "such data should apply' (Section III.e)"
        ),
        tables=[table],
        shape_checks={
            "re-identification risk exists before release (k=5)": reidentification_rate(
                report, 5
            )
            > 0.0,
            "released reports are k-anonymous at every k": anonymous_everywhere,
            "information loss grows with k": all(
                b >= a - tolerance for a, b in zip(loss_curve, loss_curve[1:])
            ),
            # Utility need not decay strictly monotonically (a merge can fix
            # as well as break pair orders); the endpoints must still show
            # the trade-off.
            "ranking utility degrades from k=1 to the largest k": utility_curve[-1]
            < utility_curve[0],
            "anonymisation costs utility once it kicks in (k >= 2)": all(
                u < 1.0 for u in utility_curve[1:]
            ),
            "generalisation retains >= change mass of suppression": all(
                mass["generalize"][k] >= mass["suppress"][k] - tolerance for k in KS
            ),
        },
        notes=f"report: {len(report)} classes, {report.total_amount():.0f} changes; seed 707",
    )
