"""E10 (Figure 6): end-to-end latency vs. knowledge-base size.

Claim (Section I): the processing model should help humans "without
requiring a significant amount of work from them" -- i.e. producing a
recommendation must stay interactive as the knowledge base grows.

Workload: worlds of increasing schema size; per size, one cold end-to-end
recommendation (measure evaluation dominates) and a per-stage breakdown
(measures / candidates / rank+diversify).

Expected shape: latency grows with size but stays within interactive bounds
at the largest size; the measure-evaluation stage dominates the pipeline.
"""

from __future__ import annotations

from typing import List

from repro.eval.experiments.common import make_world, scaled
from repro.eval.harness import ExperimentResult
from repro.eval.tables import TextTable
from repro.recommender.engine import EngineConfig, RecommenderEngine
from repro.util.timing import Timer


def run(scale: float = 1.0) -> ExperimentResult:
    """Run E10 (see module docstring)."""
    sizes = [scaled(base, scale, minimum=10) for base in (50, 100, 200, 400)]

    table = TextTable(
        title="E10: recommendation latency vs. KB size (one user, cold caches)",
        columns=[
            "classes",
            "triples (latest)",
            "measures ms",
            "candidates ms",
            "recommend ms",
            "total ms",
        ],
    )

    totals: List[float] = []
    measure_fractions: List[float] = []
    for n_classes in sizes:
        world = make_world(
            scale=1.0,
            seed=909,
            n_classes=n_classes,
            n_properties=max(5, n_classes // 2),
            changes_per_version=max(30, n_classes),
            n_users=4,
        )
        engine = RecommenderEngine(world.kb, config=EngineConfig(k=8))
        with Timer() as t_measures:
            engine.measure_results()
        with Timer() as t_candidates:
            engine.candidates()
        with Timer() as t_recommend:
            engine.recommend(world.users[0], k=8)
        total = t_measures.elapsed_ms + t_candidates.elapsed_ms + t_recommend.elapsed_ms
        totals.append(total)
        measure_fractions.append(
            t_measures.elapsed_ms / total if total > 0 else 0.0
        )
        table.add_row(
            n_classes,
            len(world.kb.latest().graph),
            t_measures.elapsed_ms,
            t_candidates.elapsed_ms,
            t_recommend.elapsed_ms,
            total,
        )

    return ExperimentResult(
        experiment_id="e10",
        title="Scalability of the recommendation pipeline",
        claim=(
            "the model must give humans an overview 'without requiring a "
            "significant amount of work from them' (Section I) -- i.e. stay "
            "interactive as the KB grows"
        ),
        tables=[table],
        shape_checks={
            "latency grows with KB size": totals[-1] > totals[0],
            "largest size stays interactive (< 60s)": totals[-1] < 60_000.0,
            "measure evaluation dominates the pipeline": measure_fractions[-1] > 0.5,
        },
        notes="cold caches per size; ms wall-clock; seed 909",
    )
