"""E7 (Figure 4): fairness-aware group selection vs. naive aggregation.

Claim (Section III.d): "it is possible to have a human u that is the least
satisfied human in the group for all measures in the recommendations list
... In actual life, we should be able to recommend measures that are both
strongly related and fair to the majority of the group members."

Workload: groups of increasing size drawn from a user population with mixed
interests.  Strategies: ``average``, ``least_misery`` and
``fairness_aware`` (beta = 0.5).  Reported per group size (mean over
groups): minimum member satisfaction, mean satisfaction, and the Gini
coefficient of satisfactions.

Expected shape: fairness-aware and least-misery dominate plain averaging on
minimum satisfaction; averaging yields the highest mean; the fairness-aware
strategy pays only a bounded mean-satisfaction cost for its fairness gain.
"""

from __future__ import annotations

from typing import Dict, List

from repro.eval.experiments.common import class_items, make_world
from repro.eval.harness import ExperimentResult
from repro.eval.tables import TextTable
from repro.measures.catalog import default_catalog
from repro.profiles.group import Group
from repro.recommender.fairness import (
    mean_satisfaction,
    min_satisfaction,
    satisfaction_gini,
    select_package,
)
from repro.recommender.ranking import generate_candidates, utility_scores
from repro.recommender.relatedness import RelatednessScorer

K = 8
STRATEGIES = ("average", "least_misery", "fairness_aware")


def run(scale: float = 1.0) -> ExperimentResult:
    """Run E7 (see module docstring)."""
    world = make_world(
        scale=max(scale, 1.0),  # needs enough users for size-8 groups
        seed=606,
        n_users=24,
        hotspot_affinity=0.5,
    )
    context = world.latest_context()
    candidates = class_items(
        generate_candidates(default_catalog(), context, per_measure=30)
    )
    scorer = RelatednessScorer(alpha=1.0, schema=context.new_schema, spread_depth=1)
    utilities_all = {
        user.user_id: utility_scores(user, candidates, scorer) for user in world.users
    }

    group_sizes = [2, 4, 8]
    table = TextTable(
        title=f"E7: group strategies at package size {K} (mean over groups)",
        columns=["group size", "strategy", "min satisfaction", "mean satisfaction", "gini"],
    )

    stats: Dict[str, Dict[int, Dict[str, float]]] = {s: {} for s in STRATEGIES}
    for size in group_sizes:
        groups = [
            Group(f"size{size}-{i}", tuple(world.users[i * size : (i + 1) * size]))
            for i in range(len(world.users) // size)
        ]
        for strategy in STRATEGIES:
            mins: List[float] = []
            means: List[float] = []
            ginis: List[float] = []
            for group in groups:
                utilities = {u.user_id: utilities_all[u.user_id] for u in group}
                package = select_package(
                    group, candidates, utilities, K, strategy=strategy, beta=0.5
                )
                mins.append(min_satisfaction(group, package, utilities))
                means.append(mean_satisfaction(group, package, utilities))
                ginis.append(satisfaction_gini(group, package, utilities))
            n = len(groups)
            stats[strategy][size] = {
                "min": sum(mins) / n,
                "mean": sum(means) / n,
                "gini": sum(ginis) / n,
            }
            table.add_row(
                size,
                strategy,
                stats[strategy][size]["min"],
                stats[strategy][size]["mean"],
                stats[strategy][size]["gini"],
            )

    largest = group_sizes[-1]
    fair_gain = (
        stats["fairness_aware"][largest]["min"] - stats["average"][largest]["min"]
    )
    mean_cost = (
        stats["average"][largest]["mean"] - stats["fairness_aware"][largest]["mean"]
    )

    return ExperimentResult(
        experiment_id="e7",
        title="Fair group recommendation vs. naive aggregation",
        claim=(
            "'we should be able to recommend measures that are both strongly "
            "related and fair to the majority of the group members' "
            "(Section III.d)"
        ),
        tables=[table],
        shape_checks={
            "fairness-aware min-satisfaction >= average's at every size": all(
                stats["fairness_aware"][s]["min"] >= stats["average"][s]["min"] - 1e-9
                for s in group_sizes
            ),
            # Item-level least misery does NOT guarantee package-level
            # fairness -- the set-level strategy must beat it, which is the
            # paper's argument for reasoning about the package as a whole.
            "set-level fairness beats item-level least-misery on min": all(
                stats["fairness_aware"][s]["min"]
                >= stats["least_misery"][s]["min"] - 1e-9
                for s in group_sizes
            ),
            "least-misery distributes more evenly than average (gini)": all(
                stats["least_misery"][s]["gini"] <= stats["average"][s]["gini"] + 1e-9
                for s in group_sizes
            ),
            "averaging achieves the highest mean satisfaction": all(
                stats["average"][s]["mean"]
                >= max(
                    stats["least_misery"][s]["mean"],
                    stats["fairness_aware"][s]["mean"],
                )
                - 1e-9
                for s in group_sizes
            ),
            "fairness-aware is more even than average (lower gini) at size 8": (
                stats["fairness_aware"][largest]["gini"]
                <= stats["average"][largest]["gini"] + 1e-9
            ),
            "fairness gain does not cost more than its size in mean": fair_gain
            >= 0.0
            and mean_cost <= max(0.2, 2.0 * max(fair_gain, 0.01)),
        },
        notes="24 users; groups partitioned by id; beta=0.5; seed 606",
    )
