"""E1 (Table 1): different measures expose different views of evolution.

Claim (Section II.d): "there are many different views of evolution that we
could consider according to the user's interest."  If the views were
redundant, recommending *measures* would be pointless; the experiment
quantifies their disagreement: Kendall tau and top-10 overlap between the
class rankings of every pair of class-target measures in the catalogue.

Expected shape: measures within one family agree more than measures across
families; at least one cross-family pair has low agreement (tau well below
1), confirming that the catalogue spans genuinely different views.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List

from repro.eval.experiments.common import make_world
from repro.eval.harness import ExperimentResult
from repro.eval.metrics import kendall_tau, top_k_overlap
from repro.eval.tables import TextTable
from repro.measures.base import TargetKind
from repro.measures.catalog import default_catalog


def run(scale: float = 1.0) -> ExperimentResult:
    """Run E1 (see module docstring)."""
    world = make_world(scale=scale, seed=101)
    context = world.latest_context()
    catalog = default_catalog()
    results = catalog.compute_all(context)

    rankings: Dict[str, List] = {}
    families: Dict[str, str] = {}
    for name, result in results.items():
        if result.target_kind is not TargetKind.CLASS:
            continue
        rankings[name] = result.ranking()
        families[name] = catalog.get(name).family.value

    table = TextTable(
        title="E1: pairwise agreement between measure rankings (classes)",
        columns=["measure a", "measure b", "same family", "kendall tau", "top-10 overlap"],
    )
    taus_within: List[float] = []
    taus_across: List[float] = []
    for a, b in combinations(sorted(rankings), 2):
        tau = kendall_tau(rankings[a], rankings[b])
        overlap = top_k_overlap(rankings[a], rankings[b], k=10)
        same_family = families[a] == families[b]
        (taus_within if same_family else taus_across).append(tau)
        table.add_row(a, b, same_family, tau, overlap)

    mean_within = sum(taus_within) / len(taus_within) if taus_within else 1.0
    mean_across = sum(taus_across) / len(taus_across) if taus_across else 1.0

    summary = TextTable(
        title="E1 summary: mean tau by family relation",
        columns=["relation", "mean kendall tau", "pairs"],
    )
    summary.add_row("same family", mean_within, len(taus_within))
    summary.add_row("cross family", mean_across, len(taus_across))

    return ExperimentResult(
        experiment_id="e1",
        title="Measures expose different views of evolution",
        claim=(
            "'there are many different views of evolution that we could "
            "consider according to the user's interest' (Section II.d)"
        ),
        tables=[table, summary],
        shape_checks={
            "some cross-family pair disagrees substantially (tau < 0.6)": any(
                t < 0.6 for t in taus_across
            ),
            "no pair of distinct measures is identical (tau < 1 for all)": all(
                t < 1.0 for t in taus_across + taus_within
            ),
            "within-family agreement exceeds cross-family agreement": mean_within
            > mean_across,
        },
        notes=f"world: {len(context.union_classes())} classes, seed 101",
    )
