"""E2 (Table 2): importance shifts beat raw counts on cumulative effect.

Claim (Section II.d): measuring "how much the importance of that
class/property has changed ... is, in many cases, superior to the simple
counting of changes, because it shows the cumulative effect of these
changes on the class; and not all changes have the same effect."

Planted workload: ``n_pairs`` (erosion, churn) class pairs, each with the
*same number* of low-level changes between V1 and V2.

* *churn* classes shuffle their instance links (delete one, add another):
  high change count, near-zero semantic effect;
* *erosion* classes lose links outright and gain only cosmetic attribute
  triples: the same change count, but their semantic centrality erodes.

Ground truth: the erosion classes are the "really affected" ones.  The
experiment reports precision@n_pairs of recovering them from each measure's
ranking (restricted to the planted classes).  Expected shape: the semantic
shift measures dominate the count measure; the count measure is near chance
(0.5) because counts cannot separate the pairs.
"""

from __future__ import annotations

from typing import List

from repro.eval.experiments.common import scaled
from repro.eval.harness import ExperimentResult
from repro.eval.metrics import precision_at_k
from repro.eval.tables import TextTable
from repro.kb.graph import Graph
from repro.kb.namespaces import (
    RDF_PROPERTY,
    RDF_TYPE,
    RDFS_CLASS,
    RDFS_DOMAIN,
    RDFS_RANGE,
)
from repro.kb.terms import IRI
from repro.kb.triples import Triple
from repro.kb.version import VersionedKnowledgeBase
from repro.measures.base import EvolutionContext
from repro.measures.catalog import default_catalog
from repro.synthetic.schema_gen import SYN


def _build_planted_context(n_pairs: int, instances_per_class: int) -> tuple:
    """Build the erosion/churn workload; returns (context, erosion, churn).

    Each planted class owns an isolated (class, property, target) triple-star
    so the relative-cardinality denominators of different pairs never
    interact.  A shared ``Noise`` class contributes stable links onto every
    target, keeping RC strictly below 1 so it has room to move.

    Between V1 and V2:

    * *churn* classes replace 3 instances with 3 identical new ones (same
      links): 6 typing changes mentioning the class, zero semantic effect;
    * *erosion* classes replace 2 instances, but the replacements arrive
      without links: only 4 typing changes, yet the class's relative
      cardinality (and hence its centrality/relevance) genuinely drops.

    Counting therefore *prefers the wrong classes* (churn has more
    changes), while the importance shifts isolate the erosion.
    """
    m = instances_per_class
    old = Graph()
    erosion: List[IRI] = []
    churn: List[IRI] = []

    noise_cls = SYN.Noise
    old.add(Triple(noise_cls, RDF_TYPE, RDFS_CLASS))
    noise_instances = [SYN[f"noise{i}"] for i in range(m)]
    for inst in noise_instances:
        old.add(Triple(inst, RDF_TYPE, noise_cls))

    for pair in range(n_pairs):
        for role, bucket in (("E", erosion), ("K", churn)):
            cls = SYN[f"{role}{pair}"]
            bucket.append(cls)
            target_cls = SYN[f"T_{role}{pair}"]
            prop = SYN[f"p_{role}{pair}"]
            noise_prop = SYN[f"pn_{role}{pair}"]
            old.add(Triple(cls, RDF_TYPE, RDFS_CLASS))
            old.add(Triple(target_cls, RDF_TYPE, RDFS_CLASS))
            for p, dom in ((prop, cls), (noise_prop, noise_cls)):
                old.add(Triple(p, RDF_TYPE, RDF_PROPERTY))
                old.add(Triple(p, RDFS_DOMAIN, dom))
                old.add(Triple(p, RDFS_RANGE, target_cls))
            for i in range(m):
                target_inst = SYN[f"T_{role}{pair}_i{i}"]
                old.add(Triple(target_inst, RDF_TYPE, target_cls))
                # Stable noise links keep the RC denominator open.
                old.add(Triple(noise_instances[i], noise_prop, target_inst))
                inst = SYN[f"{role}{pair}_i{i}"]
                old.add(Triple(inst, RDF_TYPE, cls))
                old.add(Triple(inst, prop, target_inst))

    new = old.copy()
    for pair in range(n_pairs):
        # Churn: 3 instances swapped for identical replacements (6 typing
        # changes mentioning K, links preserved -> no semantic effect).
        churn_cls, churn_prop = SYN[f"K{pair}"], SYN[f"p_K{pair}"]
        for i in range(3):
            inst = SYN[f"K{pair}_i{i}"]
            target_inst = SYN[f"T_K{pair}_i{i}"]
            replacement = SYN[f"K{pair}_r{i}"]
            new.remove(Triple(inst, RDF_TYPE, churn_cls))
            new.remove(Triple(inst, churn_prop, target_inst))
            new.add(Triple(replacement, RDF_TYPE, churn_cls))
            new.add(Triple(replacement, churn_prop, target_inst))
        # Erosion: 2 instances swapped but the replacements lose their links
        # (4 typing changes mentioning E, link count drops -> RC drops).
        erosion_cls, erosion_prop = SYN[f"E{pair}"], SYN[f"p_E{pair}"]
        for i in range(2):
            inst = SYN[f"E{pair}_i{i}"]
            target_inst = SYN[f"T_E{pair}_i{i}"]
            replacement = SYN[f"E{pair}_r{i}"]
            new.remove(Triple(inst, RDF_TYPE, erosion_cls))
            new.remove(Triple(inst, erosion_prop, target_inst))
            new.add(Triple(replacement, RDF_TYPE, erosion_cls))

    kb = VersionedKnowledgeBase("planted")
    v1 = kb.commit(old, copy=False)
    v2 = kb.commit(new, copy=False)
    return EvolutionContext(v1, v2), erosion, churn


def run(scale: float = 1.0) -> ExperimentResult:
    """Run E2 (see module docstring)."""
    n_pairs = scaled(8, scale, minimum=3)
    context, erosion, churn = _build_planted_context(n_pairs, instances_per_class=6)
    planted = set(erosion) | set(churn)
    truth = set(erosion)

    catalog = default_catalog()
    results = catalog.compute_all(context)

    table = TextTable(
        title=f"E2: precision@{n_pairs} at recovering semantically affected classes",
        columns=["measure", "family", f"precision@{n_pairs}"],
    )
    precisions = {}
    for name in (
        "class_change_count",
        "neighborhood_change_count",
        "betweenness_shift",
        "bridging_centrality_shift",
        "centrality_shift",
        "relevance_shift",
    ):
        ranking = [cls for cls in results[name].ranking() if cls in planted]
        precision = precision_at_k(ranking, truth, n_pairs)
        precisions[name] = precision
        table.add_row(name, catalog.get(name).family.value, precision)

    count_p = precisions["class_change_count"]
    centrality_p = precisions["centrality_shift"]
    relevance_p = precisions["relevance_shift"]

    return ExperimentResult(
        experiment_id="e2",
        title="Importance shift vs. raw change counting",
        claim=(
            "importance-shift measures are 'in many cases, superior to the "
            "simple counting of changes, because [they show] the cumulative "
            "effect of these changes' (Section II.d)"
        ),
        tables=[table],
        shape_checks={
            "centrality shift beats counting": centrality_p > count_p,
            "relevance shift beats counting": relevance_p > count_p,
            "counting prefers the wrong (high-churn) classes": count_p <= 0.5,
            "a semantic shift measure achieves high precision (>= 0.75)": max(
                centrality_p, relevance_p
            )
            >= 0.75,
        },
        notes=(
            f"{n_pairs} erosion/churn pairs; churn = 6 semantically-null "
            "changes, erosion = 4 effective changes"
        ),
    )
