"""The experiment harness: run, check shape, print.

Each derived experiment (DESIGN.md section 3) is a module under
:mod:`repro.eval.experiments` exposing ``run(scale: float = 1.0) ->
ExperimentResult``.  An :class:`ExperimentResult` carries the printable
tables *and* machine-checkable ``shape_checks`` -- booleans asserting the
qualitative shape the paper's claim predicts (who wins, monotonicity,
crossovers).  EXPERIMENTS.md records these checks; the test suite asserts
them; the benchmark harness prints the tables.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Dict, List

from repro.eval.tables import TextTable

#: Registered experiment ids, in run order.
EXPERIMENT_IDS = (
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12",
    "e13",
)

_MODULES = {
    "e1": "repro.eval.experiments.e1_views",
    "e2": "repro.eval.experiments.e2_superiority",
    "e3": "repro.eval.experiments.e3_neighborhood",
    "e4": "repro.eval.experiments.e4_relatedness",
    "e5": "repro.eval.experiments.e5_diversity",
    "e6": "repro.eval.experiments.e6_group_diversity",
    "e7": "repro.eval.experiments.e7_fairness",
    "e8": "repro.eval.experiments.e8_anonymity",
    "e9": "repro.eval.experiments.e9_transparency",
    "e10": "repro.eval.experiments.e10_scalability",
    "e11": "repro.eval.experiments.e11_deltas",
    "e12": "repro.eval.experiments.e12_ablations",
    "e13": "repro.eval.experiments.e13_robustness",
}


@dataclass
class ExperimentResult:
    """Everything one experiment produces."""

    experiment_id: str
    title: str
    claim: str  # the paper sentence the experiment operationalises
    tables: List[TextTable] = field(default_factory=list)
    shape_checks: Dict[str, bool] = field(default_factory=dict)
    notes: str = ""

    def passed(self) -> bool:
        """True when every shape check holds."""
        return all(self.shape_checks.values())

    def render(self) -> str:
        """Full printable report of the experiment."""
        parts = [
            f"== {self.experiment_id.upper()}: {self.title} ==",
            f"claim: {self.claim}",
            "",
        ]
        for table in self.tables:
            parts.append(table.render())
            parts.append("")
        if self.shape_checks:
            parts.append("shape checks:")
            for name, ok in sorted(self.shape_checks.items()):
                parts.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)


def run_experiment(experiment_id: str, scale: float = 1.0) -> ExperimentResult:
    """Run one experiment by id (``scale`` shrinks/grows the workload)."""
    module_name = _MODULES.get(experiment_id)
    if module_name is None:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {', '.join(EXPERIMENT_IDS)}"
        )
    module = importlib.import_module(module_name)
    result = module.run(scale=scale)
    if result.experiment_id != experiment_id:
        raise RuntimeError(
            f"module {module_name} returned id {result.experiment_id!r}, "
            f"expected {experiment_id!r}"
        )
    return result


def run_all(scale: float = 1.0) -> List[ExperimentResult]:
    """Run the whole suite in order."""
    return [run_experiment(eid, scale=scale) for eid in EXPERIMENT_IDS]
