"""Information-retrieval and ranking metrics, implemented from scratch.

All ranking metrics take a *ranked list* of item identifiers (best first)
and a ground-truth structure (a relevance mapping or a relevant-set), and
return values in [0, 1] unless stated otherwise.  Identifiers can be any
hashable type (item keys, IRIs, ...).
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Hashable, Mapping, Sequence, Set

Item = Hashable


def precision_at_k(ranking: Sequence[Item], relevant: Set[Item], k: int) -> float:
    """Fraction of the top-``k`` that is relevant (0.0 for k = 0)."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if k == 0:
        return 0.0
    top = ranking[:k]
    if not top:
        return 0.0
    return sum(1 for item in top if item in relevant) / k


def recall_at_k(ranking: Sequence[Item], relevant: Set[Item], k: int) -> float:
    """Fraction of the relevant set found in the top-``k`` (1.0 if none exist)."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if not relevant:
        return 1.0
    return sum(1 for item in ranking[:k] if item in relevant) / len(relevant)


def reciprocal_rank(ranking: Sequence[Item], relevant: Set[Item]) -> float:
    """1 / rank of the first relevant item (0.0 when none is ranked)."""
    for index, item in enumerate(ranking, start=1):
        if item in relevant:
            return 1.0 / index
    return 0.0


def average_precision(ranking: Sequence[Item], relevant: Set[Item]) -> float:
    """Mean of precision@hit over relevant positions (0.0 when none ranked)."""
    if not relevant:
        return 1.0
    hits = 0
    total = 0.0
    for index, item in enumerate(ranking, start=1):
        if item in relevant:
            hits += 1
            total += hits / index
    if hits == 0:
        return 0.0
    return total / len(relevant)


def dcg_at_k(ranking: Sequence[Item], relevance: Mapping[Item, float], k: int) -> float:
    """Discounted cumulative gain with log2 discounts (unbounded)."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    return sum(
        relevance.get(item, 0.0) / math.log2(position + 1)
        for position, item in enumerate(ranking[:k], start=1)
    )


def ndcg_at_k(ranking: Sequence[Item], relevance: Mapping[Item, float], k: int) -> float:
    """Normalised DCG: DCG over the ideal DCG (1.0 for an empty truth)."""
    ideal_order = sorted(relevance, key=lambda item: -relevance[item])
    ideal = dcg_at_k(ideal_order, relevance, k)
    if ideal <= 0.0:
        return 1.0
    return dcg_at_k(ranking, relevance, k) / ideal


def kendall_tau(ranking_a: Sequence[Item], ranking_b: Sequence[Item]) -> float:
    """Kendall's tau-a between two rankings of the same item set, in [-1, 1].

    Both rankings must contain exactly the same items; rankings of fewer
    than two items have tau 1.0 by convention.
    """
    if set(ranking_a) != set(ranking_b):
        raise ValueError("rankings must contain the same items")
    if len(ranking_a) != len(set(ranking_a)):
        raise ValueError("rankings must not contain duplicates")
    n = len(ranking_a)
    if n < 2:
        return 1.0
    position_b = {item: index for index, item in enumerate(ranking_b)}
    concordant = 0
    discordant = 0
    for (i, a), (j, b) in combinations(enumerate(ranking_a), 2):
        if (position_b[a] < position_b[b]) == (i < j):
            concordant += 1
        else:
            discordant += 1
    return (concordant - discordant) / (concordant + discordant)


def rank_biased_overlap(
    ranking_a: Sequence[Item], ranking_b: Sequence[Item], p: float = 0.9
) -> float:
    """Rank-biased overlap (Webber et al.) of two possibly different lists.

    Top-weighted similarity in [0, 1]; tolerant of non-identical item sets.
    Truncated to the length of the longer list (no extrapolation).
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    depth = max(len(ranking_a), len(ranking_b))
    if depth == 0:
        return 1.0
    seen_a: Set[Item] = set()
    seen_b: Set[Item] = set()
    score = 0.0
    for d in range(1, depth + 1):
        if d <= len(ranking_a):
            seen_a.add(ranking_a[d - 1])
        if d <= len(ranking_b):
            seen_b.add(ranking_b[d - 1])
        overlap = len(seen_a & seen_b) / d
        score += (p ** (d - 1)) * overlap
    return (1.0 - p) * score


def top_k_overlap(ranking_a: Sequence[Item], ranking_b: Sequence[Item], k: int) -> float:
    """Jaccard overlap of the two top-``k`` sets (1.0 when both empty)."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    top_a = set(ranking_a[:k])
    top_b = set(ranking_b[:k])
    if not top_a and not top_b:
        return 1.0
    return len(top_a & top_b) / len(top_a | top_b)


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini inequality of non-negative values (0 = even; 0.0 for empty/all-zero)."""
    if any(v < 0 for v in values):
        raise ValueError("values must be non-negative")
    ordered = sorted(values)
    total = sum(ordered)
    n = len(ordered)
    if n == 0 or total <= 0.0:
        return 0.0
    cumulative = sum((index + 1) * value for index, value in enumerate(ordered))
    return (2.0 * cumulative) / (n * total) - (n + 1.0) / n
