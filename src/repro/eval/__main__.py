"""CLI: run the derived experiment suite and print every table.

Usage::

    python -m repro.eval            # run everything at full scale
    python -m repro.eval e4 e7      # run selected experiments
    python -m repro.eval --scale 0.3 e1
"""

from __future__ import annotations

import argparse
import sys

from repro.eval.harness import EXPERIMENT_IDS, run_experiment


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Run the derived experiment suite (see DESIGN.md section 3).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (default: all of {', '.join(EXPERIMENT_IDS)})",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (default 1.0)",
    )
    args = parser.parse_args(argv)

    ids = args.experiments or list(EXPERIMENT_IDS)
    unknown = [eid for eid in ids if eid not in EXPERIMENT_IDS]
    if unknown:
        parser.error(f"unknown experiment id(s): {', '.join(unknown)}")

    all_passed = True
    for eid in ids:
        result = run_experiment(eid, scale=args.scale)
        print(result.render())
        print()
        all_passed &= result.passed()
    return 0 if all_passed else 1


if __name__ == "__main__":
    sys.exit(main())
