"""Evaluation framework (system S18): metrics, tables, experiment harness."""

from repro.eval.harness import (
    EXPERIMENT_IDS,
    ExperimentResult,
    run_all,
    run_experiment,
)
from repro.eval.metrics import (
    average_precision,
    dcg_at_k,
    gini_coefficient,
    kendall_tau,
    ndcg_at_k,
    precision_at_k,
    rank_biased_overlap,
    recall_at_k,
    reciprocal_rank,
    top_k_overlap,
)
from repro.eval.tables import TextTable, format_cell

__all__ = [
    "EXPERIMENT_IDS",
    "ExperimentResult",
    "run_all",
    "run_experiment",
    "average_precision",
    "dcg_at_k",
    "gini_coefficient",
    "kendall_tau",
    "ndcg_at_k",
    "precision_at_k",
    "rank_biased_overlap",
    "recall_at_k",
    "reciprocal_rank",
    "top_k_overlap",
    "TextTable",
    "format_cell",
]
