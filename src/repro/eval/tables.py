"""Plain-text tables: what the benchmark harness prints per experiment.

No third-party table library: a small fixed-width renderer with typed cell
formatting, so benchmark output diffs cleanly and EXPERIMENTS.md can embed
the rendered tables verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


def format_cell(value: object) -> str:
    """Render one cell: floats to 3 decimals, everything else via str."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


@dataclass
class TextTable:
    """A titled fixed-width table."""

    title: str
    columns: Sequence[str]
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row; must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """The table as an aligned text block."""
        cells = [[format_cell(c) for c in row] for row in self.rows]
        headers = [str(c) for c in self.columns]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
            for i in range(len(headers))
        ]

        def line(parts: Sequence[str]) -> str:
            return "  ".join(part.ljust(width) for part, width in zip(parts, widths)).rstrip()

        separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
        out = [self.title, separator, line(headers), separator]
        out.extend(line(row) for row in cells)
        out.append(separator)
        return "\n".join(out)

    def column(self, name: str) -> List[object]:
        """All values of one column (raises ``KeyError`` for unknown names)."""
        try:
            index = list(self.columns).index(name)
        except ValueError:
            raise KeyError(f"no column {name!r} (have {list(self.columns)})") from None
        return [row[index] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)
