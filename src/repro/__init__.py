"""repro -- reproduction of "On Recommending Evolution Measures: A Human-aware
Approach" (Stefanidis, Kondylakis, Troullinou; ICDE 2017).

The package implements, from scratch, the full processing model the paper
envisions:

* a versioned RDF-style knowledge-base substrate (:mod:`repro.kb`),
* low-level and high-level delta computation (:mod:`repro.deltas`),
* the Section II catalogue of evolution measures (:mod:`repro.measures`),
* synthetic evolving knowledge bases and synthetic human feedback
  (:mod:`repro.synthetic`),
* the human model -- users, groups, interest profiles (:mod:`repro.profiles`),
* the human-aware recommendation engine with the five Section III
  perspectives: relatedness, transparency, diversity, fairness and anonymity
  (:mod:`repro.recommender`, :mod:`repro.provenance`, :mod:`repro.privacy`),
* and an evaluation framework regenerating the derived experiment suite
  documented in ``DESIGN.md`` (:mod:`repro.eval`).

Quickstart
----------

>>> from repro import synthetic, measures, recommender
>>> world = synthetic.generate_world(seed=7, n_classes=60)
>>> catalog = measures.default_catalog()
>>> engine = recommender.RecommenderEngine(world.kb, catalog)
>>> package = engine.recommend(world.users[0], k=5)
>>> len(package.items)
5

Public names are re-exported lazily (PEP 562) so importing :mod:`repro` stays
cheap and subpackages load on first use.
"""

from repro._version import __version__

_EXPORTS = {
    # kb
    "BNode": "repro.kb",
    "Graph": "repro.kb",
    "IRI": "repro.kb",
    "KnowledgeBaseError": "repro.kb",
    "Literal": "repro.kb",
    "SchemaView": "repro.kb",
    "Triple": "repro.kb",
    "VersionedKnowledgeBase": "repro.kb",
    # deltas
    "HighLevelDelta": "repro.deltas",
    "LowLevelDelta": "repro.deltas",
    # measures
    "EvolutionMeasure": "repro.measures",
    "MeasureCatalog": "repro.measures",
    "default_catalog": "repro.measures",
    "TrendAnalysis": "repro.measures",
    "WeightedMixMeasure": "repro.measures",
    "persona_mix": "repro.measures",
    # profiles
    "Group": "repro.profiles",
    "InterestProfile": "repro.profiles",
    "User": "repro.profiles",
    # recommender
    "RecommendationItem": "repro.recommender",
    "RecommendationPackage": "repro.recommender",
    "RecommenderEngine": "repro.recommender",
    "EngineConfig": "repro.recommender",
    # synthetic
    "generate_world": "repro.synthetic",
    "SyntheticWorld": "repro.synthetic",
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
