"""Interest spreading: decayed BFS activation from focus nodes.

Used by the synthetic user generator and the relatedness scorer: interest in
a class radiates to nearby classes with per-hop decay.
"""

from __future__ import annotations

from typing import Dict, Hashable, Sequence

from repro.graphtools.adjacency import UndirectedGraph
from repro.graphtools.traversal import bfs_distances

Node = Hashable


def spread_interest(
    graph: UndirectedGraph,
    foci: Sequence[Node],
    decay: float,
    depth: int,
) -> Dict[Node, float]:
    """Interest weights: ``max over foci of decay ** distance`` within ``depth``.

    Foci absent from the graph still receive their own full weight (1.0) --
    a user can care about a class that vanished from the schema.
    """
    weights: Dict[Node, float] = {}
    for focus in foci:
        if focus not in graph:
            weights[focus] = max(weights.get(focus, 0.0), 1.0)
            continue
        for node, distance in bfs_distances(graph, focus).items():
            if distance > depth:
                continue
            weight = decay**distance
            if weight > weights.get(node, 0.0):
                weights[node] = weight
    return weights
