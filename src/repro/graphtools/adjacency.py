"""A minimal undirected graph over hashable nodes.

This is the substrate for the structural centrality algorithms.  Nodes can be
any hashable value; the measure layer uses :class:`~repro.kb.terms.IRI`
class terms.  Parallel edges collapse and self-loops are ignored (they do not
affect shortest-path centralities).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Set, Tuple

Node = Hashable


class UndirectedGraph:
    """An undirected simple graph: adjacency sets over hashable nodes.

    >>> g = UndirectedGraph()
    >>> g.add_edge("a", "b")
    >>> sorted(g.neighbors("a"))
    ['b']
    """

    def __init__(
        self,
        edges: Iterable[Tuple[Node, Node]] = (),
        nodes: Iterable[Node] = (),
    ) -> None:
        self._adj: Dict[Node, Set[Node]] = {}
        for node in nodes:
            self.add_node(node)
        for a, b in edges:
            self.add_edge(a, b)

    def add_node(self, node: Node) -> None:
        """Ensure ``node`` exists (no-op if already present)."""
        self._adj.setdefault(node, set())

    def add_edge(self, a: Node, b: Node) -> None:
        """Add the undirected edge ``{a, b}``; self-loops are ignored."""
        self.add_node(a)
        self.add_node(b)
        if a == b:
            return
        self._adj[a].add(b)
        self._adj[b].add(a)

    def remove_edge(self, a: Node, b: Node) -> None:
        """Remove edge ``{a, b}`` if present."""
        if a in self._adj:
            self._adj[a].discard(b)
        if b in self._adj:
            self._adj[b].discard(a)

    def neighbors(self, node: Node) -> Set[Node]:
        """The neighbour set of ``node`` (raises ``KeyError`` if unknown)."""
        return self._adj[node]

    def degree(self, node: Node) -> int:
        """Number of neighbours of ``node``."""
        return len(self._adj[node])

    def has_edge(self, a: Node, b: Node) -> bool:
        """True if the undirected edge ``{a, b}`` is present."""
        return a in self._adj and b in self._adj[a]

    def nodes(self) -> Iterator[Node]:
        """Iterate all nodes."""
        return iter(self._adj)

    def edges(self) -> Iterator[Tuple[Node, Node]]:
        """Iterate each undirected edge exactly once."""
        seen: Set[Node] = set()
        for node, neighbours in self._adj.items():
            for other in neighbours:
                if other not in seen:
                    yield (node, other)
            seen.add(node)

    def edge_count(self) -> int:
        """Number of undirected edges."""
        return sum(len(n) for n in self._adj.values()) // 2

    def __contains__(self, node: object) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:
        return f"UndirectedGraph(<{len(self)} nodes, {self.edge_count()} edges>)"
