"""Incremental betweenness maintenance for evolving graphs.

The evolution workload evaluates betweenness on the class graph of *every*
version of a knowledge base, and adjacent versions differ by a small delta.
Betweenness is a per-component quantity -- shortest paths never cross
component boundaries -- so a version's scores can be maintained from its
parent's by recomputing only the components touched by the delta and
carrying every untouched component's raw scores over verbatim.

:func:`update_raw_betweenness` implements exactly that, with a guard rail:
when the dirty region exceeds ``fallback_ratio`` of the graph, a full
Brandes recomputation is cheaper than the bookkeeping, and the update falls
back to it (reported via :attr:`BetweennessUpdate.incremental`).

Bit-for-bit exactness.  The differential evolution harness asserts that
incremental scores equal a cold recomputation *exactly*, not approximately.
That holds because:

* raw scores are accumulated with sorted dense-index adjacency and sources
  in node-list order (:mod:`repro.graphtools.betweenness`), so a component's
  accumulation order depends only on the relative order of its nodes;
* contributions from sources outside a node's component are exactly ``0.0``
  (adding them is a float no-op), so restricting sources to the dirty
  components reproduces the cold per-node sums;
* callers keep node insertion order content-deterministic (the measure layer
  builds class graphs in sorted IRI order), so an untouched component's
  relative node order -- and hence its floats -- is stable across versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Mapping, Set

from repro.graphtools.adjacency import UndirectedGraph
from repro.graphtools.betweenness import (
    accumulate_dependencies,
    dense_adjacency,
    raw_betweenness,
)
from repro.graphtools.traversal import bfs_distances

Node = Hashable

#: Default dirty-region share above which a full recomputation is used.
DEFAULT_FALLBACK_RATIO = 0.5


@dataclass(frozen=True)
class BetweennessUpdate:
    """The outcome of one incremental betweenness update.

    ``raw`` maps every node of the new graph to its unnormalized
    (pair-counted-once) score; ``incremental`` is False when the update fell
    back to a full Brandes pass; ``dirty_count`` is the number of nodes in
    delta-touched components (0 when nothing relevant changed).
    """

    raw: Dict[Node, float]
    incremental: bool
    dirty_count: int


def edge_key_set(graph: UndirectedGraph) -> Set[FrozenSet[Node]]:
    """The graph's undirected edges as order-free frozenset keys."""
    return {frozenset(edge) for edge in graph.edges()}


def _full(graph: UndirectedGraph, dirty_count: int) -> BetweennessUpdate:
    return BetweennessUpdate(raw_betweenness(graph), False, dirty_count)


def update_raw_betweenness(
    graph: UndirectedGraph,
    base_graph: UndirectedGraph,
    base_raw: Mapping[Node, float],
    fallback_ratio: float = DEFAULT_FALLBACK_RATIO,
    edge_keys: Set[FrozenSet[Node]] | None = None,
    base_edge_keys: Set[FrozenSet[Node]] | None = None,
) -> BetweennessUpdate:
    """Raw betweenness of ``graph``, maintained from ``base_graph``'s scores.

    ``base_raw`` must be the raw (unnormalized) betweenness of
    ``base_graph`` -- e.g. a previous :func:`raw_betweenness` result or the
    ``raw`` of an earlier update, so maintenance chains across many
    versions.  Components of ``graph`` untouched by the edge/node delta
    keep their base scores; touched components are recomputed exactly.

    ``edge_keys`` / ``base_edge_keys`` optionally supply the graphs'
    precomputed frozenset edge-key sets (see :func:`edge_key_set`), letting
    callers that cache them across a version chain skip rebuilding both
    sets per update.

    The update falls back to a full recomputation (still returning correct
    scores) when the dirty components cover *strictly more* than
    ``fallback_ratio * len(graph)`` nodes -- at exactly the threshold the
    incremental path is still used -- or when ``base_raw`` does not cover a
    carried-over node (a corrupted or mismatched artefact).
    """
    if fallback_ratio < 0.0:
        raise ValueError(f"fallback_ratio must be >= 0, got {fallback_ratio}")
    n = len(graph)
    if n == 0:
        return BetweennessUpdate({}, True, 0)

    if edge_keys is None:
        edge_keys = edge_key_set(graph)
    if base_edge_keys is None:
        base_edge_keys = edge_key_set(base_graph)
    changed_edges = edge_keys ^ base_edge_keys
    seeds: Set[Node] = {
        node for edge in changed_edges for node in edge if node in graph
    }
    seeds.update(node for node in graph.nodes() if node not in base_graph)

    dirty: Set[Node] = set()
    for seed in seeds:
        if seed not in dirty:
            dirty |= set(bfs_distances(graph, seed))

    if len(dirty) > fallback_ratio * n:
        return _full(graph, len(dirty))

    nodes, adjacency = dense_adjacency(graph)
    centrality = [0.0] * n
    if dirty:
        accumulate_dependencies(
            adjacency,
            (index for index, node in enumerate(nodes) if node in dirty),
            centrality,
        )
    raw: Dict[Node, float] = {}
    for index, node in enumerate(nodes):
        if node in dirty:
            raw[node] = centrality[index] * 0.5
        else:
            carried = base_raw.get(node)
            if carried is None:
                return _full(graph, len(dirty))
            raw[node] = carried
    return BetweennessUpdate(raw, True, len(dirty))
