"""Breadth-first traversal utilities: distances, components, path lengths."""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Set

from repro.graphtools.adjacency import UndirectedGraph

Node = Hashable


def bfs_distances(graph: UndirectedGraph, source: Node) -> Dict[Node, int]:
    """Hop distances from ``source`` to every reachable node (including itself).

    >>> g = UndirectedGraph([("a", "b"), ("b", "c")])
    >>> bfs_distances(g, "a")["c"]
    2
    """
    if source not in graph:
        raise KeyError(f"source node not in graph: {source!r}")
    distances: Dict[Node, int] = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for neighbour in graph.neighbors(node):
            if neighbour not in distances:
                distances[neighbour] = distances[node] + 1
                frontier.append(neighbour)
    return distances


def connected_components(graph: UndirectedGraph) -> List[Set[Node]]:
    """The connected components, largest first (ties broken arbitrarily)."""
    remaining: Set[Node] = set(graph.nodes())
    components: List[Set[Node]] = []
    while remaining:
        start = next(iter(remaining))
        component = set(bfs_distances(graph, start))
        components.append(component)
        remaining -= component
    components.sort(key=len, reverse=True)
    return components


def shortest_path_lengths(graph: UndirectedGraph) -> Dict[Node, Dict[Node, int]]:
    """All-pairs hop distances (per-source BFS); unreachable pairs are absent."""
    return {node: bfs_distances(graph, node) for node in graph.nodes()}
