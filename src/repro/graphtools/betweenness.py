"""Betweenness centrality via Brandes' algorithm.

Section II.c: "the Betweenness of a class/node counts the number of the
shortest paths from all nodes to all others that pass through that node."
Brandes (2001) computes exact betweenness for all nodes in
``O(|V| * |E|)`` on unweighted graphs by accumulating pair dependencies
during one BFS per source.

Implementation notes:

* Nodes are relabelled to dense integers and adjacency is flattened to
  index lists before the per-source loops -- on the class graphs this
  library produces (IRI nodes), avoiding per-visit hashing makes the full
  catalogue evaluation several times faster (experiment E10).
* Adjacency index lists are *sorted* and source order follows the node
  list, so the floating-point accumulation order is a pure function of the
  graph content (given a node insertion order).  The incremental
  maintenance path (:mod:`repro.graphtools.incremental`) relies on this to
  carry per-component scores across versions bit-for-bit.
* Scores are produced in two stages -- :func:`raw_betweenness` (pair-counted
  once, unnormalized) then :func:`normalize_betweenness` -- so cached raw
  scores can be renormalized for a different total node count without
  reaccumulating, again with bit-identical arithmetic.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Tuple

from repro.graphtools.adjacency import UndirectedGraph

Node = Hashable


def dense_adjacency(graph: UndirectedGraph) -> Tuple[List[Node], List[List[int]]]:
    """The graph flattened to ``(nodes, adjacency)`` with sorted index lists.

    ``nodes`` follows the graph's node insertion order; ``adjacency[i]``
    holds the sorted dense indices of node ``i``'s neighbours.  Sorting makes
    every downstream accumulation order-independent of the underlying
    neighbour-set iteration order.
    """
    nodes: List[Node] = list(graph.nodes())
    index_of = {node: index for index, node in enumerate(nodes)}
    adjacency = [
        sorted(index_of[neighbour] for neighbour in graph.neighbors(node))
        for node in nodes
    ]
    return nodes, adjacency


def accumulate_dependencies(
    adjacency: List[List[int]],
    sources: Iterable[int],
    centrality: List[float],
) -> None:
    """Accumulate Brandes pair dependencies from ``sources`` into ``centrality``.

    Runs one BFS + dependency backpropagation per source, adding each
    source's contribution to ``centrality`` in place.  Restricting
    ``sources`` to whole connected components yields exactly those
    components' betweenness (shortest paths never leave a component).
    """
    n = len(adjacency)
    for source in sources:
        # Single-source shortest paths (BFS, unweighted).
        stack: List[int] = []
        predecessors: List[List[int]] = [[] for _ in range(n)]
        sigma = [0.0] * n
        sigma[source] = 1.0
        distance = [-1] * n
        distance[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            stack.append(node)
            node_distance = distance[node]
            node_sigma = sigma[node]
            for neighbour in adjacency[node]:
                if distance[neighbour] < 0:
                    distance[neighbour] = node_distance + 1
                    queue.append(neighbour)
                if distance[neighbour] == node_distance + 1:
                    sigma[neighbour] += node_sigma
                    predecessors[neighbour].append(node)

        # Dependency accumulation, farthest-first.
        delta = [0.0] * n
        while stack:
            node = stack.pop()
            coefficient = (1.0 + delta[node]) / sigma[node]
            for pred in predecessors[node]:
                delta[pred] += sigma[pred] * coefficient
            if node != source:
                centrality[node] += delta[node]


def raw_betweenness(graph: UndirectedGraph) -> Dict[Node, float]:
    """Unnormalized betweenness with each unordered pair counted once.

    This is the artefact worth caching across versions: raw scores are a
    per-component quantity (independent of the rest of the graph), and
    normalization for any total node count is one exact division away.
    """
    nodes, adjacency = dense_adjacency(graph)
    centrality = [0.0] * len(nodes)
    accumulate_dependencies(adjacency, range(len(nodes)), centrality)
    # Each undirected pair was counted twice (once per endpoint as source);
    # multiplying by 0.5 is exact, keeping raw scores bit-stable.
    return {node: centrality[index] * 0.5 for index, node in enumerate(nodes)}


def normalize_betweenness(raw: Dict[Node, float], n: int) -> Dict[Node, float]:
    """Raw scores divided by ``(n-1)(n-2)/2`` (networkx's undirected convention).

    ``n`` is the *total* node count of the graph the scores belong to;
    graphs with fewer than three nodes get all-zero scores.
    """
    if n <= 2:
        return {node: 0.0 for node in raw}
    denominator = (n - 1) * (n - 2) / 2.0
    return {node: value / denominator for node, value in raw.items()}


def betweenness_centrality(
    graph: UndirectedGraph, normalized: bool = True
) -> Dict[Node, float]:
    """Exact betweenness centrality of every node.

    With ``normalized=True`` scores are divided by ``(n-1)(n-2)/2`` (the
    number of node pairs excluding the node itself), matching networkx's
    convention for undirected graphs; graphs with fewer than three nodes get
    all-zero scores.
    """
    raw = raw_betweenness(graph)
    if not normalized:
        return raw
    return normalize_betweenness(raw, len(graph))
