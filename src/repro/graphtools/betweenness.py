"""Betweenness centrality via Brandes' algorithm.

Section II.c: "the Betweenness of a class/node counts the number of the
shortest paths from all nodes to all others that pass through that node."
Brandes (2001) computes exact betweenness for all nodes in
``O(|V| * |E|)`` on unweighted graphs by accumulating pair dependencies
during one BFS per source.

Implementation note: nodes are relabelled to dense integers and adjacency
is flattened to index lists before the per-source loops -- on the class
graphs this library produces (IRI nodes), avoiding per-visit hashing makes
the full-catalogue evaluation several times faster (experiment E10).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List

from repro.graphtools.adjacency import UndirectedGraph

Node = Hashable


def betweenness_centrality(
    graph: UndirectedGraph, normalized: bool = True
) -> Dict[Node, float]:
    """Exact betweenness centrality of every node.

    With ``normalized=True`` scores are divided by ``(n-1)(n-2)/2`` (the
    number of node pairs excluding the node itself), matching networkx's
    convention for undirected graphs; graphs with fewer than three nodes get
    all-zero scores.
    """
    nodes: List[Node] = list(graph.nodes())
    n = len(nodes)
    index_of = {node: index for index, node in enumerate(nodes)}
    adjacency: List[List[int]] = [
        [index_of[neighbour] for neighbour in graph.neighbors(node)] for node in nodes
    ]

    centrality = [0.0] * n
    for source in range(n):
        # Single-source shortest paths (BFS, unweighted).
        stack: List[int] = []
        predecessors: List[List[int]] = [[] for _ in range(n)]
        sigma = [0.0] * n
        sigma[source] = 1.0
        distance = [-1] * n
        distance[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            stack.append(node)
            node_distance = distance[node]
            node_sigma = sigma[node]
            for neighbour in adjacency[node]:
                if distance[neighbour] < 0:
                    distance[neighbour] = node_distance + 1
                    queue.append(neighbour)
                if distance[neighbour] == node_distance + 1:
                    sigma[neighbour] += node_sigma
                    predecessors[neighbour].append(node)

        # Dependency accumulation, farthest-first.
        delta = [0.0] * n
        while stack:
            node = stack.pop()
            coefficient = (1.0 + delta[node]) / sigma[node]
            for pred in predecessors[node]:
                delta[pred] += sigma[pred] * coefficient
            if node != source:
                centrality[node] += delta[node]

    # Each undirected pair was counted twice (once per endpoint as source).
    scale = 0.5
    if normalized:
        if n > 2:
            scale /= (n - 1) * (n - 2) / 2.0
        else:
            return {node: 0.0 for node in nodes}
    return {node: centrality[index] * scale for index, node in enumerate(nodes)}
