"""Bridging centrality (Hwang et al., 2006).

Section II.c: "A node with high Bridging Centrality is a node connecting
densely connected components in a graph."  Bridging centrality is the product
of two node scores:

* the *bridging coefficient*, a local measure of how much a node sits
  between high-degree regions::

      BC(v) = (1 / d(v)) / sum_{i in N(v)} 1 / d(i)

* the (global) betweenness centrality.

Nodes of degree 0 get bridging coefficient 0 by convention (they bridge
nothing); likewise when every neighbour has degree 0 -- impossible in an
undirected simple graph, but kept explicit for safety.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.graphtools.adjacency import UndirectedGraph
from repro.graphtools.betweenness import betweenness_centrality

Node = Hashable


def bridging_coefficient(graph: UndirectedGraph) -> Dict[Node, float]:
    """The bridging coefficient of every node (see module docstring)."""
    coefficients: Dict[Node, float] = {}
    for node in graph.nodes():
        degree = graph.degree(node)
        if degree == 0:
            coefficients[node] = 0.0
            continue
        # Accumulate in sorted term order: neighbors() is a set, whose
        # iteration order follows the per-process string hash salt, and
        # float addition is not associative -- an unsorted sum can differ
        # in the last ulp between processes, breaking the serving layer's
        # cross-process bit-identity contract.
        inverse_neighbour_degrees = sum(
            sorted(
                1.0 / graph.degree(neighbour)
                for neighbour in graph.neighbors(node)
                if graph.degree(neighbour) > 0
            )
        )
        if inverse_neighbour_degrees == 0.0:
            coefficients[node] = 0.0
        else:
            coefficients[node] = (1.0 / degree) / inverse_neighbour_degrees
    return coefficients


def bridging_centrality(
    graph: UndirectedGraph,
    normalized: bool = True,
    betweenness: Dict[Node, float] | None = None,
) -> Dict[Node, float]:
    """Bridging centrality: betweenness times bridging coefficient.

    ``betweenness`` lets callers reuse an already-computed betweenness map
    (it must match ``normalized``); by default it is computed here.
    """
    if betweenness is None:
        betweenness = betweenness_centrality(graph, normalized=normalized)
    coefficient = bridging_coefficient(graph)
    return {node: betweenness[node] * coefficient[node] for node in graph.nodes()}
