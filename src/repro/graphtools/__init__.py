"""Graph algorithms implemented from scratch (system S7 in DESIGN.md).

The structural evolution measures of Section II.c need betweenness and
bridging centrality over the class-level graph of a knowledge-base version.
These are implemented here on a plain adjacency representation
(:class:`UndirectedGraph`) with no third-party dependencies; the test suite
cross-checks them against networkx on random graphs.
"""

from repro.graphtools.adjacency import UndirectedGraph
from repro.graphtools.betweenness import (
    betweenness_centrality,
    normalize_betweenness,
    raw_betweenness,
)
from repro.graphtools.bridging import bridging_centrality, bridging_coefficient
from repro.graphtools.incremental import BetweennessUpdate, update_raw_betweenness
from repro.graphtools.spread import spread_interest
from repro.graphtools.traversal import (
    bfs_distances,
    connected_components,
    shortest_path_lengths,
)

__all__ = [
    "UndirectedGraph",
    "betweenness_centrality",
    "raw_betweenness",
    "normalize_betweenness",
    "BetweennessUpdate",
    "update_raw_betweenness",
    "bridging_centrality",
    "bridging_coefficient",
    "spread_interest",
    "bfs_distances",
    "connected_components",
    "shortest_path_lengths",
]
