"""Command-line interface: the processing model on files.

Subcommands::

    python -m repro generate  --out DIR [--seed N --classes N --versions N --users N]
                              [--format nt|binary]
        generate a synthetic world and save its KB + users under DIR
        (``--format binary`` writes the binary store layout directly)

    python -m repro convert   --src DIR --out DIR [--to binary|nt]
        migrate a KB directory between the two on-disk layouts.  The
        source layout is auto-detected; the conversion is lossless in
        both directions (identical version ids, metadata, triple sets,
        recorded deltas and term-interning order -- hence bit-identical
        measure results and recommendations from either copy).

    python -m repro measures  --kb DIR [--old ID --new ID] [--top K]
        print every catalogue measure's most-affected targets

    python -m repro recommend --kb DIR --users FILE --user ID [-k K] [--out FILE]
        print (and optionally save) a recommendation package for one user

    python -m repro report    --kb DIR --anonymity K [--strategy generalize|suppress]
        print the k-anonymous change report of the latest evolution step

    python -m repro compact-store --kb DIR [--retain SPEC]
                                  [--rollup-bytes B --rollup-records N]
        roll a binary store's commit log up into its base offline:
        rewrite ``kb.rpw`` from the live chain (atomic tmp +
        ``os.replace`` + dir fsync) and truncate ``commits.rpl``.  With
        ``--retain`` (``all``, ``last:N``, ``threshold:C``, ``thin[:B]``)
        the rolled-up base is additionally thinned through the matching
        :mod:`repro.kb.archive` policy (first and latest versions always
        survive) under the store's original KB name.  With
        ``--rollup-bytes``/``--rollup-records`` the roll-up only runs
        when the log is at/over a threshold (exit status still 0 -- "not
        due" is not an error).

    python -m repro serve --kb DIR --users FILE [--port N] [--host H]
                          [--tenant NAME] [--workers W] [--shards S]
                          [--replicas R] [-k K] [--persist]
                          [--rollup-bytes B] [--rollup-records N]
                          [--async] [--events-interval S]
                          [--max-connections N] [--alert-p99-ms MS]
                          [--alert-queue-depth N] [--alert-log-bytes B]
        serve concurrent JSON recommendation requests over HTTP.  The KB
        becomes one tenant of a :mod:`repro.service`
        ``RecommendationService`` (thread worker pool + admission batching
        + snapshot-consistent reads); endpoints are ``GET /health``,
        ``GET /tenants``, ``GET /stats`` (the frozen, versioned ops
        snapshot), ``GET /alerts`` (threshold evaluation over the same
        snapshot, configured with the ``--alert-*`` flags),
        ``POST /recommend`` and ``POST /commit`` (see
        :mod:`repro.service.http` and ``docs/http-api.md``).  ``--port 0``
        picks an ephemeral port and prints it.

        **Async front-end** (``--async``, single-process topology only):
        the same endpoints served from one asyncio event loop
        (:mod:`repro.service.aio`) instead of a thread per connection --
        responses are byte-identical, scoring still runs on the admission
        worker threads, but an idle keep-alive connection costs a
        coroutine instead of an OS thread (``--max-connections`` caps the
        open-connection count).  Adds the SSE ``GET /events`` ops stream:
        one ``event: stats`` frame per ``--events-interval`` seconds
        carrying exactly the ``/stats`` payload, plus an ``event: alerts``
        frame on ticks where the thresholds fire.

        ``--kb`` accepts either on-disk layout (auto-detected).  A binary
        store boots O(root + deltas) -- mmap decode, lazy snapshots, the
        head pair pre-built -- which is the cold-start fast path; with
        ``--persist`` (binary stores, single-process topology) every
        ``POST /commit`` is additionally appended to the store's commit
        log under the tenant write lock: one O(delta) fsync per commit,
        never a full-snapshot rewrite, so a restart replays to exactly
        the served chain.  The crash-consistency guarantee is strict:
        **a commit whose HTTP response was sent is never lost** -- each
        record is fsynced before the commit hook returns, and boot-time
        recovery only ever drops bytes written *after* the last
        acknowledged record.  ``--rollup-bytes`` / ``--rollup-records``
        bound the log (and hence restart/recovery time): when a commit
        leaves ``commits.rpl`` at/over either threshold, the store
        rewrites its base from the live chain and truncates the log,
        still under the same write lock.

        **Sharded topology** (``--shards S``, S >= 1): instead of scoring
        in-process, the command spawns S worker *processes*, each running
        a full ``RecommendationService`` over the tenants a stable hash of
        the tenant name routes to it (``TenantRegistry.shard_of``), and
        the HTTP server becomes a thin router: ``POST /recommend`` /
        ``POST /commit`` bodies are forwarded over a local pipe to the
        owning shard (requests multiplex concurrently per pipe; admission
        batching stays local to each shard), and the GET endpoints
        aggregate across shards.  Each tenant is bootstrapped into its
        shard via the binary wire format (:mod:`repro.kb.wire`) -- term
        dictionary, root snapshot and the recorded commit-delta chain --
        and every later ``/commit`` is applied by the owning shard alone,
        which is the whole commit-replication story: one owner per
        tenant, no cross-shard state.

        **Read replicas** (``--replicas R``, implies ``--shards 1`` when
        no shard count is given): each tenant's reads additionally
        round-robin across R read-only replica processes, bootstrapped
        zero-copy from one shared-memory segment holding the tenant's
        store payload (:mod:`repro.service.replica`).  Commits still go
        to the single owning shard, which forwards each O(delta) commit
        record to the replicas; a dead replica degrades reads back to
        the owner.

        Scaling knobs, in one line each: ``--workers`` adds scoring
        *threads* inside one process (helps only while a single core is
        not saturated -- threads share the GIL); ``--shards`` adds
        *processes* that partition tenants (scales many tenants across
        cores, but one tenant still lives on one core); ``--replicas``
        adds read-only *processes per tenant* (scales one hot tenant's
        reads across cores -- the only knob that does).  Prefer
        ``--workers`` on single-core boxes, ``--shards`` for many
        CPU-bound tenants, ``--replicas`` for one read-heavy tenant.

KB directories use either ``save_kb`` layout -- the interoperable one
(per-version ``.nt`` files + ``manifest.json``, so the CLI works on
hand-built N-Triples data) or the binary store of :mod:`repro.io.store`
(``kb.rpw`` wire base + ``commits.rpl`` append-only commit log).  Every
subcommand auto-detects which layout ``--kb`` points at; ``repro
convert`` moves between them.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.eval.tables import TextTable
from repro.io import (
    load_kb,
    load_users,
    save_kb,
    save_package,
    save_users,
)
from repro.measures.base import EvolutionContext
from repro.measures.catalog import default_catalog
from repro.privacy.generalization import GeneralizationHierarchy
from repro.privacy.kanonymity import anonymize_report
from repro.privacy.build import build_change_report
from repro.recommender.engine import EngineConfig, RecommenderEngine
from repro.synthetic.world import generate_world


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Recommend knowledge-base evolution measures (ICDE 2017 reproduction).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a synthetic world")
    generate.add_argument("--out", required=True, help="output directory")
    generate.add_argument(
        "--seed", type=int, default=0,
        help="world RNG seed: the same seed always produces the same KB, "
             "evolution history and users (default: 0)",
    )
    generate.add_argument(
        "--classes", type=int, default=80,
        help="schema classes in the generated ontology (default: 80)",
    )
    generate.add_argument(
        "--versions", type=int, default=3,
        help="KB versions in the evolution chain (default: 3)",
    )
    generate.add_argument(
        "--users", type=int, default=8,
        help="synthetic users with interaction histories (default: 8)",
    )
    generate.add_argument(
        "--format", choices=("nt", "binary"), default="nt",
        help="KB layout to write: interoperable .nt directory (default) or "
             "the binary store (fast cold boot, O(delta) commit appends)",
    )

    convert = commands.add_parser(
        "convert", help="convert a KB directory between the .nt and binary layouts"
    )
    convert.add_argument("--src", required=True, help="source KB directory (auto-detected layout)")
    convert.add_argument("--out", required=True, help="destination directory")
    convert.add_argument(
        "--to", choices=("binary", "nt"), default="binary",
        help="destination layout (default: binary)",
    )

    measures = commands.add_parser("measures", help="print measure results")
    measures.add_argument("--kb", required=True, help="KB directory (save_kb layout)")
    measures.add_argument("--old", help="older version id (default: second-to-last)")
    measures.add_argument("--new", help="newer version id (default: latest)")
    measures.add_argument(
        "--top", type=int, default=5,
        help="per-measure entries to print (default 5)",
    )

    recommend = commands.add_parser("recommend", help="recommend to one user")
    recommend.add_argument("--kb", required=True, help="KB directory (save_kb layout)")
    recommend.add_argument("--users", required=True, help="users JSON file")
    recommend.add_argument("--user", required=True, help="user id")
    recommend.add_argument("-k", type=int, default=5, help="package size (default 5)")
    recommend.add_argument("--out", help="write the package to this JSON file")

    report = commands.add_parser("report", help="k-anonymous change report")
    report.add_argument("--kb", required=True, help="KB directory (save_kb layout)")
    report.add_argument(
        "--anonymity", type=int, default=2, metavar="K",
        help="k-anonymity parameter: every reported group covers >= K changes",
    )
    report.add_argument(
        "--strategy", choices=("generalize", "suppress"), default="generalize",
        help="how under-sized groups are anonymised: generalize up the "
             "schema, or suppress entirely",
    )

    serve = commands.add_parser(
        "serve", help="serve JSON recommendation requests over HTTP"
    )
    serve.add_argument("--kb", required=True, help="KB directory (save_kb layout)")
    serve.add_argument("--users", required=True, help="users JSON file")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8351, help="0 = ephemeral")
    serve.add_argument("--tenant", help="tenant name (default: the KB's name)")
    serve.add_argument(
        "--workers", type=int, default=4,
        help="scoring worker threads (per shard when --shards is given)",
    )
    serve.add_argument(
        "--shards", type=int, default=0,
        help="shard processes; 0 = score in-process, N >= 1 = spawn N worker "
             "processes and serve through a thin router",
    )
    serve.add_argument(
        "--replicas", type=int, default=0,
        help="read-only replica processes per tenant (shared-memory "
             "zero-copy bootstrap; reads round-robin owner+replicas, "
             "commits stay on the owner); implies --shards 1 when "
             "--shards is not given",
    )
    serve.add_argument(
        "--replicas-min", type=int, default=None, metavar="N",
        help="autoscale floor: never retire a tenant below N read replicas "
             "(enables the autoscale controller; requires --replicas-max)",
    )
    serve.add_argument(
        "--replicas-max", type=int, default=None, metavar="N",
        help="autoscale ceiling: never grow a tenant past N read replicas "
             "(enables the autoscale controller; requires --replicas-min)",
    )
    serve.add_argument(
        "--autoscale-interval", type=float, default=None, metavar="SECONDS",
        help="with --replicas-min/--replicas-max: how often the controller "
             "re-reads per-tenant read share and takes one scaling step "
             "(default: 2.0)",
    )
    serve.add_argument("-k", type=int, default=5, help="default package size")
    serve.add_argument(
        "--persist", action="store_true",
        help="append every /commit to the KB's binary-store commit log "
             "(requires a binary-store --kb and the single-process topology); "
             "an acknowledged commit is never lost across a crash/restart",
    )
    serve.add_argument(
        "--rollup-bytes", type=int, metavar="B",
        help="with --persist: roll the commit log up into the base whenever "
             "it reaches B bytes (bounds restart recovery time)",
    )
    serve.add_argument(
        "--rollup-records", type=int, metavar="N",
        help="with --persist: roll the commit log up into the base whenever "
             "it reaches N records",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=0, metavar="N",
        help="response cache: keep up to N memoised recommendation "
             "responses (served as pre-encoded bytes with strong ETags; "
             "0 with --cache-bytes 0 disables the cache, which is the "
             "default).  Entries never expire: version pairs are "
             "immutable and population changes invalidate by epoch",
    )
    serve.add_argument(
        "--cache-bytes", type=int, default=0, metavar="B",
        help="response cache: byte budget for memoised response bodies "
             "(LRU eviction past the budget; 0 with --cache-entries 0 "
             "disables the cache).  Applies per process: each shard or "
             "replica process runs its own cache",
    )
    serve.add_argument(
        "--async", dest="use_async", action="store_true",
        help="serve from one asyncio event loop instead of a thread per "
             "connection: same endpoints and byte-identical JSON, idle "
             "keep-alive connections cost a coroutine instead of a thread, "
             "and the SSE GET /events ops stream becomes available "
             "(single-process topology only)",
    )
    serve.add_argument(
        "--events-interval", type=float, default=None, metavar="SECONDS",
        help="with --async: default publish cadence of the SSE /events "
             "stream (default: 1.0; subscribers may override per "
             "connection with ?interval=)",
    )
    serve.add_argument(
        "--max-connections", type=int, default=4096, metavar="N",
        help="with --async: simultaneous open connections the event loop "
             "accepts before answering 503 (default: 4096)",
    )
    serve.add_argument(
        "--alert-p99-ms", type=float, metavar="MS",
        help="GET /alerts: fire when a tenant's rolling p99 latency is "
             "at/over this many milliseconds",
    )
    serve.add_argument(
        "--alert-queue-depth", type=int, metavar="N",
        help="GET /alerts: fire when the admission backlog is at/over N "
             "queued requests",
    )
    serve.add_argument(
        "--alert-log-bytes", type=int, metavar="B",
        help="GET /alerts: fire when a persisted tenant's commit log is "
             "at/over B bytes (tenants with a roll-up threshold alert at "
             "80%% of it instead)",
    )

    compact = commands.add_parser(
        "compact-store",
        help="roll a binary store's commit log up into its base (offline)",
    )
    compact.add_argument("--kb", required=True, help="binary store directory")
    compact.add_argument(
        "--retain", metavar="SPEC",
        help="additionally thin the rolled-up chain through an archive "
             "policy: all, last:N, threshold:C, thin or thin:B "
             "(first and latest versions always survive)",
    )
    compact.add_argument(
        "--rollup-bytes", type=int, metavar="B",
        help="only roll up when the log is at least B bytes (default: always)",
    )
    compact.add_argument(
        "--rollup-records", type=int, metavar="N",
        help="only roll up when the log holds at least N records",
    )
    return parser


def _context_for(kb, old_id: str | None, new_id: str | None) -> EvolutionContext:
    versions = list(kb)
    if len(versions) < 2:
        raise SystemExit("error: the knowledge base needs at least two versions")
    old = kb.version(old_id) if old_id else versions[-2]
    new = kb.version(new_id) if new_id else versions[-1]
    return EvolutionContext(old, new)


def _cmd_generate(args: argparse.Namespace) -> int:
    world = generate_world(
        seed=args.seed,
        n_classes=args.classes,
        n_versions=args.versions,
        n_users=args.users,
    )
    out = Path(args.out)
    save_kb(world.kb, out / "kb", format=args.format)
    save_users(world.users, out / "users.json")
    print(f"world seed={args.seed}: {len(world.kb)} versions, "
          f"{len(world.kb.latest().graph)} triples in latest, "
          f"{len(world.users)} users")
    print(f"saved to {out}/kb ({args.format} layout) and {out}/users.json")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from repro.io import convert_kb
    from repro.kb.errors import KnowledgeBaseError

    try:
        destination = convert_kb(args.src, args.out, to=args.to)
    except (ValueError, FileNotFoundError, KnowledgeBaseError) as exc:
        # KnowledgeBaseError covers corrupt stores (WireFormatError) and
        # malformed .nt input (ParseError) alike.
        raise SystemExit(f"error: {exc}") from None
    kb = load_kb(destination)
    print(
        f"converted {args.src} -> {destination} ({args.to} layout): "
        f"{len(kb)} versions, {len(kb.latest().graph)} triples in latest"
    )
    return 0


def _cmd_measures(args: argparse.Namespace) -> int:
    kb = load_kb(Path(args.kb))
    context = _context_for(kb, args.old, args.new)
    catalog = default_catalog()
    results = catalog.compute_all(context)
    table = TextTable(
        title=(
            f"most affected targets, {context.old.version_id} -> "
            f"{context.new.version_id}"
        ),
        columns=["measure", "family", f"top-{args.top} targets (score)"],
    )
    for name in sorted(results):
        measure = catalog.get(name)
        top = results[name].top(args.top)
        rendered = ", ".join(f"{t.local_name}({s:.2f})" for t, s in top if s > 0)
        table.add_row(name, measure.family.value, rendered or "(no change)")
    print(table.render())
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    kb = load_kb(Path(args.kb))
    users = {user.user_id: user for user in load_users(Path(args.users))}
    if args.user not in users:
        raise SystemExit(
            f"error: unknown user {args.user!r} (have: {', '.join(sorted(users))})"
        )
    engine = RecommenderEngine(kb, config=EngineConfig(k=args.k, spread_depth=1))
    package = engine.recommend(users[args.user])
    print(f"recommendations for {args.user} (context {package.metadata['context']}):")
    for rank, scored in enumerate(package, start=1):
        print(f"  {rank}. {scored.item.describe():50s} utility={scored.utility:.3f}")
    if args.out:
        save_package(package, args.out)
        print(f"package written to {args.out}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    kb = load_kb(Path(args.kb))
    context = _context_for(kb, None, None)
    report = build_change_report(context)
    hierarchy = GeneralizationHierarchy(context.new_schema)
    released = anonymize_report(
        report, hierarchy, args.anonymity, strategy=args.strategy
    )
    table = TextTable(
        title=(
            f"k={args.anonymity} anonymous change report "
            f"({args.strategy}); {len(released.suppressed)} classes suppressed"
        ),
        columns=["released class", "total changes", "contributors"],
    )
    for row in sorted(released.rows, key=lambda r: -r.total):
        table.add_row(row.cls.local_name, row.total, row.contributor_count)
    print(table.render())
    print(f"k-anonymity guarantee holds: {released.is_k_anonymous()}")
    return 0


def _cmd_compact_store(args: argparse.Namespace) -> int:
    """Offline roll-up: absorb a store's commit log into its base.

    The online twin of ``serve --persist --rollup-*``: rewrites ``kb.rpw``
    from the chain on disk through the same atomic tmp + ``os.replace`` +
    dir-fsync path and truncates ``commits.rpl``, so the next boot
    recovers in O(base) with no log replay.  Crash-safe at every point --
    a kill mid-compaction leaves either the old base + old log (before the
    replace) or a new base whose superseded log records are discarded on
    the next load (after it).  With ``--retain`` the rolled-up chain is
    additionally thinned through a :mod:`repro.kb.archive` policy, keeping
    the store's original KB name (and always the first + latest versions,
    so the end-to-end delta survives).
    """
    from repro.io.store import BinaryKBStore
    from repro.kb.archive import policy_from_spec
    from repro.kb.errors import KnowledgeBaseError

    try:
        store = BinaryKBStore.open(
            Path(args.kb),
            rollup_bytes=args.rollup_bytes,
            rollup_records=args.rollup_records,
        )
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(f"error: {exc}") from None
    policy = None
    if args.retain:
        try:
            policy = policy_from_spec(args.retain)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from None
    records_before, bytes_before = store.log_stats()
    try:
        kb = store.load()
        if (args.rollup_bytes or args.rollup_records) and not store._rollup_due():
            print(
                f"store {args.kb}: log at {records_before} records / "
                f"{bytes_before} bytes, under threshold -- nothing to do"
            )
            return 0
        versions_before = len(kb)
        if policy is not None:
            kb = policy.apply(kb, name=kb.name)
            BinaryKBStore.save(kb, store.directory)
        else:
            store.rollup(kb)
    except KnowledgeBaseError as exc:
        raise SystemExit(f"error: {exc}") from None
    finally:
        store.close()
    records_after, bytes_after = store.log_stats()
    thinned = (
        f", {versions_before} -> {len(kb)} versions ({args.retain})"
        if policy is not None
        else ""
    )
    print(
        f"compacted {args.kb}: absorbed {records_before} log records "
        f"({bytes_before} -> {bytes_after} log bytes){thinned}"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.io.store import BinaryKBStore
    from repro.recommender.engine import EngineConfig
    from repro.service import (
        AlertThresholds,
        AutoscaleController,
        RecommendationService,
        ServiceConfig,
        ShardSupervisor,
    )
    from repro.service.http import make_router_server, make_server

    if args.shards < 0:
        raise SystemExit(f"error: --shards must be >= 0, got {args.shards}")
    if args.replicas < 0:
        raise SystemExit(f"error: --replicas must be >= 0, got {args.replicas}")
    autoscale = args.replicas_min is not None or args.replicas_max is not None
    if autoscale and (args.replicas_min is None or args.replicas_max is None):
        raise SystemExit(
            "error: --replicas-min and --replicas-max must be given together"
        )
    if args.autoscale_interval is not None and not autoscale:
        raise SystemExit(
            "error: --autoscale-interval only applies with "
            "--replicas-min/--replicas-max"
        )
    if args.use_async and (args.shards or args.replicas or autoscale):
        raise SystemExit(
            "error: --async is single-process only (the sharded router "
            "scales with processes, not connections)"
        )
    if args.events_interval is not None and not args.use_async:
        raise SystemExit(
            "error: --events-interval only applies with --async "
            "(the threaded front-end has no SSE /events stream)"
        )
    if (args.replicas or autoscale) and not args.shards:
        # Replicas live in the sharded topology; a single shard is the
        # natural owner for the replicated single-tenant case.
        args.shards = 1
    if autoscale and args.replicas < args.replicas_min:
        # Start at the floor instead of making the controller climb to it
        # one tick at a time.
        args.replicas = args.replicas_min
    try:
        thresholds = AlertThresholds(
            p99_ms=args.alert_p99_ms,
            queue_depth=args.alert_queue_depth,
            log_bytes=args.alert_log_bytes,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    kb_dir = Path(args.kb)
    is_binary = BinaryKBStore.is_store(kb_dir)
    if args.persist and not is_binary:
        raise SystemExit(
            "error: --persist needs a binary-store --kb "
            "(migrate with: python -m repro convert --src DIR --out DIR)"
        )
    if args.persist and args.shards:
        raise SystemExit(
            "error: --persist is single-process only (sharded commits are "
            "applied by the owning shard process)"
        )
    if (args.rollup_bytes or args.rollup_records) and not args.persist:
        raise SystemExit(
            "error: --rollup-bytes/--rollup-records only apply with --persist"
        )
    users = load_users(Path(args.users))
    try:
        config = ServiceConfig(
            k=args.k,
            workers=args.workers,
            rollup_bytes=args.rollup_bytes,
            rollup_records=args.rollup_records,
            cache_entries=args.cache_entries,
            cache_bytes=args.cache_bytes,
            engine=EngineConfig(k=args.k, spread_depth=1),
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    if args.shards:
        # Sharded topology: worker processes score, this process routes.
        supervisor = ShardSupervisor(
            shards=args.shards, config=config, replicas=args.replicas
        )
        if is_binary:
            # Cold-start fast path: read the on-disk store bytes once and
            # ship them verbatim to the owning shard -- the router never
            # decodes the KB.
            store = BinaryKBStore.open(kb_dir)
            payload = store.bootstrap_payload()
            kb_name, version_ids = store.describe(payload)
            tenant_name = args.tenant or kb_name
            shard = supervisor.add_tenant_encoded(tenant_name, payload, users)
            n_versions = len(version_ids)
        else:
            kb = load_kb(kb_dir)
            tenant_name = args.tenant or kb.name
            shard = supervisor.add_tenant(tenant_name, kb, users)
            n_versions = len(kb)
        supervisor.start()
        server = make_router_server(
            supervisor, host=args.host, port=args.port, thresholds=thresholds
        )
        host, port = server.server_address[:2]
        replicated = f" (+{args.replicas} read replicas)" if args.replicas else ""
        print(
            f"routing tenant {tenant_name!r} ({n_versions} versions, {len(users)} "
            f"users) -> shard {shard} of {args.shards}{replicated} "
            f"on http://{host}:{port}"
        )
        controller = None
        if autoscale:
            try:
                controller = AutoscaleController(
                    supervisor,
                    min_replicas=args.replicas_min,
                    max_replicas=args.replicas_max,
                    interval_s=args.autoscale_interval
                    if args.autoscale_interval is not None
                    else 2.0,
                )
            except ValueError as exc:
                supervisor.close()
                raise SystemExit(f"error: {exc}") from None
            controller.start()
            print(
                f"autoscaling replicas in [{args.replicas_min}, "
                f"{args.replicas_max}] every {controller.interval_s:g}s"
            )

        def closer() -> None:
            if controller is not None:
                controller.stop()
            supervisor.close()
    else:
        store = None
        if args.persist:
            # add_tenant(store=...) wires the whole durability plane: the
            # O(delta) sync-per-commit hook, opportunistic threshold
            # roll-up under the tenant write lock, and releasing the
            # store's pinned lazy memory maps when the tenant leaves
            # serving (shutdown), not whenever GC gets around to it.
            store = BinaryKBStore.open(kb_dir)
            kb = store.load()
        else:
            kb = load_kb(kb_dir)
        tenant_name = args.tenant or kb.name
        service = RecommendationService(config)
        tenant = service.add_tenant(tenant_name, kb, users, store=store)
        persisting = " [persisting commits]" if args.persist else ""
        if args.use_async:
            return _serve_async(args, service, tenant, kb, users, persisting, thresholds)
        server = make_server(
            service, host=args.host, port=args.port, thresholds=thresholds
        )
        host, port = server.server_address[:2]
        print(
            f"serving tenant {tenant.name!r} ({len(kb)} versions, "
            f"{len(users)} users) on http://{host}:{port}{persisting}"
        )
        closer = service.close
    print(
        "endpoints: GET /health /tenants /stats /alerts; POST /recommend /commit"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
        closer()
    return 0


def _serve_async(args, service, tenant, kb, users, persisting, thresholds) -> int:
    """Run the asyncio front-end in the main thread's event loop.

    Scoring still happens on the service's admission worker threads; the
    loop only parses, admits (bridging the admission future with
    ``asyncio.wrap_future``) and writes responses -- which is what lets
    one process hold thousands of idle keep-alive connections.
    """
    import asyncio

    from repro.service import AsyncServiceServer

    try:
        server = AsyncServiceServer(
            service,
            host=args.host,
            port=args.port,
            thresholds=thresholds,
            events_interval=(
                1.0 if args.events_interval is None else args.events_interval
            ),
            max_connections=args.max_connections,
        )
    except ValueError as exc:
        service.close()
        raise SystemExit(f"error: {exc}") from None

    async def _run() -> None:
        host, port = await server.start()
        print(
            f"serving tenant {tenant.name!r} ({len(kb)} versions, "
            f"{len(users)} users) on http://{host}:{port}{persisting} [async]"
        )
        print(
            "endpoints: GET /health /tenants /stats /alerts /events; "
            "POST /recommend /commit"
        )
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        service.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "generate": _cmd_generate,
        "convert": _cmd_convert,
        "measures": _cmd_measures,
        "recommend": _cmd_recommend,
        "report": _cmd_report,
        "serve": _cmd_serve,
        "compact-store": _cmd_compact_store,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly like cat/grep.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
