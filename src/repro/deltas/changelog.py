"""Change logs: deltas across an entire version chain.

A :class:`ChangeLog` wraps a :class:`~repro.kb.version.VersionedKnowledgeBase`
and lazily computes (and caches) the low-level and high-level delta of every
consecutive version pair, plus aggregates the measures layer consumes:
cumulative per-term change counts and per-step sizes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.deltas.highlevel import HighLevelDelta, detect_highlevel
from repro.deltas.lowlevel import LowLevelDelta
from repro.kb.errors import VersionError
from repro.kb.terms import Term
from repro.kb.version import VersionedKnowledgeBase


class ChangeLog:
    """Cached deltas over the version chain of a knowledge base."""

    def __init__(self, kb: VersionedKnowledgeBase) -> None:
        self._kb = kb
        self._low: Dict[Tuple[str, str], LowLevelDelta] = {}
        self._high: Dict[Tuple[str, str], HighLevelDelta] = {}

    @property
    def kb(self) -> VersionedKnowledgeBase:
        """The underlying versioned knowledge base."""
        return self._kb

    def lowlevel(self, old_id: str, new_id: str) -> LowLevelDelta:
        """The low-level delta between two (not necessarily adjacent) versions.

        Adjacent pairs reuse the delta the version chain recorded at commit
        time; any other pair diffs the snapshots (an integer-set operation
        when the versions share a term dictionary).
        """
        key = (old_id, new_id)
        if key not in self._low:
            old = self._kb.version(old_id)
            new = self._kb.version(new_id)
            recorded = new.delta_from_parent() if new.parent is old else None
            if recorded is not None:
                self._low[key] = recorded
            else:
                self._low[key] = LowLevelDelta.compute(old.graph, new.graph)
        return self._low[key]

    def highlevel(self, old_id: str, new_id: str) -> HighLevelDelta:
        """The high-level delta between two versions."""
        key = (old_id, new_id)
        if key not in self._high:
            old = self._kb.version(old_id)
            new = self._kb.version(new_id)
            self._high[key] = detect_highlevel(
                self.lowlevel(old_id, new_id), old.schema, new.schema
            )
        return self._high[key]

    def step_deltas(self) -> List[LowLevelDelta]:
        """Low-level deltas of every consecutive pair, in chain order."""
        return [
            self.lowlevel(old.version_id, new.version_id) for old, new in self._kb.pairs()
        ]

    def step_sizes(self) -> List[int]:
        """``|delta|`` per consecutive pair, in chain order."""
        return [d.size for d in self.step_deltas()]

    def total_change_counts(self) -> Dict[Term, int]:
        """Per-term change counts summed over every consecutive step."""
        totals: Dict[Term, int] = {}
        for delta in self.step_deltas():
            for term, count in delta.change_counts().items():
                totals[term] = totals.get(term, 0) + count
        return totals

    def end_to_end(self) -> LowLevelDelta:
        """The delta between the first and latest version.

        Raises :class:`~repro.kb.errors.VersionError` when the chain has
        fewer than two versions (there is no evolution to describe).
        """
        if len(self._kb) < 2:
            raise VersionError("need at least two versions for an end-to-end delta")
        return self.lowlevel(self._kb.first().version_id, self._kb.latest().version_id)
