"""Low-level deltas: added and deleted triples between two versions.

Section II.a of the paper, implemented verbatim:

* ``delta_plus`` is the set of triples added from V1 to V2,
* ``delta_minus`` the set deleted,
* ``|delta| = |delta_plus| + |delta_minus|``,
* ``delta(n)`` ("the number of changes in which a class n appears") is the
  number of added/deleted triples mentioning the term ``n`` in any position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable

from repro.kb.graph import Graph
from repro.kb.terms import Term
from repro.kb.triples import Triple


@dataclass(frozen=True)
class LowLevelDelta:
    """The low-level delta ``(delta_plus, delta_minus)`` of an evolution step.

    Instances are immutable value objects; :meth:`compute` builds them from
    two graphs, :meth:`apply` replays them onto a graph and :meth:`invert`
    reverses the direction of evolution.
    """

    added: FrozenSet[Triple] = field(default_factory=frozenset)
    deleted: FrozenSet[Triple] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        overlap = self.added & self.deleted
        if overlap:
            sample = next(iter(overlap))
            raise ValueError(
                f"delta adds and deletes the same triple ({len(overlap)} overlapping, "
                f"e.g. {sample.n3()})"
            )

    @classmethod
    def compute(cls, old: Graph, new: Graph) -> "LowLevelDelta":
        """The delta turning ``old`` into ``new``.

        :meth:`Graph.difference` diffs graphs sharing a term dictionary with
        one integer-set operation per direction (no per-triple membership
        probes), so computing deltas along a version chain is cheap.
        """
        return cls(
            added=frozenset(new.difference(old)),
            deleted=frozenset(old.difference(new)),
        )

    @classmethod
    def from_changes(
        cls, added: Iterable[Triple] = (), deleted: Iterable[Triple] = ()
    ) -> "LowLevelDelta":
        """Build a delta from explicit change sets."""
        return cls(added=frozenset(added), deleted=frozenset(deleted))

    # -- Section II.a quantities -------------------------------------------------

    @property
    def size(self) -> int:
        """``|delta| = |delta+| + |delta-|`` (total number of changes)."""
        return len(self.added) + len(self.deleted)

    def change_count(self, term: Term) -> int:
        """``delta(n)``: number of changed triples mentioning ``term``."""
        return sum(1 for t in self.added if t.mentions(term)) + sum(
            1 for t in self.deleted if t.mentions(term)
        )

    def changes_for(self, term: Term) -> "LowLevelDelta":
        """The sub-delta restricted to triples mentioning ``term``."""
        return LowLevelDelta(
            added=frozenset(t for t in self.added if t.mentions(term)),
            deleted=frozenset(t for t in self.deleted if t.mentions(term)),
        )

    def change_counts(self) -> Dict[Term, int]:
        """``delta(n)`` for every term mentioned by any changed triple.

        One pass over the delta instead of one scan per term; the keys are
        exactly the terms with a non-zero count.
        """
        counts: Dict[Term, int] = {}
        for bucket in (self.added, self.deleted):
            for triple in bucket:
                # A term mentioned in several positions of one triple still
                # counts that triple once.
                for term in {triple.subject, triple.predicate, triple.object}:
                    counts[term] = counts.get(term, 0) + 1
        return counts

    # -- replay --------------------------------------------------------------------

    def apply(self, graph: Graph) -> Graph:
        """A new graph: ``graph`` with this delta applied (graph is not mutated)."""
        result = graph.copy()
        result.remove_all(self.deleted)
        result.add_all(self.added)
        return result

    def invert(self) -> "LowLevelDelta":
        """The delta of the reverse evolution (swap added and deleted)."""
        return LowLevelDelta(added=self.deleted, deleted=self.added)

    def compose(self, later: "LowLevelDelta") -> "LowLevelDelta":
        """The delta equivalent to applying ``self`` then ``later``.

        Composition cancels changes that the later delta undoes, so the
        result applied to V1 equals ``later.apply(self.apply(V1))`` whenever
        both deltas were computed from actual version pairs.
        """
        added = (self.added - later.deleted) | later.added
        deleted = (self.deleted - later.added) | later.deleted
        return LowLevelDelta(added=added, deleted=deleted)

    def is_empty(self) -> bool:
        """True when the delta changes nothing."""
        return not self.added and not self.deleted

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"LowLevelDelta(+{len(self.added)}, -{len(self.deleted)})"
