"""High-level deltas: complex change patterns over low-level triples.

The paper's introduction distinguishes "low-level deltas (describing simple
additions and deletions)" from "high-level deltas (describing complex
updates, such as different change patterns in the subsumption hierarchy)".
This module detects such patterns, in the spirit of Roussakis et al. [11]:
a :class:`HighLevelDelta` is a list of :class:`Change` records, each of which
*consumes* one or more low-level triples.  Low-level triples not claimed by
any pattern are reported as generic ``ADD_TRIPLE`` / ``DELETE_TRIPLE``
changes, so the high-level delta always explains the low-level delta exactly
(tested as an invariant).

Detected patterns
-----------------

================== ==========================================================
``ADD_CLASS``      a new class appears (its type triple was added)
``DELETE_CLASS``   a class disappears
``MOVE_CLASS``     a class's superclass changed (paired delete+add of
                   ``rdfs:subClassOf`` for the same subject)
``ADD_SUBCLASS``   a subsumption link was added (no matching delete)
``DELETE_SUBCLASS``a subsumption link was removed (no matching add)
``ADD_PROPERTY``   a new property appears
``DELETE_PROPERTY``a property disappears
``CHANGE_DOMAIN``  a property's domain changed (paired delete+add)
``CHANGE_RANGE``   a property's range changed (paired delete+add)
``RETYPE_INSTANCE``an instance's class changed (paired delete+add of type)
``ADD_INSTANCE``   an instance was typed into a class (no matching delete)
``DELETE_INSTANCE``an instance typing was removed
``ADD_LINK``       an instance-level object link was added
``DELETE_LINK``    an instance-level object link was removed
``CHANGE_ATTRIBUTE`` a literal attribute value changed (paired delete+add)
``ADD_ATTRIBUTE``  a literal attribute was added
``DELETE_ATTRIBUTE`` a literal attribute was removed
``ADD_TRIPLE`` / ``DELETE_TRIPLE`` anything not matched above
================== ==========================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.deltas.lowlevel import LowLevelDelta
from repro.kb.namespaces import (
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
)
from repro.kb.schema import SchemaView
from repro.kb.terms import IRI, Literal, Term
from repro.kb.triples import Triple


class ChangeKind(enum.Enum):
    """The vocabulary of high-level change patterns."""

    ADD_CLASS = "add_class"
    DELETE_CLASS = "delete_class"
    MOVE_CLASS = "move_class"
    ADD_SUBCLASS = "add_subclass"
    DELETE_SUBCLASS = "delete_subclass"
    ADD_PROPERTY = "add_property"
    DELETE_PROPERTY = "delete_property"
    CHANGE_DOMAIN = "change_domain"
    CHANGE_RANGE = "change_range"
    RETYPE_INSTANCE = "retype_instance"
    ADD_INSTANCE = "add_instance"
    DELETE_INSTANCE = "delete_instance"
    ADD_LINK = "add_link"
    DELETE_LINK = "delete_link"
    CHANGE_ATTRIBUTE = "change_attribute"
    ADD_ATTRIBUTE = "add_attribute"
    DELETE_ATTRIBUTE = "delete_attribute"
    ADD_TRIPLE = "add_triple"
    DELETE_TRIPLE = "delete_triple"


#: Kinds that describe schema (class/property) evolution rather than data.
SCHEMA_KINDS: FrozenSet[ChangeKind] = frozenset(
    {
        ChangeKind.ADD_CLASS,
        ChangeKind.DELETE_CLASS,
        ChangeKind.MOVE_CLASS,
        ChangeKind.ADD_SUBCLASS,
        ChangeKind.DELETE_SUBCLASS,
        ChangeKind.ADD_PROPERTY,
        ChangeKind.DELETE_PROPERTY,
        ChangeKind.CHANGE_DOMAIN,
        ChangeKind.CHANGE_RANGE,
    }
)


@dataclass(frozen=True)
class Change:
    """One high-level change.

    ``subject`` is the primary resource the change is about (the class, the
    property, or the instance); ``detail`` holds secondary terms (old/new
    superclass, the class an instance joined, ...); ``consumed`` is the set
    of low-level triples this pattern explains.
    """

    kind: ChangeKind
    subject: Term
    detail: Tuple[Term, ...] = ()
    consumed: FrozenSet[Triple] = field(default_factory=frozenset)

    def describe(self) -> str:
        """One-line human-readable description."""
        names = ", ".join(_short(t) for t in self.detail)
        base = f"{self.kind.value}({_short(self.subject)}"
        return f"{base}; {names})" if names else f"{base})"


def _short(term: Term) -> str:
    if isinstance(term, IRI):
        return term.local_name
    return str(term)


@dataclass(frozen=True)
class HighLevelDelta:
    """A list of high-level changes explaining a low-level delta."""

    changes: Tuple[Change, ...]
    source: LowLevelDelta

    @property
    def size(self) -> int:
        """Number of high-level change records."""
        return len(self.changes)

    @property
    def compression_ratio(self) -> float:
        """Low-level changes explained per high-level record.

        Greater than 1 whenever patterns aggregate several triples; it can
        dip below 1 only in corner cases where one triple witnesses several
        schema facts at once (e.g. a lone subClassOf link between two
        brand-new classes).  An empty delta has ratio 1.0 by convention.
        """
        if not self.changes:
            return 1.0
        return self.source.size / len(self.changes)

    def by_kind(self) -> Dict[ChangeKind, List[Change]]:
        """Group changes by kind."""
        grouped: Dict[ChangeKind, List[Change]] = {}
        for change in self.changes:
            grouped.setdefault(change.kind, []).append(change)
        return grouped

    def count(self, kind: ChangeKind) -> int:
        """Number of changes of ``kind``."""
        return sum(1 for c in self.changes if c.kind is kind)

    def schema_changes(self) -> Tuple[Change, ...]:
        """Changes affecting schema elements (classes/properties)."""
        return tuple(c for c in self.changes if c.kind in SCHEMA_KINDS)

    def data_changes(self) -> Tuple[Change, ...]:
        """Changes affecting instance data."""
        return tuple(c for c in self.changes if c.kind not in SCHEMA_KINDS)

    def changes_about(self, term: Term) -> Tuple[Change, ...]:
        """Changes whose subject or detail mentions ``term``."""
        return tuple(
            c for c in self.changes if c.subject == term or term in c.detail
        )


def detect_highlevel(
    delta: LowLevelDelta, old_schema: SchemaView, new_schema: SchemaView
) -> HighLevelDelta:
    """Detect high-level change patterns in ``delta``.

    ``old_schema`` / ``new_schema`` are the schema views of the two versions
    the delta connects; they decide whether a type assertion concerns a class
    or an instance, and whether a predicate is an attribute or a link.
    """
    changes: List[Change] = []
    consumed: Set[Triple] = set()

    old_classes = old_schema.classes()
    new_classes = new_schema.classes()
    old_props = old_schema.properties()
    new_props = new_schema.properties()
    all_classes = old_classes | new_classes
    all_props = old_props | new_props

    added = delta.added
    deleted = delta.deleted

    def claim(kind: ChangeKind, subject: Term, detail: Sequence[Term], triples: Sequence[Triple]) -> None:
        triple_set = frozenset(triples)
        changes.append(Change(kind, subject, tuple(detail), triple_set))
        consumed.update(triple_set)

    # --- class appearance / disappearance --------------------------------------
    # Evidence is restricted to *declarations* of the class (triples with the
    # class as subject, or as the object of a schema predicate): instance
    # typings into a new class stay visible as ADD_INSTANCE records.
    schema_object_preds = {RDFS_SUBCLASSOF, RDFS_DOMAIN, RDFS_RANGE}

    def _class_declarations(bucket: FrozenSet[Triple], cls: Term) -> List[Triple]:
        return [
            t
            for t in bucket
            if t.subject == cls
            or (t.object == cls and t.predicate in schema_object_preds)
        ]

    # Classes that exist only implicitly (as the object of typings, with no
    # declaration triples) yield no ADD/DELETE_CLASS record of their own --
    # their appearance is fully described by the ADD/DELETE_INSTANCE records.
    appeared_classes = new_classes - old_classes
    vanished_classes = old_classes - new_classes
    for cls in sorted(appeared_classes, key=lambda c: c.value):
        evidence = _class_declarations(added, cls)
        if evidence:
            claim(ChangeKind.ADD_CLASS, cls, (), evidence)
    for cls in sorted(vanished_classes, key=lambda c: c.value):
        evidence = _class_declarations(deleted, cls)
        if evidence:
            claim(ChangeKind.DELETE_CLASS, cls, (), evidence)

    # --- property appearance / disappearance ------------------------------------
    # Evidence is the property's own declarations; data triples *using* the
    # property stay visible as ADD_LINK / ADD_ATTRIBUTE records.
    # As with classes, properties that exist only through usage (no
    # declaration triples) produce no ADD/DELETE_PROPERTY record: the
    # link/attribute records already explain those low-level triples.
    appeared_props = new_props - old_props
    vanished_props = old_props - new_props
    for prop in sorted(appeared_props, key=lambda p: p.value):
        evidence = [t for t in added if t.subject == prop]
        if evidence:
            claim(ChangeKind.ADD_PROPERTY, prop, (), evidence)
    for prop in sorted(vanished_props, key=lambda p: p.value):
        evidence = [t for t in deleted if t.subject == prop]
        if evidence:
            claim(ChangeKind.DELETE_PROPERTY, prop, (), evidence)

    # --- subsumption patterns (only for surviving classes) -----------------------
    sub_added = {
        t for t in added if t.predicate == RDFS_SUBCLASSOF and t not in consumed
    }
    sub_deleted = {
        t for t in deleted if t.predicate == RDFS_SUBCLASSOF and t not in consumed
    }
    by_subject_added: Dict[Term, List[Triple]] = {}
    for t in sub_added:
        by_subject_added.setdefault(t.subject, []).append(t)
    for t in sorted(sub_deleted, key=lambda x: x._sort_key()):
        partners = by_subject_added.get(t.subject, [])
        if partners:
            partner = partners.pop(0)
            claim(
                ChangeKind.MOVE_CLASS,
                t.subject,
                (t.object, partner.object),  # (old superclass, new superclass)
                (t, partner),
            )
            sub_added.discard(partner)
        else:
            claim(ChangeKind.DELETE_SUBCLASS, t.subject, (t.object,), (t,))
    for t in sorted(sub_added, key=lambda x: x._sort_key()):
        claim(ChangeKind.ADD_SUBCLASS, t.subject, (t.object,), (t,))

    # --- domain / range changes ---------------------------------------------------
    for predicate, kind in ((RDFS_DOMAIN, ChangeKind.CHANGE_DOMAIN), (RDFS_RANGE, ChangeKind.CHANGE_RANGE)):
        decl_added = {t for t in added if t.predicate == predicate and t not in consumed}
        decl_deleted = {t for t in deleted if t.predicate == predicate and t not in consumed}
        added_by_prop: Dict[Term, List[Triple]] = {}
        for t in decl_added:
            added_by_prop.setdefault(t.subject, []).append(t)
        for t in sorted(decl_deleted, key=lambda x: x._sort_key()):
            partners = added_by_prop.get(t.subject, [])
            if partners:
                partner = partners.pop(0)
                claim(kind, t.subject, (t.object, partner.object), (t, partner))

    # --- instance typing patterns ---------------------------------------------------
    type_added = {
        t
        for t in added
        if t.predicate == RDF_TYPE
        and t not in consumed
        and t.object in all_classes
        and t.subject not in all_classes
        and t.subject not in all_props
    }
    type_deleted = {
        t
        for t in deleted
        if t.predicate == RDF_TYPE
        and t not in consumed
        and t.object in all_classes
        and t.subject not in all_classes
        and t.subject not in all_props
    }
    retype_added_by_subject: Dict[Term, List[Triple]] = {}
    for t in type_added:
        retype_added_by_subject.setdefault(t.subject, []).append(t)
    for t in sorted(type_deleted, key=lambda x: x._sort_key()):
        partners = retype_added_by_subject.get(t.subject, [])
        if partners:
            partner = partners.pop(0)
            claim(
                ChangeKind.RETYPE_INSTANCE,
                t.subject,
                (t.object, partner.object),
                (t, partner),
            )
            type_added.discard(partner)
        else:
            claim(ChangeKind.DELETE_INSTANCE, t.subject, (t.object,), (t,))
    for t in sorted(type_added, key=lambda x: x._sort_key()):
        claim(ChangeKind.ADD_INSTANCE, t.subject, (t.object,), (t,))

    # --- attribute changes (literal objects), link changes (resource objects) -------
    attr_added = {
        t for t in added if isinstance(t.object, Literal) and t not in consumed
    }
    attr_deleted = {
        t for t in deleted if isinstance(t.object, Literal) and t not in consumed
    }
    attr_added_by_key: Dict[Tuple[Term, Term], List[Triple]] = {}
    for t in attr_added:
        attr_added_by_key.setdefault((t.subject, t.predicate), []).append(t)
    for t in sorted(attr_deleted, key=lambda x: x._sort_key()):
        partners = attr_added_by_key.get((t.subject, t.predicate), [])
        if partners:
            partner = partners.pop(0)
            claim(
                ChangeKind.CHANGE_ATTRIBUTE,
                t.subject,
                (t.predicate, t.object, partner.object),
                (t, partner),
            )
            attr_added.discard(partner)
        else:
            claim(ChangeKind.DELETE_ATTRIBUTE, t.subject, (t.predicate, t.object), (t,))
    for t in sorted(attr_added, key=lambda x: x._sort_key()):
        claim(ChangeKind.ADD_ATTRIBUTE, t.subject, (t.predicate, t.object), (t,))

    for t in sorted(added, key=lambda x: x._sort_key()):
        if t in consumed:
            continue
        if t.predicate in all_props and not isinstance(t.object, Literal):
            claim(ChangeKind.ADD_LINK, t.subject, (t.predicate, t.object), (t,))
    for t in sorted(deleted, key=lambda x: x._sort_key()):
        if t in consumed:
            continue
        if t.predicate in all_props and not isinstance(t.object, Literal):
            claim(ChangeKind.DELETE_LINK, t.subject, (t.predicate, t.object), (t,))

    # --- anything left over ------------------------------------------------------------
    for t in sorted(added, key=lambda x: x._sort_key()):
        if t not in consumed:
            claim(ChangeKind.ADD_TRIPLE, t.subject, (t.predicate, t.object), (t,))
    for t in sorted(deleted, key=lambda x: x._sort_key()):
        if t not in consumed:
            claim(ChangeKind.DELETE_TRIPLE, t.subject, (t.predicate, t.object), (t,))

    return HighLevelDelta(changes=tuple(changes), source=delta)
