"""Delta substrate: low-level and high-level change detection (S5-S6).

Implements Section II.a of the paper verbatim (``delta+``, ``delta-``,
``|delta|``, ``delta(n)``) plus the high-level change-pattern vocabulary the
introduction refers to, and change logs over whole version chains.
"""

from repro.deltas.changelog import ChangeLog
from repro.deltas.highlevel import (
    Change,
    ChangeKind,
    HighLevelDelta,
    SCHEMA_KINDS,
    detect_highlevel,
)
from repro.deltas.lowlevel import LowLevelDelta

__all__ = [
    "ChangeLog",
    "Change",
    "ChangeKind",
    "HighLevelDelta",
    "SCHEMA_KINDS",
    "detect_highlevel",
    "LowLevelDelta",
]
