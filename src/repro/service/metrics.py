"""The ops plane's data model: per-tenant serving counters + alert rules.

Operators of a long-lived multi-tenant deployment need to *watch* it
evolve -- which tenants are committing, how well admission batching is
coalescing, where tail latency sits, how close a persisted tenant's
commit log is to its roll-up threshold.  :class:`ServiceMetrics` is the
one aggregator all of that flows through:

* the :class:`~repro.service.admission.AdmissionQueue` feeds admissions,
  sheds, batch sizes and per-request latencies (admission -> resolution);
* every :class:`~repro.service.registry.Tenant` feeds its commits;
* persistence numbers (``commits.rpl`` records/bytes and the roll-up
  thresholds) are *pulled* at snapshot time from the tenant's store --
  they already live there, so the hot path never copies them.

The aggregator is deliberately **lock-light**: per-tenant counters are
plain attribute increments (made under locks the feeding code already
holds -- the queue lock, the tenant write lock -- or benign-racy by the
same argument as :class:`~repro.service.admission.AdmissionStats`), and
the latency window is a bounded ``deque(maxlen=...)`` whose appends are
atomic.  Reads (:meth:`ServiceMetrics.snapshot`) are unlocked snapshots:
momentarily stale, never blocking a request.  Nothing here grows with
traffic -- per-tenant state is O(window), so a service serving millions
of requests carries kilobytes of metrics.

The **frozen stats contract** lives here too: ``STATS_VERSION`` names the
``GET /stats`` payload layout (and the SSE ``/events`` stream publishes
byte-for-byte the same payload, so the two can never drift apart), and
:func:`evaluate_alerts` turns one such payload plus an
:class:`AlertThresholds` into the ``GET /alerts`` response.  See
``docs/http-api.md`` for the field-by-field contract.
"""

from __future__ import annotations

import statistics
import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

#: Version tag of the ``GET /stats`` payload (and the SSE ``/events``
#: ``data`` payload, which is the same object).  Bump ONLY when a field is
#: renamed/removed or its meaning changes; adding fields is backward
#: compatible and does not bump it.  v2 added the per-tenant ``cache``
#: block (the response-cache counters, or ``None`` when disabled) -- a
#: version bump rather than a silent addition because the pinned key-set
#: contract treats the per-tenant field set as closed.
#: ``docs/http-api.md`` documents v2 field by field and
#: ``tests/service/test_service_metrics.py`` pins it.
STATS_VERSION = 2

#: Default number of latency samples the per-tenant rolling window keeps.
#: Big enough for a stable p99 under load, small enough that a snapshot's
#: sort is microseconds.
DEFAULT_WINDOW = 256


class _TenantCounters:
    """One tenant's counters (internal; snapshot via ServiceMetrics)."""

    __slots__ = (
        "commits",
        "admitted",
        "completed",
        "failed",
        "shed",
        "batches",
        "batched_requests",
        "largest_batch",
        "latencies",
    )

    def __init__(self, window: int) -> None:
        self.commits = 0
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.shed = 0
        self.batches = 0
        self.batched_requests = 0
        self.largest_batch = 0
        self.latencies: Deque[float] = deque(maxlen=window)


def _percentile_ms(sorted_samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of ascending seconds -> milliseconds."""
    rank = max(
        0, min(len(sorted_samples) - 1, round(fraction * (len(sorted_samples) - 1)))
    )
    return sorted_samples[rank] * 1e3


class ServiceMetrics:
    """Per-tenant serving counters with a rolling latency window.

    Thread-safety: the creation of a tenant's counter object is the only
    locked operation; increments rely on the feeding call sites' existing
    locks (queue lock, tenant write lock) or are benign races on plain
    ints, and ``deque(maxlen=...)`` appends are atomic.  Snapshots are
    unlocked reads -- momentarily stale, never wrong by more than a few
    in-flight requests.
    """

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._tenants: Dict[str, _TenantCounters] = {}
        self._lock = threading.Lock()

    def _tenant(self, name: str) -> _TenantCounters:
        counters = self._tenants.get(name)
        if counters is None:
            with self._lock:
                counters = self._tenants.setdefault(name, _TenantCounters(self.window))
        return counters

    # -- feeding side (queue / registry hooks) --------------------------------

    def record_admitted(self, name: str) -> None:
        """One request admitted for tenant ``name``."""
        self._tenant(name).admitted += 1

    def record_shed(self, name: str) -> None:
        """One request shed at admission (queue at ``max_pending``)."""
        self._tenant(name).shed += 1

    def record_batch(self, name: str, size: int, failed: bool = False) -> None:
        """One scored admission batch of ``size`` requests."""
        counters = self._tenant(name)
        counters.batches += 1
        counters.batched_requests += size
        counters.largest_batch = max(counters.largest_batch, size)
        if failed:
            counters.failed += size
        else:
            counters.completed += size

    def record_latency(self, name: str, seconds: float) -> None:
        """One request's admission -> resolution latency."""
        self._tenant(name).latencies.append(seconds)

    def record_commit(self, name: str) -> None:
        """One committed version for tenant ``name``."""
        self._tenant(name).commits += 1

    def forget(self, name: str) -> None:
        """Drop a tenant's counters (its registry eviction hook)."""
        with self._lock:
            self._tenants.pop(name, None)

    # -- reading side (stats / events / alerts) -------------------------------

    def tenant_names(self) -> List[str]:
        """Tenants with recorded activity, sorted."""
        return sorted(self._tenants)

    def tenant_snapshot(self, name: str) -> Dict[str, object]:
        """One tenant's JSON-friendly counters (zeros when never fed).

        ``p50_ms`` / ``p99_ms`` are computed over the rolling window and
        are ``None`` until at least one request resolved -- an idle or
        empty tenant has *no* latency, not a zero one (the distinction
        :func:`evaluate_alerts` relies on).
        """
        counters = self._tenants.get(name)
        if counters is None:
            counters = _TenantCounters(self.window)
        samples = sorted(counters.latencies)
        return {
            "commits": counters.commits,
            "admitted": counters.admitted,
            "completed": counters.completed,
            "failed": counters.failed,
            "shed": counters.shed,
            "batches": counters.batches,
            "batched_requests": counters.batched_requests,
            "largest_batch": counters.largest_batch,
            "window": len(samples),
            "mean_ms": statistics.fmean(samples) * 1e3 if samples else None,
            "p50_ms": _percentile_ms(samples, 0.50) if samples else None,
            "p99_ms": _percentile_ms(samples, 0.99) if samples else None,
        }

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Every fed tenant's snapshot, keyed by name."""
        return {name: self.tenant_snapshot(name) for name in self.tenant_names()}


# -- alerts -------------------------------------------------------------------


@dataclass(frozen=True)
class AlertThresholds:
    """The ``GET /alerts`` rules; ``None`` disables a rule.

    Every comparison is **>=**: a value exactly at its threshold alerts
    (the operator asked to know *at* the budget, not one sample past it).

    * ``p99_ms`` -- per-tenant tail-latency budget over the rolling
      window; tenants with no resolved requests yet carry no p99 and
      never fire this rule.
    * ``queue_depth`` -- admission backlog across all tenants (requests
      admitted but not yet scored).
    * ``log_bytes`` -- absolute per-tenant ``commits.rpl`` size, for
      persisted tenants without a roll-up threshold of their own.
    * ``log_rollup_fraction`` -- "log-bytes-near-rollup": when a
      persisted tenant has a ``rollup_bytes`` threshold, alert once the
      log reaches this fraction of it.  Persistence is supposed to
      absorb the log *at* the threshold; sitting near it for long means
      roll-up is failing or misconfigured.
    """

    p99_ms: Optional[float] = None
    queue_depth: Optional[int] = None
    log_bytes: Optional[int] = None
    log_rollup_fraction: Optional[float] = 0.8

    def __post_init__(self) -> None:
        for knob in ("p99_ms", "queue_depth", "log_bytes"):
            value = getattr(self, knob)
            if value is not None and value < 0:
                raise ValueError(f"{knob} must be >= 0, got {value!r}")
        fraction = self.log_rollup_fraction
        if fraction is not None and not (0.0 < fraction <= 1.0):
            raise ValueError(
                f"log_rollup_fraction must be in (0, 1], got {fraction!r}"
            )

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view (echoed by the ``/alerts`` payload)."""
        return {
            "p99_ms": self.p99_ms,
            "queue_depth": self.queue_depth,
            "log_bytes": self.log_bytes,
            "log_rollup_fraction": self.log_rollup_fraction,
        }


def evaluate_alerts(stats: Dict, thresholds: AlertThresholds) -> Dict[str, object]:
    """Evaluate ``thresholds`` over one frozen ``/stats`` payload.

    Pure function of the payload (which is what the SSE stream publishes
    too), so anything an alert fires on is visible in the same tick's
    stats event.  Returns the ``GET /alerts`` response body::

        {"stats_version": 2, "status": "ok" | "alerting",
         "thresholds": {...}, "alerts": [
            {"kind": "p99_budget" | "queue_depth" | "log_bytes"
                     | "log_rollup_near" | "replica_degraded",
             "tenant": name or None (None = service-wide),
             "value": measured, "threshold": limit,
             "message": human-readable one-liner}, ...]}

    Alert order is deterministic: service-wide first, then per tenant in
    sorted name order, each tenant's rules in the order p99, log, then
    the replica-degraded rule per tenant in sorted name order.

    The payload may also be the sharded router's ``/stats`` shape (one
    frozen per-shard payload under ``shards``, plus the supervisor's
    ``tenant_replicas`` block): admission depth is then summed
    service-wide and the per-tenant rules run over the union of the
    shards' tenants (a tenant lives in exactly one shard, so names never
    collide).  ``replica_degraded`` is threshold-free -- a replicated
    tenant serving fewer live replicas than configured is always worth a
    page, so the rule fires whenever ``live < configured`` regardless of
    which ``--alert-*`` flags are set.
    """
    alerts: List[Dict[str, object]] = []

    shards = stats.get("shards")
    if shards:
        # Sharded router payload: per-shard frozen payloads side by side.
        depth = sum(
            shard.get("admission", {}).get("depth", 0) for shard in shards.values()
        )
        merged: Dict[str, Dict] = {}
        for shard in shards.values():
            merged.update(shard.get("per_tenant", {}))
        stats = dict(stats)
        stats["admission"] = {"depth": depth}
        stats["per_tenant"] = merged
        stats.setdefault(
            "stats_version",
            next(iter(shards.values())).get("stats_version", STATS_VERSION),
        )

    depth = stats.get("admission", {}).get("depth", 0)
    if thresholds.queue_depth is not None and depth >= thresholds.queue_depth:
        alerts.append(
            {
                "kind": "queue_depth",
                "tenant": None,
                "value": depth,
                "threshold": thresholds.queue_depth,
                "message": (
                    f"admission queue depth {depth} at/over "
                    f"{thresholds.queue_depth}"
                ),
            }
        )

    per_tenant = stats.get("per_tenant", {})
    for name in sorted(per_tenant):
        tenant = per_tenant[name]
        p99 = tenant.get("p99_ms")
        if thresholds.p99_ms is not None and p99 is not None and p99 >= thresholds.p99_ms:
            alerts.append(
                {
                    "kind": "p99_budget",
                    "tenant": name,
                    "value": p99,
                    "threshold": thresholds.p99_ms,
                    "message": (
                        f"tenant {name!r} p99 {p99:.1f} ms at/over budget "
                        f"{thresholds.p99_ms:.1f} ms"
                    ),
                }
            )
        persistence = tenant.get("persistence")
        if not persistence:
            continue
        log_bytes = persistence.get("log_bytes", 0)
        rollup_bytes = persistence.get("rollup_bytes")
        if (
            thresholds.log_rollup_fraction is not None
            and rollup_bytes
            and log_bytes >= thresholds.log_rollup_fraction * rollup_bytes
        ):
            alerts.append(
                {
                    "kind": "log_rollup_near",
                    "tenant": name,
                    "value": log_bytes,
                    "threshold": thresholds.log_rollup_fraction * rollup_bytes,
                    "message": (
                        f"tenant {name!r} commit log {log_bytes} B at/over "
                        f"{thresholds.log_rollup_fraction:.0%} of its "
                        f"{rollup_bytes} B roll-up threshold"
                    ),
                }
            )
        elif thresholds.log_bytes is not None and log_bytes >= thresholds.log_bytes:
            alerts.append(
                {
                    "kind": "log_bytes",
                    "tenant": name,
                    "value": log_bytes,
                    "threshold": thresholds.log_bytes,
                    "message": (
                        f"tenant {name!r} commit log {log_bytes} B at/over "
                        f"{thresholds.log_bytes} B"
                    ),
                }
            )

    for name in sorted(stats.get("tenant_replicas") or {}):
        block = stats["tenant_replicas"][name] or {}
        configured = block.get("configured", 0)
        live = block.get("live", configured)
        if live < configured:
            alerts.append(
                {
                    "kind": "replica_degraded",
                    "tenant": name,
                    "value": live,
                    "threshold": configured,
                    "message": (
                        f"tenant {name!r} serving {live} of {configured} "
                        "configured read replicas"
                    ),
                }
            )

    return {
        "stats_version": stats.get("stats_version", STATS_VERSION),
        "status": "alerting" if alerts else "ok",
        "thresholds": thresholds.as_dict(),
        "alerts": alerts,
    }
