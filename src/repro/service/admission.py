"""Admission batching: coalesce concurrent requests into batched scoring.

Serving "heavy traffic" means many humans asking about the *same* evolution
step at once.  Scoring each request independently repeats the expensive,
user-independent half of the pipeline (candidate interning, the
similarity-row gather of the collaborative model) once per request;
:meth:`~repro.recommender.engine.RecommenderEngine.recommend_many` does it
once per *batch*.  The :class:`AdmissionQueue` is the piece that turns
concurrent traffic into such batches:

1. ``submit`` admits a request under the queue lock, appending it to the
   pending batch of its admission key ``(tenant, old version, new version,
   k)`` and returning a future.
2. A worker pops the *entire* pending batch of the oldest key (FIFO over
   keys, bounded by ``max_batch``) and runs one
   ``recommend_many`` call for all distinct users in it.
3. Every admitted request resolves with its user's package; requests that
   arrived while the batch was being scored form the next batch.

Because the admission key pins the version pair, a batch is
snapshot-consistent by construction: a writer committing version ``N+1``
while a batch for ``(N-1, N)`` is in flight changes neither the batch's
contexts nor its scores.  And because ``recommend_many`` is bit-identical
to per-user ``recommend`` calls, coalescing is invisible in the results --
only in the throughput.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.profiles.user import User
from repro.service.errors import ServiceClosedError, ServiceOverloadedError
from repro.service.registry import Tenant

if TYPE_CHECKING:  # feeding seam only; no runtime dependency cycle
    from repro.service.metrics import ServiceMetrics

#: An admission key: requests sharing it are scored in one batched call.
#: The first element is the Tenant object's id(), not its name: a tenant
#: removed and re-registered under the same name is a *different* tenant,
#: and its requests must never share a batch with the old one's.
BatchKey = Tuple[int, str, str, int]


@dataclass
class _Request:
    tenant: Tenant
    user: User
    k: int
    pair: Tuple[str, str]
    future: "Future"
    #: Admission timestamp (perf_counter); the ops plane's per-request
    #: latency is resolution-time minus this.
    admitted_at: float = 0.0


@dataclass
class AdmissionStats:
    """Counters the tests and the load generator read (not thread-exact:
    increments happen under the queue lock, reads are unlocked snapshots).
    Plain counters only -- nothing here grows with the key space, so a
    long-lived service's stats stay O(1)."""

    submitted: int = 0
    batches: int = 0
    batched_requests: int = 0
    largest_batch: int = 0
    #: Requests that shared their batch with at least one other request.
    coalesced: int = 0
    #: Requests rejected at admission because the queue was at capacity.
    shed: int = 0

    def snapshot(self) -> Dict[str, int]:
        """JSON-friendly counter snapshot."""
        return {
            "submitted": self.submitted,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "largest_batch": self.largest_batch,
            "coalesced": self.coalesced,
            "shed": self.shed,
        }


class AdmissionQueue:
    """A coalescing request queue over a thread worker pool.

    ``max_pending`` is the backpressure valve: once that many requests are
    queued (across all keys), further submissions are shed with
    :class:`ServiceOverloadedError` instead of growing the backlog without
    bound -- under sustained overload, clients get an immediate
    retry-elsewhere signal rather than a slow timeout while abandoned work
    piles up.
    """

    def __init__(
        self,
        workers: int = 4,
        max_batch: int = 64,
        max_pending: int = 1024,
        metrics: "Optional[ServiceMetrics]" = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self._max_batch = max_batch
        self._max_pending = max_pending
        # Optional ops-plane aggregator: fed per-tenant admissions/sheds
        # under the queue lock and batch sizes/latencies from the worker
        # threads (see repro.service.metrics for the locking story).
        self._metrics = metrics
        self._pending_count = 0
        self._pending: "OrderedDict[BatchKey, List[_Request]]" = OrderedDict()
        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        self._closed = False
        self.stats = AdmissionStats()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-admission-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- producer side --------------------------------------------------------

    def submit(
        self, tenant: Tenant, user: User, k: int, pair: Tuple[str, str]
    ) -> "Future":
        """Admit one request; returns a future resolving to its package.

        ``pair`` is the version pair captured at admission -- the snapshot
        the request will score regardless of later commits.
        """
        future: Future = Future()
        request = _Request(
            tenant=tenant, user=user, k=k, pair=pair, future=future,
            admitted_at=time.perf_counter(),
        )
        key: BatchKey = (id(tenant), pair[0], pair[1], k)
        with self._lock:
            if self._closed:
                raise ServiceClosedError("admission queue is closed")
            if self._pending_count >= self._max_pending:
                self.stats.shed += 1
                if self._metrics is not None:
                    self._metrics.record_shed(tenant.name)
                raise ServiceOverloadedError(
                    f"admission queue is full ({self._max_pending} pending requests)"
                )
            self.stats.submitted += 1
            self._pending_count += 1
            self._pending.setdefault(key, []).append(request)
            if self._metrics is not None:
                self._metrics.record_admitted(tenant.name)
            self._work_available.notify()
        return future

    # -- worker side -----------------------------------------------------------

    def _pop_batch(self) -> Tuple[BatchKey, List[_Request]] | None:
        """Dequeue the oldest key's batch (or None when closing). Lock held."""
        while not self._pending:
            if self._closed:
                return None
            self._work_available.wait()
        key, requests = next(iter(self._pending.items()))
        if len(requests) <= self._max_batch:
            del self._pending[key]
            self._pending_count -= len(requests)
        else:
            batch, rest = requests[: self._max_batch], requests[self._max_batch :]
            self._pending[key] = rest
            # Round-robin: the remainder yields its front position, so a hot
            # key with a sustained backlog cannot starve the other keys.
            self._pending.move_to_end(key)
            self._pending_count -= len(batch)
            requests = batch
        return key, requests

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                popped = self._pop_batch()
                if popped is None:
                    return
                key, requests = popped
                self.stats.batches += 1
                self.stats.batched_requests += len(requests)
                self.stats.largest_batch = max(self.stats.largest_batch, len(requests))
                if len(requests) > 1:
                    self.stats.coalesced += len(requests)
            self._run_batch(key, requests)

    @staticmethod
    def _resolve(future: "Future", value=None, exception: BaseException | None = None) -> None:
        """Resolve one future, tolerating a caller-side cancel at any point.

        ``Future.cancel`` can land between a ``cancelled()`` check and the
        set call (nothing ever marks these futures running), which would
        raise ``InvalidStateError`` and kill the worker thread -- so the set
        itself is the guard.
        """
        try:
            if exception is not None:
                future.set_exception(exception)
            else:
                future.set_result(value)
        except InvalidStateError:
            pass  # cancelled by the caller; nobody is waiting

    def _run_batch(self, key: BatchKey, requests: List[_Request]) -> None:
        """Score one admitted batch and resolve its futures."""
        tenant = requests[0].tenant
        _, old_id, new_id, k = key
        try:
            engine = tenant.engine
            context = engine.context_for(old_id, new_id)
            # Distinct users, in admission order, first occurrence wins:
            # duplicate requests for the same user share one scoring row
            # (and one package object), and an earlier request is never
            # scored against a profile registered after it was admitted.
            users_by_id: Dict[str, User] = {}
            for request in requests:
                users_by_id.setdefault(request.user.user_id, request.user)
            packages = engine.recommend_many(
                list(users_by_id.values()), k=k, context=context
            )
        except BaseException as exc:  # propagate to every waiter, keep worker alive
            for request in requests:
                self._resolve(request.future, exception=exc)
            self._observe(tenant.name, requests, failed=True)
            return
        for request in requests:
            self._resolve(request.future, packages[request.user.user_id])
        self._observe(tenant.name, requests, failed=False)

    def _observe(self, name: str, requests: List[_Request], failed: bool) -> None:
        """Feed one resolved batch to the ops-plane aggregator (if any)."""
        if self._metrics is None:
            return
        now = time.perf_counter()
        self._metrics.record_batch(name, len(requests), failed=failed)
        for request in requests:
            self._metrics.record_latency(name, now - request.admitted_at)

    # -- lifecycle ---------------------------------------------------------------

    def close(self, timeout: float | None = 5.0) -> None:
        """Stop accepting work, drain pending batches and join the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._work_available.notify_all()
        for worker in self._workers:
            worker.join(timeout=timeout)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def depth(self) -> int:
        """Requests admitted but not yet handed to a worker (unlocked read).

        The ops plane's backlog gauge: sustained depth near ``max_pending``
        means the workers cannot keep up and sheds are imminent.
        """
        return self._pending_count

    def __enter__(self) -> "AdmissionQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
