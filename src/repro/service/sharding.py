"""Shard-per-process serving: scale the scoring plane with cores, not threads.

One :class:`~repro.service.service.RecommendationService` is GIL-bound --
its thread workers interleave on one core no matter how many there are.
This module runs **N full services in N worker processes** and routes
every request to the process owning its tenant:

* :class:`ShardSupervisor` -- the parent-side object: spawns the shard
  processes (``multiprocessing`` *spawn* context, so workers are clean
  interpreters on every platform), hands each its tenant subset, and
  forwards requests/commits over one duplex pipe per shard with
  future-based multiplexing (many requests in flight per pipe).
* ``_shard_main`` -- the worker entry point: decodes its tenants from the
  binary wire format (:mod:`repro.kb.wire`), stands up a full
  ``RecommendationService`` (admission batching stays local to the
  shard), answers ``recommend`` asynchronously and writes back under a
  send lock.

Placement is :meth:`TenantRegistry.shard_of
<repro.service.registry.TenantRegistry.shard_of>` -- a stable CRC-32 hash
of the tenant name -- so the supervisor, the HTTP router
(:func:`repro.service.http.make_router_server`) and any external balancer
agree on ownership without coordination.  Each tenant lives in exactly one
shard: reads and writes for it serialise there, which keeps the
single-process consistency story (snapshot-at-admission reads, per-tenant
write lock) intact per shard, and makes sharded responses **bit-identical**
to a single-process service holding the same tenants.

Bootstrap and commit payloads travel as wire bytes, never pickled object
graphs: a shard rebuilds each tenant's interning dictionary, root snapshot
and recorded delta chain exactly (same integer ids), then replays live
commits forwarded by the supervisor (binary deltas from the Python API,
verbatim N-Triples bodies from the HTTP router).

**Read replicas** (:mod:`repro.service.replica`) relax the one-process
cap for *hot* tenants without giving up the single-owner write story: a
tenant registered with ``replicas=N`` has its bootstrap payload published
once into a ``multiprocessing.shared_memory`` segment that the owning
shard and N read-only replica processes all decode zero-copy, reads
round-robin across owner + live replicas, and every commit (still applied
only by the owner) is fanned out to the replicas as the O(delta) binary
commit record, applied in pipe order under the tenant write lock.  A dead
replica silently leaves the rotation (a ``RuntimeWarning`` notes the
degradation) and in-flight reads it lost are replayed on the owner --
replicated responses stay bit-identical to a single-process service.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import threading
import warnings
from concurrent.futures import Future
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.io.storage import (
    feedback_from_dicts,
    feedback_to_dicts,
    package_to_dict,
    users_from_dicts,
    users_to_dicts,
)
from repro.kb import wire
from repro.kb.errors import KnowledgeBaseError
from repro.kb.triples import Triple
from repro.kb.version import VersionedKnowledgeBase
from repro.profiles.feedback import FeedbackStore
from repro.profiles.user import User
from repro.service.errors import (
    RemoteInternalError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ShardError,
    UnknownTenantError,
    UnknownUserError,
    error_message as _error_message,
)
from repro.service.registry import TenantRegistry
from repro.service.replica import (
    _replica_main,
    create_shared_payload,
    decode_shared_payload,
    destroy_segment,
    encode_tenant_artefacts,
)
from repro.service.service import RecommendationService, ServiceConfig

#: One tenant's spawn payload: (name, kb payload, users JSON bytes,
#: feedback JSON bytes or None).  The kb payload is either one ``encode_kb``
#: buffer or a raw on-disk store's ``(base, commit log)`` pair
#: (:meth:`repro.io.store.BinaryKBStore.bootstrap_payload`) -- either way
#: everything here pickles as flat bytes.
_TenantPayload = Tuple[str, object, bytes, Optional[bytes]]

# -- error transport ---------------------------------------------------------------
#
# Exceptions cross the process boundary as (kind, message) pairs; both sides
# share this table so the supervisor re-raises the exact class the shard's
# service raised and the HTTP router maps it to the same status code the
# single-process handler would.

_ERROR_CLASSES: Dict[str, type] = {
    "unknown_tenant": UnknownTenantError,
    "unknown_user": UnknownUserError,
    "closed": ServiceClosedError,
    "overloaded": ServiceOverloadedError,
    "timeout": TimeoutError,
    "bad_request": ValueError,
    "kb": KnowledgeBaseError,
    "service": ServiceError,
    "internal": RemoteInternalError,
}


def _error_kind(exc: BaseException) -> str:
    if isinstance(exc, UnknownTenantError):
        return "unknown_tenant"
    if isinstance(exc, UnknownUserError):
        return "unknown_user"
    if isinstance(exc, ServiceClosedError):
        return "closed"
    if isinstance(exc, ServiceOverloadedError):
        return "overloaded"
    if isinstance(exc, TimeoutError):
        return "timeout"
    if isinstance(exc, (ValueError, KeyError, json.JSONDecodeError)):
        return "bad_request"
    if isinstance(exc, KnowledgeBaseError):
        return "kb"
    if isinstance(exc, ServiceError):
        return "service"
    # Anything else is a shard-side bug: keep it distinguishable so the
    # router answers 500 (like the single-process handler's last resort),
    # not 400.
    return "internal"


def _raise_wire_error(kind: str, message: str) -> None:
    raise _ERROR_CLASSES.get(kind, ServiceError)(message)


# -- worker process ----------------------------------------------------------------


def _shard_main(
    conn,
    shard_index: int,
    config: ServiceConfig,
    payloads: Sequence[_TenantPayload],
) -> None:
    """Entry point of one shard process (module-level: spawn-picklable).

    Protocol: the parent sends ``(op, request_id, payload)`` tuples; the
    shard answers ``(request_id, "ok", result)`` or ``(request_id,
    "error", kind, message)``.  ``recommend`` is answered asynchronously
    from the admission queue's done-callbacks (so requests batch while
    earlier ones score); everything else is handled inline.  The first
    message out is ``("ready", shard_index, tenant_names)``.
    """
    # Imported here, not at module top: the handlers live in http.py which
    # imports this module's ShardSupervisor for type checking only.
    from repro.service.http import apply_commit, handle_commit, parse_recommend_payload

    service = RecommendationService(config)
    send_lock = threading.Lock()

    def send(message: tuple) -> None:
        with send_lock:
            try:
                conn.send(message)
            except (OSError, ValueError, BrokenPipeError):  # parent is gone
                pass

    # Where the on-disk dictionary cursor would be in a persisting
    # single-process service, this tracks the *replica* cursor: how many
    # terms of each tenant's dictionary the supervisor-side record stream
    # already covers.  Reads never intern into a chain dictionary (only
    # Graph.add under the commit write lock does), so the cursor only
    # moves inside _run_commit.
    term_cursors: Dict[str, int] = {}
    # Segments this shard published for late-joining replicas, by tenant.
    # Held only between publish_tenant and unpublish_tenant (one pipe
    # round-trip: the supervisor unpublishes as soon as the joiner
    # signals it attached); anything left at shutdown is destroyed.
    published: Dict[str, object] = {}

    try:
        for name, kb_bytes, users_bytes, feedback_bytes in payloads:
            # Lazy decode any payload shape: bootstrap builds the root
            # and the head pair's snapshots; middles rematerialise through
            # delta replay only if a request ever names them.
            if isinstance(kb_bytes, tuple) and kb_bytes and kb_bytes[0] == "shm":
                # Replicated tenant: the payload lives in a shared-memory
                # segment this shard decodes zero-copy, same as replicas.
                kb = decode_shared_payload(kb_bytes[1])
            elif isinstance(kb_bytes, tuple):
                from repro.io.store import decode_store_payload

                kb = decode_store_payload(*kb_bytes)
            else:
                kb = wire.decode_kb(kb_bytes, lazy=True)
            users = users_from_dicts(json.loads(users_bytes.decode("utf-8")))
            feedback = (
                feedback_from_dicts(json.loads(feedback_bytes.decode("utf-8")))
                if feedback_bytes is not None
                else None
            )
            service.add_tenant(name, kb, users, feedback)
            term_cursors[name] = (
                len(kb.first().graph.dictionary) if len(kb) else 0
            )
    except BaseException as exc:
        send(("failed", shard_index, _error_kind(exc), _error_message(exc)))
        service.close()
        return
    send(("ready", shard_index, service.registry.names()))

    def handle(op: str, request_id: int, payload) -> None:
        if op == "recommend":
            tenant, user, k, old, new = parse_recommend_payload(payload)
            if service.respcache is not None:
                # The response cache is process-local: this shard owns its
                # tenants' version ids and population epoch, so no other
                # process can invalidate behind its back and no coherence
                # traffic exists.  recommend_cached_async never blocks the
                # recv loop -- hits resolve immediately, misses ride the
                # admission workers' callbacks like the uncached path.
                cached_future = service.recommend_cached_async(
                    tenant, user, k, old, new
                )

                def _done_cached(f, request_id=request_id):
                    try:
                        send((request_id, "ok", package_to_dict(f.result().package)))
                    except BaseException as exc:
                        send(
                            (request_id, "error", _error_kind(exc), _error_message(exc))
                        )

                cached_future.add_done_callback(_done_cached)
                return
            future = service.recommend_async(tenant, user, k, old, new)

            def _done(f, request_id=request_id):
                try:
                    send((request_id, "ok", package_to_dict(f.result())))
                except BaseException as exc:
                    send((request_id, "error", _error_kind(exc), _error_message(exc)))

            future.add_done_callback(_done)
        elif op in ("commit", "commit_delta"):
            # Off the recv loop: a slow commit (parse + intern + diff) for
            # one tenant must not head-of-line-block admission of other
            # tenants' reads on this shard -- single-process, a commit only
            # holds its own tenant's write lock, and the sharded topology
            # keeps that property.  Same-tenant commits still serialise on
            # the write lock inside apply_commit.
            def _run_commit(op=op, request_id=request_id, payload=payload):
                try:
                    want_record = isinstance(payload, dict) and bool(
                        payload.pop("_want_record", False)
                    )

                    def apply():
                        if op == "commit":  # HTTP-shaped body, N-Triples changes
                            return handle_commit(service, payload)
                        # binary wire deltas from the Python API
                        added = (
                            wire.decode_triples(payload["added"])
                            if payload.get("added")
                            else []
                        )
                        deleted = (
                            wire.decode_triples(payload["deleted"])
                            if payload.get("deleted")
                            else []
                        )
                        return apply_commit(
                            service,
                            payload["tenant"],
                            added,
                            deleted,
                            payload.get("version_id"),
                            payload.get("metadata") or {},
                        )

                    tenant_name = (
                        payload.get("tenant") if isinstance(payload, dict) else None
                    )
                    if want_record and tenant_name:
                        # Replicated tenant: encode the committed version
                        # as an O(delta) commit record under the same
                        # write-lock hold that applied it, so the record
                        # stream carries every commit exactly once, in
                        # order, with the dictionary growth
                        # [cursor, len(dictionary)) no other commit can
                        # interleave into.
                        tenant = service.tenant(tenant_name)
                        with tenant.write_lock:
                            result = apply()
                            dictionary = tenant.kb.first().graph.dictionary
                            cursor = term_cursors.get(tenant_name, len(dictionary))
                            result["_record"] = wire.encode_commit(
                                tenant.kb.latest(), dictionary, cursor
                            )
                            term_cursors[tenant_name] = len(dictionary)
                    else:
                        result = apply()
                    send((request_id, "ok", result))
                except BaseException as exc:
                    send((request_id, "error", _error_kind(exc), _error_message(exc)))

            threading.Thread(
                target=_run_commit, name="repro-shard-commit", daemon=True
            ).start()
        elif op == "publish_tenant":
            # Warm late-join handoff: re-publish this tenant's *current*
            # chain -- base plus every commit applied so far -- together
            # with the artefact caches its serving already paid for, into
            # a fresh shared-memory segment a joining replica bootstraps
            # from.  Encoding under the write lock pins one consistent
            # chain state; the supervisor holds the tenant's commit lock
            # across publish + spawn, so no commit record can slip between
            # the published snapshot and the joiner's record stream.
            tenant_name = payload["tenant"]
            tenant = service.tenant(tenant_name)
            with tenant.write_lock:
                base = wire.encode_kb(tenant.kb)
                artefacts = encode_tenant_artefacts(tenant.kb)
                generation = len(tenant.kb)
                # The snapshot carries the whole dictionary, so the record
                # stream resumes from here.  Commits made while the tenant
                # had no replicas never advanced the cursor; without this
                # resync their interned terms would be double-counted in
                # the next record's terms_before and poison the joiner.
                # With replicas already live this is a no-op: every
                # record-carrying commit left the cursor at len(dict).
                if len(tenant.kb):
                    term_cursors[tenant_name] = len(
                        tenant.kb.first().graph.dictionary
                    )
            segment = create_shared_payload(base, artefacts)
            stale = published.pop(tenant_name, None)
            if stale is not None:  # pragma: no cover - supervisor lost track
                destroy_segment(stale)
            published[tenant_name] = segment
            send(
                (
                    request_id,
                    "ok",
                    {
                        "segment": segment.name,
                        "generation": generation,
                        "artefact_bytes": len(artefacts),
                    },
                )
            )
        elif op == "unpublish_tenant":
            # The joiner holds its mapping (or failed): unlink now.  Same
            # hygiene as start() -- the mapping outlives the name, and a
            # SIGKILL'd topology leaves nothing behind in /dev/shm.
            segment = published.pop(payload["tenant"], None)
            if segment is not None:
                destroy_segment(segment)
            send((request_id, "ok", {"unpublished": segment is not None}))
        elif op == "stats":
            send((request_id, "ok", service.stats()))
        elif op == "tenants":
            send((request_id, "ok", service.tenants()))
        elif op == "health":
            send(
                (
                    request_id,
                    "ok",
                    {"status": "ok", "shard": shard_index,
                     "tenants": len(service.registry)},
                )
            )
        else:
            raise ValueError(f"unknown shard op: {op!r}")

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            op, request_id, payload = message
            if op == "shutdown":
                send((request_id, "ok", {"shard": shard_index}))
                break
            try:
                handle(op, request_id, payload)
            except BaseException as exc:
                send((request_id, "error", _error_kind(exc), _error_message(exc)))
    finally:
        for segment in published.values():
            destroy_segment(segment)
        service.close()
        try:
            conn.close()
        except OSError:
            pass


# -- supervisor side ---------------------------------------------------------------


class _ShardClient:
    """Parent-side handle of one worker process: pipe, futures, reader thread.

    Used for shards and replicas alike -- both speak the same protocol;
    ``label`` is what error messages and degradation warnings call the
    process.
    """

    def __init__(self, index: int, process, conn, label: Optional[str] = None) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.label = label or f"shard {index}"
        self.ready = threading.Event()
        #: Set the moment a replica holds its shared-memory mapping (the
        #: "attached" pipe signal) -- the publisher's cue to unlink the
        #: segment.  Implied by ready/failed/dead so waiters never hang.
        self.attached = threading.Event()
        self.failure: Optional[str] = None
        self.tenant_names: List[str] = []
        # A poisoned client is alive but no longer trustworthy (a replica
        # that failed to apply a commit record would serve stale reads);
        # the supervisor takes it out of the read rotation.
        self.poisoned = False
        #: Set once the supervisor has warned about this client's loss.
        self.degradation_warned = False
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: Dict[int, Future] = {}
        self._ids = itertools.count()
        self._dead = False
        self._reader = threading.Thread(
            target=self._read_loop, name=f"repro-shard-client-{index}", daemon=True
        )
        self._reader.start()

    # The reader thread is the only consumer of the pipe; it resolves the
    # matching future for every response, so any number of caller threads
    # can have requests in flight over the one connection.
    def _read_loop(self) -> None:
        while True:
            try:
                message = self.conn.recv()
            except (EOFError, OSError):
                break
            head = message[0]
            if head == "attached":
                self.attached.set()
                continue
            if head == "ready":
                self.tenant_names = list(message[2])
                self.attached.set()
                self.ready.set()
                continue
            if head == "failed":
                self.failure = f"{message[2]}: {message[3]}"
                self.attached.set()
                self.ready.set()
                continue
            request_id = head
            with self._pending_lock:
                future = self._pending.pop(request_id, None)
            if future is None:
                continue  # response for an abandoned (timed-out) request
            if message[1] == "ok":
                future.set_result(message[2])
            else:
                _, _, kind, text = message
                try:
                    _raise_wire_error(kind, text)
                except BaseException as exc:
                    future.set_exception(exc)
        self._mark_dead()

    @property
    def dead(self) -> bool:
        """True once the pipe is gone (process exit or close)."""
        return self._dead

    def _mark_dead(self) -> None:
        self._dead = True
        self.attached.set()
        self.ready.set()
        with self._pending_lock:
            pending, self._pending = self._pending, {}
        for future in pending.values():
            future.set_exception(
                ShardError(f"{self.label} died with requests in flight")
            )

    def poison(self) -> None:
        """Take the client out of rotation without killing the process."""
        self.poisoned = True

    def submit(self, op: str, payload) -> Future:
        if self._dead:
            raise ShardError(f"{self.label} is not running")
        future: Future = Future()
        request_id = next(self._ids)
        with self._pending_lock:
            self._pending[request_id] = future
        try:
            with self._send_lock:
                self.conn.send((op, request_id, payload))
        except (OSError, ValueError, BrokenPipeError):
            with self._pending_lock:
                self._pending.pop(request_id, None)
            raise ShardError(f"{self.label} pipe is closed") from None
        # Close the race with _mark_dead(): the shard may have died between
        # the _dead check above and registering the future, in which case
        # the dead-sweep already ran and nothing would ever resolve it (the
        # first write into a half-closed pipe does not reliably raise).
        if self._dead:
            with self._pending_lock:
                abandoned = self._pending.pop(request_id, None)
            if abandoned is not None:
                abandoned.set_exception(
                    ShardError(f"{self.label} died with requests in flight")
                )
        return future

    def request(self, op: str, payload, timeout: Optional[float]):
        return self.submit(op, payload).result(timeout=timeout)

    def close(self, timeout: Optional[float]) -> None:
        if not self._dead:
            try:
                self.request("shutdown", None, timeout=timeout)
            except Exception:
                pass  # already dying; the join/terminate below reaps it
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=timeout)
        try:
            self.conn.close()
        except OSError:
            pass


class ShardSupervisor:
    """N shard processes behind one tenant-hash router (the Python API).

    Usage::

        supervisor = ShardSupervisor(shards=4, config=ServiceConfig(...))
        supervisor.add_tenant("acme", kb, users)   # before start()
        supervisor.start()
        package = supervisor.recommend("acme", "u3")     # JSON-ready dict
        supervisor.commit_changes("acme", added=[...])   # binary delta wire
        supervisor.close()

    Tenants are registered *before* :meth:`start`: each is wire-encoded
    once and shipped to its owning shard as part of the spawn payload.
    ``recommend`` returns the package as a JSON-ready dict (the same
    layout :func:`repro.io.storage.package_to_dict` produces), because the
    package object itself lives in the shard process.

    Results are bit-identical to a single-process
    :class:`~repro.service.service.RecommendationService` over the same
    tenants: routing only decides *where* a tenant's single-owner service
    runs, never what it computes.

    A tenant registered with ``replicas=N`` (or every tenant, via the
    constructor's ``replicas``) additionally gets N read-only replica
    processes that bootstrap zero-copy from one shared-memory segment
    (:mod:`repro.service.replica`): its reads round-robin across owner +
    live replicas, its commits still go only to the owner and are fanned
    out to replicas as O(delta) commit records.  Dead replicas degrade
    the tenant to the remaining processes (eventually owner-only) with a
    ``RuntimeWarning`` instead of failing requests.
    """

    def __init__(
        self,
        shards: int = 2,
        config: ServiceConfig | None = None,
        start_timeout_s: float = 120.0,
        replicas: int = 0,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {replicas}")
        self.shards = shards
        self.replicas = replicas  # default per-tenant replica count
        self.config = config or ServiceConfig()
        self._start_timeout_s = start_timeout_s
        self._payloads: List[List[_TenantPayload]] = [[] for _ in range(shards)]
        self._tenant_shard: Dict[str, int] = {}
        self._clients: List[_ShardClient] = []
        self._ctx = multiprocessing.get_context("spawn")
        self._started = False
        self._closed = False
        # Replica plane state, all keyed by tenant name.
        self._replica_counts: Dict[str, int] = {}
        self._replica_clients: Dict[str, List[_ShardClient]] = {}
        self._segments: Dict[str, object] = {}  # SharedMemory until all attach
        self._read_cursors: Dict[str, "itertools.count"] = {}
        self._commit_locks: Dict[str, threading.Lock] = {}
        self._generations: Dict[str, int] = {}
        # Users/feedback JSON bytes per tenant, kept past start() so a
        # replica can join any tenant at runtime (the KB itself is
        # re-published by the owner; these few KB of JSON are the only
        # boot state the supervisor must retain).
        self._tenant_boot: Dict[str, Tuple[bytes, Optional[bytes]]] = {}
        # Monotonic replica index per tenant: a respawned replica gets a
        # fresh index (and label), never a dead one's.
        self._replica_indices: Dict[str, "itertools.count"] = {}

    # -- tenants (pre-start) -------------------------------------------------

    def add_tenant(
        self,
        name: str,
        kb: VersionedKnowledgeBase,
        users: Iterable[User] = (),
        feedback: FeedbackStore | None = None,
        replicas: int | None = None,
    ) -> int:
        """Register a tenant; returns its shard index.

        Must be called before :meth:`start` -- the tenant is serialised to
        the binary wire format now and travels with its shard's spawn
        payload.  ``replicas`` overrides the supervisor-wide default read
        replica count for this tenant.
        """
        return self._register(name, wire.encode_kb(kb), users, feedback, replicas)

    def add_tenant_encoded(
        self,
        name: str,
        kb_payload: "bytes | Tuple[bytes, bytes]",
        users: Iterable[User] = (),
        feedback: FeedbackStore | None = None,
        replicas: int | None = None,
    ) -> int:
        """Register a tenant from already-encoded KB bytes; returns its shard.

        ``kb_payload`` is either one :func:`repro.kb.wire.encode_kb` buffer
        or a binary store's raw ``(base, commit log)`` pair
        (:meth:`repro.io.store.BinaryKBStore.bootstrap_payload`).  This is
        the cold-start fast path of ``python -m repro serve --shards``: the
        router ships the on-disk bytes verbatim and never decodes or
        re-encodes a tenant it only routes for.  With replicas the same
        bytes are published once in shared memory and every process of the
        tenant decodes them from there.
        """
        if isinstance(kb_payload, tuple):
            base, log = kb_payload
            kb_payload = (bytes(base), bytes(log))
        else:
            kb_payload = bytes(kb_payload)
        return self._register(name, kb_payload, users, feedback, replicas)

    def _register(
        self,
        name: str,
        kb_payload,
        users: Iterable[User],
        feedback: FeedbackStore | None,
        replicas: int | None = None,
    ) -> int:
        if self._started:
            raise ServiceError("tenants must be registered before start()")
        if not name:
            raise ServiceError("tenant name must be non-empty")
        if name in self._tenant_shard:
            raise ServiceError(f"duplicate tenant name: {name!r}")
        n_replicas = self.replicas if replicas is None else replicas
        if n_replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {n_replicas}")
        shard = TenantRegistry.shard_of(name, self.shards)
        payload: _TenantPayload = (
            name,
            kb_payload,
            json.dumps(users_to_dicts(list(users))).encode("utf-8"),
            (
                json.dumps(feedback_to_dicts(feedback)).encode("utf-8")
                if feedback is not None
                else None
            ),
        )
        self._payloads[shard].append(payload)
        self._tenant_shard[name] = shard
        self._tenant_boot[name] = (payload[2], payload[3])
        # Every tenant gets the replica-routing scaffolding up front --
        # add_replica() can turn any tenant replicated at runtime.
        self._read_cursors[name] = itertools.count()
        self._commit_locks[name] = threading.Lock()
        self._replica_indices[name] = itertools.count(n_replicas)
        if n_replicas:
            self._replica_counts[name] = n_replicas
        return shard

    def shard_of(self, tenant_name: str) -> int:
        """The shard index owning ``tenant_name`` (raises when unknown)."""
        shard = self._tenant_shard.get(tenant_name)
        if shard is None:
            raise UnknownTenantError(
                f"unknown tenant {tenant_name!r} "
                f"(have: {', '.join(sorted(self._tenant_shard)) or 'none'})"
            )
        return shard

    def tenant_names(self) -> List[str]:
        """All registered tenant names, sorted."""
        return sorted(self._tenant_shard)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ShardSupervisor":
        """Spawn shard + replica processes and wait until every one is ready."""
        if self._started:
            raise ServiceError("supervisor already started")
        if self._closed:
            raise ServiceClosedError("supervisor is closed")
        # Publish replicated tenants' payloads into shared memory first and
        # swap the spawn payload for a segment reference, so the owner
        # shard and all its replicas decode the very same bytes and the
        # snapshot never crosses a pipe at all.
        replica_specs: List[Tuple[str, str, bytes, Optional[bytes], int]] = []
        for shard_payloads in self._payloads:
            for i, (name, kb_payload, users_b, feedback_b) in enumerate(shard_payloads):
                n_replicas = self._replica_counts.get(name)
                if not n_replicas:
                    continue
                segment = create_shared_payload(kb_payload)
                self._segments[name] = segment
                shard_payloads[i] = (name, ("shm", segment.name), users_b, feedback_b)
                replica_specs.append(
                    (name, segment.name, users_b, feedback_b, n_replicas)
                )
        for index in range(self.shards):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            process = self._ctx.Process(
                target=_shard_main,
                args=(child_conn, index, self.config, self._payloads[index]),
                name=f"repro-shard-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()  # the child owns its end now
            self._clients.append(_ShardClient(index, process, parent_conn))
        for name, segment_name, users_b, feedback_b, n_replicas in replica_specs:
            clients: List[_ShardClient] = []
            for r_index in range(n_replicas):
                parent_conn, child_conn = self._ctx.Pipe(duplex=True)
                process = self._ctx.Process(
                    target=_replica_main,
                    args=(
                        child_conn, name, r_index, segment_name,
                        self.config, users_b, feedback_b,
                    ),
                    name=f"repro-replica-{name}-{r_index}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                clients.append(
                    _ShardClient(
                        r_index, process, parent_conn,
                        label=f"replica {r_index} of tenant {name!r}",
                    )
                )
            self._replica_clients[name] = clients
        self._started = True
        all_clients = list(self._clients)
        for clients in self._replica_clients.values():
            all_clients.extend(clients)
        for client in all_clients:
            if not client.ready.wait(timeout=self._start_timeout_s):
                self.close()
                raise ShardError(
                    f"{client.label} did not become ready within "
                    f"{self._start_timeout_s:.0f}s"
                )
            if client.failure is not None:
                failure = client.failure
                self.close()
                raise ShardError(f"{client.label} failed to bootstrap: {failure}")
            if client.dead:
                label = client.label
                self.close()
                raise ShardError(f"{label} died before becoming ready")
        # Everyone attached: unlink the segments now.  POSIX keeps the
        # mappings alive for attached processes, so an unlinked segment
        # still serves every bootstrap that already happened -- and a
        # SIGKILL'd topology leaves nothing behind in /dev/shm.
        self._release_segments()
        # The payloads have been shipped; holding a serialized replica of
        # every tenant's KB in the router process would double resident
        # memory for nothing (tenants cannot be added after start()).
        self._payloads = [[] for _ in range(self.shards)]
        return self

    def _release_segments(self) -> None:
        segments, self._segments = self._segments, {}
        for segment in segments.values():
            destroy_segment(segment)

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Shut every replica and shard down, reap processes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for clients in self._replica_clients.values():
            for client in clients:
                client.close(timeout)
        self._replica_clients = {}
        for client in self._clients:
            client.close(timeout)
        self._clients = []
        self._release_segments()

    def __enter__(self) -> "ShardSupervisor":
        return self if self._started else self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request routing -----------------------------------------------------

    def _client_for(self, tenant_name: str) -> _ShardClient:
        if not self._started or self._closed:
            raise ServiceClosedError("shard supervisor is not running")
        return self._clients[self.shard_of(tenant_name)]

    def _live_replicas(self, tenant_name: str) -> List[_ShardClient]:
        """The tenant's replicas still fit for reads, warning once per loss.

        A replica leaves the rotation when its process died or when it
        was poisoned (failed to apply a commit record, so its chain may
        be stale).  Losing one degrades the tenant -- reads fall back to
        the remaining processes, eventually owner-only -- and that is
        logged as a ``RuntimeWarning`` exactly once per replica.
        """
        live: List[_ShardClient] = []
        for client in self._replica_clients.get(tenant_name, ()):
            if client.dead or client.poisoned:
                if not client.degradation_warned:
                    client.degradation_warned = True
                    why = "died" if client.dead else "missed a commit record"
                    warnings.warn(
                        f"{client.label} {why}; reads for {tenant_name!r} degrade "
                        "to the remaining processes (owner-only at worst)",
                        RuntimeWarning,
                    )
            else:
                live.append(client)
        return live

    def _submit_read(
        self, client: _ShardClient, owner: _ShardClient, payload: Dict
    ) -> "Future[Dict]":
        """Submit a read on ``client``, transparently retrying on the owner.

        Reads are idempotent and replicas are bit-identical to the owner,
        so a read lost to a dying replica is simply replayed on the owner
        -- no request is lost and the caller never sees the failure.
        """
        if client is owner:
            return client.submit("recommend", payload)
        try:
            inner = client.submit("recommend", payload)
        except ShardError:
            self._live_replicas(payload["tenant"])  # emit degradation warning
            return owner.submit("recommend", payload)
        outer: Future = Future()

        def _relay(source: Future, sink: Future) -> None:
            exc = source.exception()
            if exc is None:
                sink.set_result(source.result())
            else:
                sink.set_exception(exc)

        def _done(f: Future) -> None:
            exc = f.exception()
            if not isinstance(exc, ShardError):
                _relay(f, outer)
                return
            self._live_replicas(payload["tenant"])  # emit degradation warning
            try:
                retry = owner.submit("recommend", payload)
            except BaseException as retry_exc:
                outer.set_exception(retry_exc)
                return
            retry.add_done_callback(lambda g: _relay(g, outer))

        inner.add_done_callback(_done)
        return outer

    def recommend_async(
        self,
        tenant_name: str,
        user_id: str,
        k: int | None = None,
        old_id: str | None = None,
        new_id: str | None = None,
    ) -> "Future[Dict]":
        """Admit one read on the owner or a replica; future of the package dict."""
        payload = {"tenant": tenant_name, "user": user_id}
        if k is not None:
            payload["k"] = k
        if old_id is not None:
            payload["old"] = old_id
        if new_id is not None:
            payload["new"] = new_id
        return self._route_read(tenant_name, payload)

    def _route_read(self, tenant_name: str, payload: Dict) -> "Future[Dict]":
        owner = self._client_for(tenant_name)
        replicas = self._live_replicas(tenant_name)
        if not replicas:
            return owner.submit("recommend", payload)
        pool = [owner] + replicas
        client = pool[next(self._read_cursors[tenant_name]) % len(pool)]
        return self._submit_read(client, owner, payload)

    def recommend(
        self,
        tenant_name: str,
        user_id: str,
        k: int | None = None,
        old_id: str | None = None,
        new_id: str | None = None,
        timeout: float | None = None,
    ) -> Dict:
        """Recommend for one user (blocking); returns the package as a dict."""
        future = self.recommend_async(tenant_name, user_id, k, old_id, new_id)
        return future.result(
            timeout=self.config.request_timeout_s if timeout is None else timeout
        )

    def commit_changes(
        self,
        tenant_name: str,
        added: Sequence[Triple] = (),
        deleted: Sequence[Triple] = (),
        version_id: str | None = None,
        metadata: Dict[str, str] | None = None,
        timeout: float | None = None,
    ) -> Dict:
        """Commit a binary-delta evolution step on the owning shard.

        The triples cross the process boundary in the wire format's
        self-contained delta payload -- no N-Triples text, no pickled
        graphs -- and the shard applies them under the tenant's write lock.

        This is the *serving* write path, so it follows the HTTP
        ``/commit`` contract rather than the raw
        ``VersionedKnowledgeBase.commit_changes`` one: empty commits and
        duplicate version ids are rejected with ``ValueError`` (the raw KB
        API allows metadata-only commits and raises ``VersionError`` for
        duplicates), and the result is the JSON-shaped dict the HTTP
        endpoint returns, not a ``Version`` object.
        """
        payload = {
            "tenant": tenant_name,
            "added": wire.encode_triples(list(added)) if added else None,
            "deleted": wire.encode_triples(list(deleted)) if deleted else None,
            "version_id": version_id,
            "metadata": metadata or {},
        }
        return self._commit("commit_delta", tenant_name, payload, timeout)

    def _commit(
        self, op: str, tenant_name: str, payload: Dict, timeout: Optional[float]
    ) -> Dict:
        """Apply a commit on the owner and bump the tenant's replicas.

        Writes stay single-owner.  For a replicated tenant the owner is
        asked (``_want_record``) to return the committed version as an
        O(delta) binary commit record, and the record is forwarded to
        every live replica *inside the per-tenant commit lock* -- so
        records hit each replica pipe in commit order, and the replica's
        inline application makes pipe order the cutover order: once this
        method returns generation G, any read routed anywhere scores
        G's head pair (or newer), exactly the single-process contract.
        A replica that fails to apply its record is poisoned out of the
        read rotation rather than serving stale data.
        """
        owner = self._client_for(tenant_name)
        lock = self._commit_locks.get(tenant_name)
        if lock is None:  # registered before the replica plane existed
            return owner.request(op, payload, timeout=timeout)
        with lock:
            # Checked *inside* the lock: add_replica() holds it across
            # publish + spawn, so a tenant can never commit between the
            # snapshot a joiner bootstraps from and the record stream it
            # rides afterwards -- even on the 0 -> 1 replica transition.
            if not self._replica_counts.get(tenant_name):
                return owner.request(op, payload, timeout=timeout)
            payload = dict(payload)
            payload["_want_record"] = True
            result = owner.request(op, payload, timeout=timeout)
            record = result.pop("_record", None)
            generation = len(result.get("versions") or ())
            if generation:
                self._generations[tenant_name] = generation
            if record is not None:
                for client in self._live_replicas(tenant_name):
                    try:
                        future = client.submit(
                            "apply_record",
                            {"tenant": tenant_name, "record": record,
                             "generation": generation},
                        )
                    except ShardError:
                        continue  # died since the liveness check; degrades
                    future.add_done_callback(
                        lambda f, client=client: self._record_applied(f, client)
                    )
        return result

    def _record_applied(self, future: Future, client: _ShardClient) -> None:
        if future.exception() is None:
            return
        # The replica's chain no longer matches the owner's; serving from
        # it would break bit-identity.  Poison it -- the next routing pass
        # warns and degrades.
        client.poison()

    # -- elastic replicas (runtime join / leave / respawn) ---------------------

    def replica_count(self, tenant_name: str) -> int:
        """The tenant's *configured* replica count (0 for never-replicated)."""
        self.shard_of(tenant_name)  # raises UnknownTenantError
        return self._replica_counts.get(tenant_name, 0)

    def _require_running(self) -> None:
        if not self._started or self._closed:
            raise ServiceClosedError("shard supervisor is not running")

    def add_replica(self, tenant_name: str) -> int:
        """Spawn one warm read replica for ``tenant_name`` at runtime.

        The owner re-publishes its *current* chain -- base plus every
        commit applied so far -- together with its warmed artefact caches
        into a fresh shared-memory segment; the joiner bootstraps from it
        with its engine caches pre-seeded, so its first request skips the
        cold Brandes + semantic price.  Holding the tenant's commit lock
        across publish + spawn + registration makes the cutover exact:
        every commit is either in the published snapshot or in the record
        stream the new replica receives, never both, never neither.
        Returns the new configured replica count.
        """
        self._require_running()
        self.shard_of(tenant_name)
        with self._commit_locks[tenant_name]:
            client = self._join_replica(tenant_name)
            self._replica_clients.setdefault(tenant_name, []).append(client)
            count = self._replica_counts.get(tenant_name, 0) + 1
            self._replica_counts[tenant_name] = count
        return count

    def retire_replica(self, tenant_name: str, timeout: float | None = 10.0) -> int:
        """Shut one replica of ``tenant_name`` down; returns the new count.

        The newest replica leaves the rotation under the commit lock (so
        no commit record is ever addressed to it after removal) and is
        then shut down gracefully outside the lock.  Reads already in
        flight on it either complete or are transparently replayed on the
        owner by the routing layer -- retiring loses no requests.
        """
        self._require_running()
        self.shard_of(tenant_name)
        with self._commit_locks[tenant_name]:
            clients = self._replica_clients.get(tenant_name) or []
            if not clients:
                raise ServiceError(
                    f"tenant {tenant_name!r} has no replicas to retire"
                )
            client = clients.pop()
            count = max(0, self._replica_counts.get(tenant_name, 1) - 1)
            if count:
                self._replica_counts[tenant_name] = count
            else:
                # Back to the non-replicated shape: stats/health stop
                # reporting a replica block for this tenant entirely.
                self._replica_counts.pop(tenant_name, None)
        client.close(timeout)
        return count

    def respawn_dead_replicas(self, tenant_name: str) -> int:
        """Replace every dead or poisoned replica of ``tenant_name``.

        Instead of degrading forever, each lost replica is swapped for a
        freshly joined one (same warm handoff as :meth:`add_replica`) --
        the configured count is unchanged, the live count recovers.  The
        replacement is a new client object, so the warn-once degradation
        flag resets with it: a second death warns again.  Returns how
        many replicas were respawned.
        """
        self._require_running()
        self.shard_of(tenant_name)
        lost: List[_ShardClient] = []
        respawned = 0
        with self._commit_locks[tenant_name]:
            clients = self._replica_clients.get(tenant_name)
            if not clients:
                return 0
            # Emit any pending degradation warning before the dead client
            # objects (which carry the warn-once flags) are dropped.
            self._live_replicas(tenant_name)
            lost = [c for c in clients if c.dead or c.poisoned]
            for client in lost:
                clients.remove(client)
            for _client in lost:
                try:
                    clients.append(self._join_replica(tenant_name))
                except (ShardError, ServiceError):
                    # Owner unreachable or spawn failed: configured stays
                    # above live, so /alerts keeps reporting the tenant
                    # degraded and the next autoscale tick retries.
                    break
                respawned += 1
        for client in lost:
            client.close(5.0)
        return respawned

    def _join_replica(self, tenant_name: str) -> _ShardClient:
        """Publish the owner's live payload and boot one replica from it.

        Caller holds the tenant's commit lock.  The segment lives exactly
        as long as the joiner needs its name: the replica signals
        "attached" before it starts decoding, and the owner unlinks in
        response -- the same attach-then-unlink hygiene as :meth:`start`,
        so a SIGKILL at any point leaves nothing in ``/dev/shm``.
        """
        owner = self._client_for(tenant_name)
        users_b, feedback_b = self._tenant_boot[tenant_name]
        r_index = next(self._replica_indices[tenant_name])
        info = owner.request(
            "publish_tenant", {"tenant": tenant_name},
            timeout=self._start_timeout_s,
        )
        client: Optional[_ShardClient] = None
        attached = False
        try:
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            process = self._ctx.Process(
                target=_replica_main,
                args=(
                    child_conn, tenant_name, r_index, info["segment"],
                    self.config, users_b, feedback_b,
                ),
                name=f"repro-replica-{tenant_name}-{r_index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            client = _ShardClient(
                r_index, process, parent_conn,
                label=f"replica {r_index} of tenant {tenant_name!r}",
            )
            attached = client.attached.wait(timeout=self._start_timeout_s)
        finally:
            try:
                owner.request(
                    "unpublish_tenant", {"tenant": tenant_name}, timeout=30.0
                )
            except Exception:
                pass  # owner dying; its exit destroys the segment

        def _fail(why: str) -> None:
            label = client.label
            client.close(5.0)
            raise ShardError(f"{label} {why}")

        if not attached:
            _fail(f"did not attach within {self._start_timeout_s:.0f}s")
        if not client.ready.wait(timeout=self._start_timeout_s):
            _fail(f"did not become ready within {self._start_timeout_s:.0f}s")
        if client.failure is not None:
            _fail(f"failed to bootstrap: {client.failure}")
        if client.dead:
            _fail("died before becoming ready")
        generation = info.get("generation")
        if generation:
            self._generations[tenant_name] = max(
                self._generations.get(tenant_name, 0), int(generation)
            )
        return client

    def forward(self, op: str, payload: Dict, timeout: float | None = None) -> Dict:
        """Route an HTTP-shaped body (``recommend`` / ``commit``) by tenant.

        The router front-end calls this: the body is forwarded verbatim,
        so the shard performs exactly the validation and N-Triples parsing
        the single-process handler would.  ``recommend`` participates in
        replica round-robin; ``commit`` always goes to the owner.
        """
        tenant_name = payload.get("tenant")
        if not tenant_name:
            raise ValueError(f"{op} requires 'tenant'")
        timeout = self.config.request_timeout_s if timeout is None else timeout
        if op == "recommend":
            return self._route_read(tenant_name, payload).result(timeout=timeout)
        if op == "commit":
            payload.pop("_want_record", None)  # internal flag, never client-set
            return self._commit(op, tenant_name, payload, timeout)
        return self._client_for(tenant_name).request(op, payload, timeout=timeout)

    # -- introspection -------------------------------------------------------

    def _fanout(self, op: str, timeout: float | None = 30.0) -> List:
        if not self._started or self._closed:
            raise ServiceClosedError("shard supervisor is not running")
        futures = [client.submit(op, None) for client in self._clients]
        return [future.result(timeout=timeout) for future in futures]

    def tenants(self) -> List[Dict[str, object]]:
        """Tenant summaries from every shard, sorted by name."""
        merged: List[Dict[str, object]] = []
        for summaries in self._fanout("tenants"):
            merged.extend(summaries)
        return sorted(merged, key=lambda summary: str(summary.get("name", "")))

    def stats(self) -> Dict[str, object]:
        """Per-shard admission counters plus the tenant -> shard map."""
        per_shard = self._fanout("stats")
        stats: Dict[str, object] = {
            "shards": {
                f"shard_{index}": stats for index, stats in enumerate(per_shard)
            },
            "tenant_shards": dict(sorted(self._tenant_shard.items())),
            "workers_per_shard": self.config.workers,
        }
        if self._replica_counts:
            stats["tenant_replicas"] = {
                name: {
                    "configured": count,
                    "live": len(self._live_replicas(name)),
                    "generation": self._generations.get(name),
                }
                for name, count in sorted(self._replica_counts.items())
            }
        return stats

    def health(self) -> Dict[str, object]:
        """Aggregate liveness: every shard must answer; replicas may degrade."""
        responses = self._fanout("health")
        health: Dict[str, object] = {
            "status": "ok",
            "shards": len(responses),
            "tenants": sum(int(r.get("tenants", 0)) for r in responses),
        }
        if self._replica_counts:
            health["replicas"] = {
                "configured": sum(self._replica_counts.values()),
                "live": sum(
                    len(self._live_replicas(name)) for name in self._replica_counts
                ),
            }
        return health
