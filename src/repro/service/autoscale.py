"""Elastic replica control: track the hot tenant's read share, not a schedule.

The replica plane (:mod:`repro.service.replica`) multiplies one tenant's
reads across cores, but a count fixed at ``start()`` is wrong in both
directions: idle tenants burn processes, and a tenant that *becomes* hot
mid-flight stays capped.  :class:`AutoscaleController` closes the loop:

* every ``interval_s`` it polls the supervisor's ``/stats`` payload and
  computes each tenant's share of the reads admitted since the last tick
  (the same skew signal the Zipf benchmark calls ``hot_share``);
* a tenant at/over ``hot_share`` of the traffic gains one replica per
  tick up to ``max_replicas`` -- joined *warm* via the owner's artefact
  handoff, so the new process is immediately useful;
* a tenant at/under ``cool_share`` (or with no traffic at all) loses one
  replica per tick down to ``min_replicas``;
* before any scaling decision, dead or poisoned replicas are respawned
  (:meth:`ShardSupervisor.respawn_dead_replicas`) -- capacity the
  operator configured is healed first, then adjusted.

One step per tenant per tick keeps the controller gentle: a traffic spike
ramps replicas over a few intervals instead of forking half the machine
at once, and a single noisy sample never mass-retires a fleet.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.service.errors import ServiceClosedError

#: Default share of recent reads at/over which a tenant is "hot".
DEFAULT_HOT_SHARE = 0.5
#: Default share at/under which a replicated tenant may cool down.
DEFAULT_COOL_SHARE = 0.25


class AutoscaleController:
    """Poll a :class:`~repro.service.sharding.ShardSupervisor`, scale replicas.

    The controller owns one daemon thread between :meth:`start` and
    :meth:`stop`; :meth:`tick` is public so tests and benchmarks can step
    the control loop deterministically without waiting on wall clock.
    """

    def __init__(
        self,
        supervisor,
        min_replicas: int = 0,
        max_replicas: int = 4,
        interval_s: float = 2.0,
        hot_share: float = DEFAULT_HOT_SHARE,
        cool_share: float = DEFAULT_COOL_SHARE,
    ) -> None:
        if min_replicas < 0:
            raise ValueError(f"min_replicas must be >= 0, got {min_replicas}")
        if max_replicas < min_replicas:
            raise ValueError(
                f"max_replicas must be >= min_replicas ({min_replicas}), "
                f"got {max_replicas}"
            )
        if not interval_s > 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s!r}")
        if not 0.0 < hot_share <= 1.0:
            raise ValueError(f"hot_share must be in (0, 1], got {hot_share!r}")
        if not 0.0 <= cool_share < hot_share:
            raise ValueError(
                f"cool_share must be in [0, hot_share), got {cool_share!r}"
            )
        self.supervisor = supervisor
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.interval_s = interval_s
        self.hot_share = hot_share
        self.cool_share = cool_share
        #: Monotonic counters for introspection (benchmarks, tests).
        self.ticks = 0
        self.errors = 0
        self._last_admitted: Dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "AutoscaleController":
        """Start the polling thread (idempotent while running)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-autoscale", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float | None = 10.0) -> None:
        """Stop the polling thread and join it (idempotent)."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=timeout)

    def __enter__(self) -> "AutoscaleController":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.tick()
            except ServiceClosedError:
                break
            except Exception:
                # A transient bad tick (owner mid-commit, replica racing
                # its own death) must not kill the control loop; the next
                # interval re-reads ground truth from /stats.
                self.errors += 1

    # -- one control step ------------------------------------------------------

    def tick(self) -> Dict[str, object]:
        """One control step; returns the actions taken (for tests/benches).

        Reads the supervisor's stats, computes per-tenant read share over
        the window since the previous tick, heals dead replicas, then
        applies at most one scaling step per tenant.
        """
        self.ticks += 1
        actions: Dict[str, object] = {"respawned": {}, "added": [], "retired": []}
        stats = self.supervisor.stats()
        admitted = self._admitted_per_tenant(stats)
        deltas = {
            name: max(0, count - self._last_admitted.get(name, 0))
            for name, count in admitted.items()
        }
        self._last_admitted = admitted
        total = sum(deltas.values())
        for name in self.supervisor.tenant_names():
            if self.supervisor.replica_count(name):
                respawned = self.supervisor.respawn_dead_replicas(name)
                if respawned:
                    actions["respawned"][name] = respawned  # type: ignore[index]
        for name in self.supervisor.tenant_names():
            configured = self.supervisor.replica_count(name)
            if configured < self.min_replicas:
                self.supervisor.add_replica(name)
                actions["added"].append(name)  # type: ignore[union-attr]
                continue
            share = deltas.get(name, 0) / total if total else 0.0
            if total and share >= self.hot_share and configured < self.max_replicas:
                self.supervisor.add_replica(name)
                actions["added"].append(name)  # type: ignore[union-attr]
            elif configured > self.min_replicas and share <= self.cool_share:
                self.supervisor.retire_replica(name)
                actions["retired"].append(name)  # type: ignore[union-attr]
        return actions

    @staticmethod
    def _admitted_per_tenant(stats: Dict) -> Dict[str, int]:
        """Admitted-read counters per tenant from a router stats payload."""
        counts: Dict[str, int] = {}
        for shard in (stats.get("shards") or {}).values():
            for name, tenant in shard.get("per_tenant", {}).items():
                counts[name] = counts.get(name, 0) + int(tenant.get("admitted", 0))
        return counts


__all__: List[str] = ["AutoscaleController", "DEFAULT_COOL_SHARE", "DEFAULT_HOT_SHARE"]
