"""The versioned response cache: whole-response memoisation with singleflight.

Every serving topology recomputes a recommendation from scratch per
request: the :class:`~repro.service.admission.AdmissionQueue` coalesces
only *concurrent* requests, so a steady-state population re-asking for the
same ``(tenant, version pair, user, k)`` pays the full score + diversify +
explain + JSON-serialise cost every time.  The substrate's core invariant
-- responses over committed version pairs are **bit-identical and
deterministic** -- makes whole-response memoisation a pure win, so
:class:`ResponseCache` stores the *fully serialised response bytes* (what
the HTTP front-ends would write on the wire) and hands them back without
touching the engine.

Why the design is this simple:

* **No TTL, ever.**  Committed versions are immutable and the cache key
  pins the exact ``(old_id, new_id)`` pair resolved at admission time (the
  same snapshot the request would score).  A cached body can therefore
  never go stale: a commit moves the *head pair*, which changes the key of
  subsequent head-pair requests, it never changes what an existing key
  means.  Entries leave the cache only by LRU pressure or tenant eviction.
* **Population epoch, not scanning.**  User profiles and feedback *can*
  change responses (they feed the relatedness scorer and the novelty
  history), so every user/feedback mutation routed through the registry's
  ``on_population_change`` seam bumps a per-tenant *epoch* that is folded
  into the key.  A bump makes every prior entry of that tenant unreachable
  in O(1) -- no scan, no per-entry bookkeeping; the orphaned entries age
  out under normal LRU pressure.
* **Singleflight fills.**  A miss installs an in-flight marker; concurrent
  (and repeated, until the fill lands) misses on the same key attach to
  that one computation instead of duplicating it -- the admission queue's
  coalescing idea extended across time.  The leader's failure propagates
  to the waiters (no retry stampede); only the leader counts as a *miss*,
  waiters count as ``singleflight_waits``, so the miss counter is exactly
  the number of engine-filling computations -- the hardware-independent
  signal the regression gate asserts on.
* **Process-local by construction.**  Keys are immutable facts (committed
  version ids, an epoch owned by the same process that mutates the
  population), so shard and replica processes each run their own cache
  with no cross-process coherence protocol; a router/shard split simply
  caches where the computation happens.

The cache is byte-budgeted (``max_bytes``) and entry-budgeted
(``max_entries``); zero means unbounded on that axis, and the serving
layer only constructs a cache when at least one budget is set.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Callable, Dict, NamedTuple, Optional, Tuple


def make_etag(body: bytes) -> str:
    """The strong ETag for a response body: quoted SHA-256 of the bytes.

    Strong (no ``W/`` prefix) because cached bodies are bit-identical by
    construction; two equal tags mean byte-for-byte equal payloads, which
    is exactly what ``If-None-Match`` revalidation needs.
    """
    return f'"{hashlib.sha256(body).hexdigest()}"'


class CachedResponse(NamedTuple):
    """One serving result, wire-ready.

    ``body`` is the exact UTF-8 JSON the HTTP front-ends write (both
    serialise with a bare ``json.dumps``), ``etag`` its strong validator,
    ``package`` the live object for Python-API callers, and ``hit`` is
    True when the response came from the cache (including attaching to
    another request's in-flight fill) rather than a fresh computation.
    """

    body: bytes
    etag: str
    package: object
    hit: bool


class _Fill:
    """One in-flight singleflight computation.

    Followers register callbacks (never block inside the cache); the
    blocking service path turns its callback into a Future wait.
    """

    __slots__ = ("done", "response", "error", "callbacks")

    def __init__(self) -> None:
        self.done = False
        self.response: Optional[CachedResponse] = None
        self.error: Optional[BaseException] = None
        self.callbacks: list = []


class FillTicket:
    """A claim on one cache miss (see :meth:`ResponseCache.begin`).

    A **leader** ticket owns the computation: exactly one exists per key
    at a time, and the leader must end it with :meth:`commit` (publish the
    serialised body, wake the followers) or :meth:`abort` (propagate its
    failure to them -- no retry stampede; the next request after an abort
    leads a fresh fill).  A **follower** ticket carries no obligation;
    :meth:`on_done` delivers the leader's outcome, immediately if it
    already landed.  Nothing here blocks, so event-loop-style callers (the
    shard worker's recv loop) use the same singleflight as threads.
    """

    __slots__ = ("_cache", "_key", "_fill", "leader")

    def __init__(
        self, cache: "ResponseCache", key: Tuple, fill: "_Fill", leader: bool
    ) -> None:
        self._cache = cache
        self._key = key
        self._fill = fill
        self.leader = leader

    def commit(self, body: bytes, package: object) -> CachedResponse:
        """Publish the computed response (leader only) -> the leader's view."""
        assert self.leader, "only the fill leader may commit"
        return self._cache._commit_fill(self._key, self._fill, body, package)

    def abort(self, error: BaseException) -> None:
        """Propagate the leader's failure to every follower (leader only)."""
        assert self.leader, "only the fill leader may abort"
        self._cache._abort_fill(self._key, self._fill, error)

    def on_done(self, callback: Callable[[Optional[CachedResponse], Optional[BaseException]], None]) -> None:
        """Run ``callback(response, error)`` when the fill lands.

        Exactly one of the two arguments is None; a follower's
        ``response.hit`` is True (the work was the leader's).
        """
        self._cache._on_fill_done(self._fill, callback)


class _Entry:
    __slots__ = ("tenant", "body", "etag", "package")

    def __init__(self, tenant: str, body: bytes, etag: str, package: object) -> None:
        self.tenant = tenant
        self.body = body
        self.etag = etag
        self.package = package


class _TenantCacheCounters:
    __slots__ = ("hits", "misses", "evictions", "entries", "bytes", "singleflight_waits")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.entries = 0
        self.bytes = 0
        self.singleflight_waits = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "bytes": self.bytes,
            "singleflight_waits": self.singleflight_waits,
        }


class ResponseCache:
    """Bounded, byte-budgeted LRU of fully serialised responses.

    ``max_entries`` / ``max_bytes`` bound the cache globally (zero =
    unbounded on that axis); accounting and the ops counters are kept per
    tenant.  All public methods are thread-safe; the lock is never held
    across a fill computation.
    """

    def __init__(self, max_entries: int = 0, max_bytes: int = 0) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, _Entry]" = OrderedDict()
        self._inflight: Dict[Tuple, _Fill] = {}
        self._epochs: Dict[str, int] = {}
        self._counters: Dict[str, _TenantCacheCounters] = {}
        self._bytes = 0

    # -- epochs (population invalidation) -----------------------------------------

    def epoch(self, tenant: str) -> int:
        """The tenant's current population epoch (0 until first bump)."""
        with self._lock:
            return self._epochs.get(tenant, 0)

    def bump_epoch(self, tenant: str) -> int:
        """Invalidate the tenant's entries in O(1): change what keys mean.

        Prior entries stay resident (counted in ``entries``/``bytes``)
        until LRU pressure reclaims them, but no future lookup can reach
        them -- the epoch is part of every key.
        """
        with self._lock:
            epoch = self._epochs.get(tenant, 0) + 1
            self._epochs[tenant] = epoch
            return epoch

    # -- the read path -------------------------------------------------------------

    def begin(
        self, tenant: str, old_id: str, new_id: str, user_id: str, k: int
    ) -> "CachedResponse | FillTicket":
        """One non-blocking cache consultation.

        Returns a :class:`CachedResponse` on a hit.  On a miss, returns a
        :class:`FillTicket`: a *leader* ticket (``ticket.leader`` is True,
        counted as a **miss**) obliges the caller to compute the response
        and call :meth:`FillTicket.commit` / :meth:`FillTicket.abort`; a
        *follower* ticket (counted as a **singleflight_wait**) attaches to
        the in-flight leader via :meth:`FillTicket.on_done`.  Only leaders
        count as misses, so the miss counter is exactly the number of
        engine-filling computations -- the hardware-independent signal the
        regression gate asserts on.

        The key (including the population epoch) is pinned *here*: a
        mutation racing the fill bumps the epoch, so the eventual commit
        lands under the pre-mutation key and is simply never read again.
        """
        with self._lock:
            key = (tenant, old_id, new_id, (user_id, self._epochs.get(tenant, 0)), k)
            counters = self._counters.setdefault(tenant, _TenantCacheCounters())
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                counters.hits += 1
                return CachedResponse(entry.body, entry.etag, entry.package, True)
            fill = self._inflight.get(key)
            if fill is None:
                fill = _Fill()
                self._inflight[key] = fill
                counters.misses += 1
                return FillTicket(self, key, fill, leader=True)
            counters.singleflight_waits += 1
            return FillTicket(self, key, fill, leader=False)

    def _commit_fill(self, key: Tuple, fill: _Fill, body: bytes, package: object) -> CachedResponse:
        etag = make_etag(body)
        response = CachedResponse(body, etag, package, False)
        with self._lock:
            self._inflight.pop(key, None)
            self._insert_locked(key, _Entry(key[0], body, etag, package))
            fill.response = response
            fill.done = True
            callbacks, fill.callbacks = fill.callbacks, []
        follower = CachedResponse(body, etag, package, True)
        for callback in callbacks:
            callback(follower, None)
        return response

    def _abort_fill(self, key: Tuple, fill: _Fill, error: BaseException) -> None:
        with self._lock:
            self._inflight.pop(key, None)
            fill.error = error
            fill.done = True
            callbacks, fill.callbacks = fill.callbacks, []
        for callback in callbacks:
            callback(None, error)

    def _on_fill_done(self, fill: _Fill, callback) -> None:
        with self._lock:
            if not fill.done:
                fill.callbacks.append(callback)
                return
            response, error = fill.response, fill.error
        if error is not None:
            callback(None, error)
        else:
            assert response is not None
            callback(
                CachedResponse(response.body, response.etag, response.package, True),
                None,
            )

    def _insert_locked(self, key: Tuple, entry: _Entry) -> None:
        size = len(entry.body)
        if self.max_bytes and size > self.max_bytes:
            return  # an entry bigger than the whole budget is never cached
        old = self._entries.pop(key, None)
        if old is not None:  # same key re-filled (epoch race): replace in place
            self._account_remove(old)
        self._entries[key] = entry
        self._bytes += size
        counters = self._counters.setdefault(entry.tenant, _TenantCacheCounters())
        counters.entries += 1
        counters.bytes += size
        while self._entries and (
            (self.max_entries and len(self._entries) > self.max_entries)
            or (self.max_bytes and self._bytes > self.max_bytes)
        ):
            _, evicted = self._entries.popitem(last=False)
            self._account_remove(evicted)
            victim = self._counters.setdefault(evicted.tenant, _TenantCacheCounters())
            victim.evictions += 1

    def _account_remove(self, entry: _Entry) -> None:
        size = len(entry.body)
        self._bytes -= size
        counters = self._counters.get(entry.tenant)
        if counters is not None:
            counters.entries -= 1
            counters.bytes -= size

    # -- tenant lifecycle ----------------------------------------------------------

    def forget_tenant(self, tenant: str) -> None:
        """Drop a tenant's entries, counters and epoch (registry eviction).

        A re-registered name is a *new* tenant: its counters must start at
        zero and nothing cached for the old population may survive, even
        if the new knowledge base reuses version ids.
        """
        with self._lock:
            for key in [k for k, e in self._entries.items() if e.tenant == tenant]:
                entry = self._entries.pop(key)
                self._bytes -= len(entry.body)
            self._counters.pop(tenant, None)
            self._epochs.pop(tenant, None)

    # -- introspection ---------------------------------------------------------------

    def stats(self, tenant: str) -> Dict[str, int]:
        """The tenant's ``/stats`` cache block (zeros if never touched)."""
        with self._lock:
            counters = self._counters.get(tenant)
            if counters is None:
                return _TenantCacheCounters().snapshot()
            return counters.snapshot()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Bytes of body currently resident, across all tenants."""
        with self._lock:
            return self._bytes
