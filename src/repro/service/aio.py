"""The asyncio front-end: same JSON API, event-loop connection handling.

The threaded front-end (:mod:`repro.service.http`) spends one OS thread
per *connection* -- fine for a handful of busy clients, ruinous for a
fleet of mostly-idle keep-alive connections (dashboards, health checkers,
connection pools sized for peak): a thousand idle sockets cost a thousand
stacks before the first request arrives.  :class:`AsyncServiceServer`
serves the identical endpoints from a single event-loop thread, so an
idle connection costs one socket and a parser coroutine, nothing more.

The split of labour is deliberate:

* **Connection handling is async.**  Accepting, parsing, keep-alive
  waiting and response writing all run on the event loop; ten thousand
  idle connections are ten thousand paused coroutines.
* **Scoring stays on the admission queue's worker threads.**  The loop
  never scores: ``/recommend`` admits through the same
  :meth:`~repro.service.service.RecommendationService.recommend_async`
  as every other caller and bridges the returned
  ``concurrent.futures.Future`` onto the loop with
  :func:`asyncio.wrap_future` -- so async and threaded traffic coalesce
  into the *same* batches and produce byte-identical JSON (the
  regression gate asserts exactly that).  ``/commit`` parses N-Triples
  and commits in the default executor for the same reason: a large
  curator upload must not stall every other connection's parser.

On top of the mirrored API sits the ops plane only an event loop can
afford:

``GET /events``
    a Server-Sent Events stream (``text/event-stream``) publishing the
    frozen ``/stats`` payload every ``interval`` seconds as an
    ``event: stats`` frame (the SSE ``id:`` is the tick sequence
    number), plus an ``event: alerts`` frame on ticks where the
    configured thresholds fire.  ``?interval=`` overrides the cadence
    per subscriber; ``?count=`` ends the stream after that many ticks
    (handy for curl and tests).  One subscriber costs one coroutine --
    the threaded server refuses this endpoint precisely because there
    it would cost a thread.
``GET /alerts``
    one-shot threshold evaluation
    (:func:`repro.service.metrics.evaluate_alerts`), identical to the
    threaded front-end's.

Shutdown closes the listener, then every live connection; in-flight
admitted requests still resolve (the admission queue drains on service
close, not server close).
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.service.http import (
    etag_matches,
    handle_commit,
    map_error,
    parse_recommend_payload,
)
from repro.service.metrics import AlertThresholds, evaluate_alerts
from repro.service.service import RecommendationService

#: Reason phrases for the handful of statuses this front-end emits.
_REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Hard ceiling on one request head (request line + headers).  Matches the
#: stdlib ``http.server`` order of magnitude; a client that sends more is
#: answered 400 and disconnected.
_MAX_HEADER_BYTES = 65536


def sse_frame(event: str, seq: int, payload: Dict) -> bytes:
    """One Server-Sent Events frame: ``event``/``id``/``data`` + blank line.

    ``data`` is a single line because the payload is compact JSON (no
    embedded newlines by construction); the trailing blank line is the
    frame boundary the SSE grammar requires.
    """
    body = json.dumps(payload)
    return f"event: {event}\nid: {seq}\ndata: {body}\n\n".encode("utf-8")


class AsyncServiceServer:
    """Single-event-loop HTTP front-end over a :class:`RecommendationService`.

    Speaks the threaded front-end's exact JSON API (``/health``,
    ``/tenants``, ``/stats``, ``/alerts``, ``/recommend``, ``/commit``)
    plus the SSE ``/events`` stream.  Construct, ``await start()``, then
    ``await serve_forever()`` -- or use :class:`AsyncServerThread` to run
    it next to synchronous code (the CLI, the tests, the benchmark).

    ``max_connections`` bounds simultaneous open connections (the async
    analogue of the thread budget): connection ``max_connections + 1``
    is answered 503 and closed instead of degrading everyone.
    """

    def __init__(
        self,
        service: RecommendationService,
        host: str = "127.0.0.1",
        port: int = 0,
        thresholds: Optional[AlertThresholds] = None,
        events_interval: float = 1.0,
        max_connections: int = 4096,
    ) -> None:
        if not math.isfinite(events_interval) or events_interval <= 0:
            raise ValueError(f"events_interval must be > 0, got {events_interval}")
        if max_connections < 1:
            raise ValueError(f"max_connections must be >= 1, got {max_connections}")
        self.service = service
        self.host = host
        self.port = port
        self.thresholds = thresholds or AlertThresholds()
        self.events_interval = events_interval
        self.max_connections = max_connections
        self.address: Tuple[str, int] = (host, port)
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: "set[asyncio.StreamWriter]" = set()

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting (port 0 = ephemeral); returns the address."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def serve_forever(self) -> None:
        """Serve until cancelled or :meth:`close`\\ d."""
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def close(self) -> None:
        """Stop accepting, then close every live connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()

    @property
    def connections(self) -> int:
        """Currently open connections (the ops plane's C10K gauge)."""
        return len(self._writers)

    # -- connection loop ---------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if len(self._writers) >= self.max_connections:
            writer.write(
                self._response(503, {"error": "connection limit reached"}, close=True)
            )
            with _swallow_disconnect():
                await writer.drain()
            writer.close()
            return
        self._writers.add(writer)
        try:
            with _swallow_disconnect():
                while await self._handle_one(reader, writer):
                    pass
        except asyncio.CancelledError:
            # Loop shutdown cancels connection tasks parked on readline;
            # completing normally here (instead of staying "cancelled")
            # keeps the stream protocol's done-callback from re-raising
            # into the event loop's exception handler.
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request on a keep-alive connection.

        Returns True to keep the connection open for the next request.
        An idle connection parks here on ``readline`` indefinitely -- that
        wait *is* the cheap idle keep-alive the front-end exists for.
        """
        try:
            request_line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            writer.write(self._response(400, {"error": "request line too long"}, close=True))
            await writer.drain()
            return False
        if not request_line:
            return False  # client closed the idle connection
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            writer.write(self._response(400, {"error": "malformed request line"}, close=True))
            await writer.drain()
            return False
        method, target, _version = parts

        headers: Dict[str, str] = {}
        head_bytes = len(request_line)
        while True:
            line = await reader.readline()
            head_bytes += len(line)
            if head_bytes > _MAX_HEADER_BYTES:
                writer.write(self._response(400, {"error": "headers too large"}, close=True))
                await writer.drain()
                return False
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

        keep_alive = headers.get("connection", "").lower() != "close"

        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
                if n < 0:
                    raise ValueError
            except ValueError:
                writer.write(self._response(400, {"error": "bad Content-Length"}, close=True))
                await writer.drain()
                return False
            if n:
                try:
                    body = await reader.readexactly(n)
                except asyncio.IncompleteReadError:
                    return False  # client died mid-body

        split = urlsplit(target)
        path, query = split.path, split.query

        if method == "GET" and path == "/events":
            await self._stream_events(writer, query)
            return False  # the stream owns the connection until it ends
        if method == "POST" and path == "/recommend":
            # Handled outside _dispatch: the read path needs the request
            # headers (If-None-Match) and writes pre-encoded cached bytes
            # instead of re-serialising a dict.
            writer.write(
                await self._recommend_raw(body, headers, close=not keep_alive)
            )
            await writer.drain()
            return keep_alive
        status, payload = await self._dispatch(method, path, body)
        writer.write(self._response(status, payload, close=not keep_alive))
        await writer.drain()
        return keep_alive

    # -- routing ------------------------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes) -> Tuple[int, Dict]:
        """Route one plain (non-SSE) request -> ``(status, JSON payload)``."""
        service = self.service
        try:
            if method == "GET":
                if path == "/health":
                    return 200, {"status": "ok", "tenants": len(service.registry)}
                if path == "/tenants":
                    return 200, {"tenants": service.tenants()}
                if path == "/stats":
                    return 200, service.stats()
                if path == "/alerts":
                    return 200, evaluate_alerts(service.stats(), self.thresholds)
                return 404, {"error": f"unknown path: {path}"}
            if method == "POST":
                if path == "/commit":
                    return 200, await self._commit(self._decode_body(body))
                return 404, {"error": f"unknown path: {path}"}
            return 404, {"error": f"unsupported method: {method}"}
        except Exception as exc:  # same taxonomy as the threaded front-end
            status, message = map_error(exc)
            return status, {"error": message}

    @staticmethod
    def _decode_body(body: bytes) -> Dict:
        if not body:
            raise ValueError("request body must be a JSON object")
        payload = json.loads(body.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    async def _recommend_raw(
        self, body: bytes, headers: Dict[str, str], close: bool
    ) -> bytes:
        """One ``/recommend`` -> complete wire bytes (200, 304 or error).

        :func:`asyncio.wrap_future` is the whole bridge: the admission
        workers (or a cache hit, immediately) resolve the
        ``concurrent.futures.Future`` from their threads and the loop
        wakes this coroutine.  ``wait_for`` applies the same
        ``request_timeout_s`` deadline as the blocking path; on timeout
        it cancels the wrapped future (which both the queue and the
        cache's fill path tolerate) and the shared error mapping turns it
        into the same 504.  The 200 body is the cached pre-encoded bytes
        with their strong ``ETag``; an ``If-None-Match`` match answers
        304 with no body -- byte-identical semantics to the threaded
        front-end.
        """
        try:
            tenant, user, k, old, new = parse_recommend_payload(self._decode_body(body))
            future = self.service.recommend_cached_async(
                tenant, user, k=k, old_id=old, new_id=new
            )
            response = await asyncio.wait_for(
                asyncio.wrap_future(future),
                timeout=self.service.config.request_timeout_s,
            )
        except Exception as exc:
            status, message = map_error(exc)
            return self._response(status, {"error": message}, close=close)
        if etag_matches(headers.get("if-none-match"), response.etag):
            return self._raw_response(304, b"", response.etag, close)
        return self._raw_response(200, response.body, response.etag, close)

    async def _commit(self, payload: Dict) -> Dict:
        """Parse + commit off-loop: N-Triples parsing is CPU-bound and the
        commit itself takes the tenant write lock -- neither may stall the
        event loop, so the whole threaded-front-end handler runs in the
        default executor and the loop just awaits it."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, handle_commit, self.service, payload)

    # -- SSE ----------------------------------------------------------------------

    async def _stream_events(self, writer: asyncio.StreamWriter, query: str) -> None:
        """Publish ``event: stats`` frames (and ``event: alerts`` when firing).

        Ends when the subscriber disconnects or after ``?count=`` ticks;
        a mid-stream disconnect is an expected outcome, not an error --
        the connection is simply reclaimed.
        """
        params = parse_qs(query)
        try:
            interval = float(params["interval"][0]) if "interval" in params else self.events_interval
            count = int(params["count"][0]) if "count" in params else None
            if not math.isfinite(interval) or interval <= 0:
                raise ValueError
            if count is not None and count < 1:
                raise ValueError
        except (ValueError, TypeError):
            writer.write(
                self._response(
                    400,
                    {"error": "interval must be > 0 and count a positive integer"},
                    close=True,
                )
            )
            await writer.drain()
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        seq = 0
        while count is None or seq < count:
            stats = self.service.stats()
            frame = sse_frame("stats", seq, stats)
            alerts = evaluate_alerts(stats, self.thresholds)
            if alerts["status"] == "alerting":
                frame += sse_frame("alerts", seq, alerts)
            writer.write(frame)
            await writer.drain()
            seq += 1
            if count is not None and seq >= count:
                break
            await asyncio.sleep(interval)

    # -- response plumbing ---------------------------------------------------------

    @staticmethod
    def _raw_response(status: int, body: bytes, etag: str, close: bool = False) -> bytes:
        """Pre-encoded response bytes + strong ETag (200 hit / 304 revalidation)."""
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"ETag: {etag}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{'Connection: close' + chr(13) + chr(10) if close else ''}"
            "\r\n"
        ).encode("latin-1")
        return head + body

    @staticmethod
    def _response(status: int, payload: Dict, close: bool = False) -> bytes:
        """Serialise one JSON response (``json.dumps`` exactly as the
        threaded front-end does, so bodies are byte-identical)."""
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{'Connection: close' + chr(13) + chr(10) if close else ''}"
            "\r\n"
        ).encode("latin-1")
        return head + body


class _swallow_disconnect:
    """Context manager treating peer-reset/broken-pipe as a normal close."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return exc_type is not None and issubclass(
            exc_type, (ConnectionError, BrokenPipeError, TimeoutError)
        )


class AsyncServerThread:
    """Run an :class:`AsyncServiceServer` on a dedicated event-loop thread.

    The seam between the async front-end and synchronous callers: the
    tests, the benchmark and anything embedding the server next to
    blocking code use this instead of owning a loop.  (The CLI's
    ``serve --async`` runs the loop in the *main* thread instead -- see
    ``repro.cli``.)

    One background thread runs ``asyncio.run`` around the server;
    :meth:`start` blocks until the listener is bound and returns the
    address; :meth:`stop` shuts the loop down and joins the thread.
    Usable as a context manager.
    """

    def __init__(self, service: RecommendationService, **kwargs) -> None:
        self._service = service
        self._kwargs = kwargs
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self.server: Optional[AsyncServiceServer] = None
        self.address: Optional[Tuple[str, int]] = None

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-aio-server",
            daemon=True,
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("async server did not start within 30s")
        if self._startup_error is not None:
            raise RuntimeError("async server failed to start") from self._startup_error
        assert self.address is not None
        return self.address

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.server = AsyncServiceServer(self._service, **self._kwargs)
        try:
            self.address = await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        await self._stop_event.wait()
        await self.server.close()

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout=10)

    def __enter__(self) -> "AsyncServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
