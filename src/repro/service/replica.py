"""Zero-copy read replicas: scale one hot tenant's reads across cores.

The sharded plane (:mod:`repro.service.sharding`) pins each tenant to
exactly one process, so a single viral tenant is capped at one core no
matter how many shards run.  This module is the read-side escape hatch:

* the supervisor publishes the tenant's store payload -- the exact
  ``(base, log)`` bytes a :class:`~repro.io.store.BinaryKBStore` holds on
  disk, packed by :func:`repro.kb.wire.pack_store_payload_into` -- into
  **one** ``multiprocessing.shared_memory`` segment;
* the owning shard *and* every replica attach to that segment and decode
  it lazily (:func:`repro.io.store.decode_store_payload` over sub-views
  of the segment) -- no pickling, no N-Triples re-parse, and no
  per-process serialized copy of the snapshot travelling through spawn
  pipes;
* replicas are **read-only**: commits keep their single owner, and the
  supervisor bumps each replica with the O(delta) commit record
  (``repro.kb.wire.encode_commit``, the ``commits.rpl`` format) the owner
  produced, applied atomically under the tenant write lock via
  ``commit_recorded`` -- so a replica's chain stays bit-identical to the
  owner's, term ids included.

The segment is unlinked by the supervisor as soon as every process has
attached: POSIX keeps the mapping alive for attached processes, so even a
``SIGKILL``'d topology leaves nothing behind in ``/dev/shm``.

A replica process speaks the same ``(op, request_id, payload)`` pipe
protocol as a shard (one duplex pipe, future-multiplexed), with two
differences: commit ops are rejected (read-only), and the extra
``apply_record`` op applies a forwarded commit record *inline on the
receive loop* -- pipe order is the cutover order, so any read the
supervisor routes here after a commit returned is admitted on a
generation >= that commit's.
"""

from __future__ import annotations

import json
import threading
from multiprocessing import shared_memory
from typing import Optional

from repro.io.storage import feedback_from_dicts, package_to_dict, users_from_dicts
from repro.io.store import decode_store_payload
from repro.kb import wire
from repro.service.errors import ServiceError, error_message as _error_message
from repro.service.service import RecommendationService, ServiceConfig


# -- shared-memory plumbing ---------------------------------------------------------


def create_shared_payload(kb_payload) -> shared_memory.SharedMemory:
    """Publish a tenant's kb payload into a fresh shared-memory segment.

    ``kb_payload`` is either one ``encode_kb`` buffer or a store's raw
    ``(base, log)`` pair; either way it is packed in place as one framed
    :func:`repro.kb.wire.pack_store_payload_into` container.  The caller
    owns the returned segment and must ``close()`` + ``unlink()`` it once
    every consumer has attached.
    """
    if isinstance(kb_payload, tuple):
        base, log = kb_payload
    else:
        base, log = kb_payload, b""
    size = wire.store_payload_size(len(base), len(log))
    segment = shared_memory.SharedMemory(create=True, size=size)
    wire.pack_store_payload_into(segment.buf, base, log)
    return segment


def attach_shared_payload(name: str) -> shared_memory.SharedMemory:
    """Attach to a published segment without registering as its owner.

    On CPython < 3.13 ``SharedMemory`` has no ``track`` parameter and the
    attaching process registers the segment with its *own* resource
    tracker, which would destroy (and warn about) a segment the
    supervisor still owns when this process exits.  Suppressing the
    registration during attach keeps the single-owner story: the
    supervisor created it, the supervisor unlinks it.  (Unregistering
    *after* attach is racy: several attachers feed the same shared
    tracker process, and the second unregister KeyErrors in it.)
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        from multiprocessing import resource_tracker

        # shared_memory.py reads the tracker as a module attribute, so a
        # scoped no-op swap cleanly skips the registration call.
        real_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = real_register


def decode_shared_payload(segment_name: str):
    """Attach to a segment, lazily decode the chain out of it, detach.

    The decode path reads term tables and key arrays through sub-views of
    the segment (``wire._Reader`` slices any bytes-like buffer) and copies
    what it keeps into process-local structures, so the mapping can close
    as soon as the chain is built: zero-copy bootstrap, no lingering
    reference into shared memory.
    """
    segment = attach_shared_payload(segment_name)
    try:
        base, log = wire.unpack_store_payload(segment.buf)
        try:
            kb = decode_store_payload(base, log)
        finally:
            if isinstance(base, memoryview):
                base.release()
            if isinstance(log, memoryview):
                log.release()
    finally:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - stray decode view
            pass
    return kb


def destroy_segment(segment: shared_memory.SharedMemory) -> None:
    """Close and unlink a segment the caller created (tolerates races)."""
    try:
        segment.close()
    except BufferError:  # pragma: no cover - a view of .buf still exported
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


# -- replica worker process ---------------------------------------------------------


def _replica_main(
    conn,
    tenant_name: str,
    replica_index: int,
    segment_name: str,
    config: ServiceConfig,
    users_bytes: bytes,
    feedback_bytes: Optional[bytes],
) -> None:
    """Entry point of one replica process (module-level: spawn-picklable).

    Same protocol as ``_shard_main``: ``(op, request_id, payload)`` in,
    ``(request_id, "ok", result)`` / ``(request_id, "error", kind,
    message)`` out, first message ``("ready", replica_index, [tenant])``.
    ``recommend`` answers asynchronously off the admission queue;
    ``apply_record`` runs inline on the receive loop so reads admitted
    after a record always score the post-record head.
    """
    # Deferred imports mirror _shard_main: http/sharding import this
    # module's supervisor-side helpers, so top-level imports would cycle.
    from repro.service.http import parse_recommend_payload
    from repro.service.sharding import _error_kind

    service = RecommendationService(config)
    send_lock = threading.Lock()

    def send(message: tuple) -> None:
        with send_lock:
            try:
                conn.send(message)
            except (OSError, ValueError, BrokenPipeError):  # parent is gone
                pass

    try:
        kb = decode_shared_payload(segment_name)
        users = users_from_dicts(json.loads(users_bytes.decode("utf-8")))
        feedback = (
            feedback_from_dicts(json.loads(feedback_bytes.decode("utf-8")))
            if feedback_bytes is not None
            else None
        )
        tenant = service.add_tenant(tenant_name, kb, users, feedback)
        dictionary = kb.first().graph.dictionary if len(kb) else None
    except BaseException as exc:
        send(("failed", replica_index, _error_kind(exc), _error_message(exc)))
        service.close()
        return
    send(("ready", replica_index, [tenant_name]))

    def handle(op: str, request_id: int, payload) -> None:
        if op == "recommend":
            name, user, k, old, new = parse_recommend_payload(payload)
            future = service.recommend_async(name, user, k, old, new)

            def _done(f, request_id=request_id):
                try:
                    send((request_id, "ok", package_to_dict(f.result())))
                except BaseException as exc:
                    send((request_id, "error", _error_kind(exc), _error_message(exc)))

            future.add_done_callback(_done)
        elif op == "apply_record":
            # The generation bump.  Under the tenant write lock the
            # decoded delta lands via commit_recorded -- O(delta), with
            # the dictionary growing by exactly the record's term range,
            # so replica term ids track the owner's forever.  Running
            # inline (not on a thread) makes pipe order the commit order:
            # a recommend the supervisor sends after this record cannot
            # be admitted on the pre-record head.
            with tenant.write_lock:
                version_id, metadata, added, deleted = wire.decode_commit(
                    payload["record"], dictionary
                )
                tenant.kb.commit_recorded(
                    added=added, deleted=deleted,
                    version_id=version_id, metadata=metadata,
                )
                generation = len(tenant.kb)
            send((request_id, "ok", {"generation": generation, "version_id": version_id}))
        elif op in ("commit", "commit_delta"):
            raise ServiceError(
                f"replica {replica_index} of tenant {tenant_name!r} is "
                "read-only; commits route to the owning shard"
            )
        elif op == "stats":
            send((request_id, "ok", service.stats()))
        elif op == "tenants":
            send((request_id, "ok", service.tenants()))
        elif op == "health":
            send(
                (
                    request_id,
                    "ok",
                    {"status": "ok", "replica": replica_index,
                     "tenant": tenant_name, "generation": len(tenant.kb)},
                )
            )
        else:
            raise ValueError(f"unknown replica op: {op!r}")

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            op, request_id, payload = message
            if op == "shutdown":
                send((request_id, "ok", {"replica": replica_index}))
                break
            try:
                handle(op, request_id, payload)
            except BaseException as exc:
                send((request_id, "error", _error_kind(exc), _error_message(exc)))
    finally:
        service.close()
        try:
            conn.close()
        except OSError:
            pass


__all__ = [
    "attach_shared_payload",
    "create_shared_payload",
    "decode_shared_payload",
    "destroy_segment",
]
