"""Zero-copy read replicas: scale one hot tenant's reads across cores.

The sharded plane (:mod:`repro.service.sharding`) pins each tenant to
exactly one process, so a single viral tenant is capped at one core no
matter how many shards run.  This module is the read-side escape hatch:

* the supervisor publishes the tenant's store payload -- the exact
  ``(base, log)`` bytes a :class:`~repro.io.store.BinaryKBStore` holds on
  disk, packed by :func:`repro.kb.wire.pack_store_payload_into` -- into
  **one** ``multiprocessing.shared_memory`` segment;
* the owning shard *and* every replica attach to that segment and decode
  it lazily (:func:`repro.io.store.decode_store_payload` over sub-views
  of the segment) -- no pickling, no N-Triples re-parse, and no
  per-process serialized copy of the snapshot travelling through spawn
  pipes;
* replicas are **read-only**: commits keep their single owner, and the
  supervisor bumps each replica with the O(delta) commit record
  (``repro.kb.wire.encode_commit``, the ``commits.rpl`` format) the owner
  produced, applied atomically under the tenant write lock via
  ``commit_recorded`` -- so a replica's chain stays bit-identical to the
  owner's, term ids included.

The segment is unlinked by the supervisor as soon as every process has
attached: POSIX keeps the mapping alive for attached processes, so even a
``SIGKILL``'d topology leaves nothing behind in ``/dev/shm``.

A replica process speaks the same ``(op, request_id, payload)`` pipe
protocol as a shard (one duplex pipe, future-multiplexed), with two
differences: commit ops are rejected (read-only), and the extra
``apply_record`` op applies a forwarded commit record *inline on the
receive loop* -- pipe order is the cutover order, so any read the
supervisor routes here after a commit returned is admitted on a
generation >= that commit's.
"""

from __future__ import annotations

import json
import threading
from multiprocessing import shared_memory
from typing import Optional

from repro.graphtools.betweenness import normalize_betweenness
from repro.graphtools.incremental import edge_key_set
from repro.io.storage import feedback_from_dicts, package_to_dict, users_from_dicts
from repro.io.store import decode_store_payload
from repro.kb import wire
from repro.kb.errors import VersionError
from repro.measures.semantic import CENTRALITY_KEY, RC_KEY
from repro.measures.structural import (
    BETWEENNESS_KEY,
    EDGE_KEYS_KEY,
    RAW_BETWEENNESS_KEY,
    class_graph,
)
from repro.service.errors import ServiceError, error_message as _error_message
from repro.service.service import RecommendationService, ServiceConfig


# -- shared-memory plumbing ---------------------------------------------------------


def create_shared_payload(kb_payload, artefacts: bytes = b"") -> shared_memory.SharedMemory:
    """Publish a tenant's kb payload into a fresh shared-memory segment.

    ``kb_payload`` is either one ``encode_kb`` buffer or a store's raw
    ``(base, log)`` pair; either way it is packed in place as one framed
    :func:`repro.kb.wire.pack_store_payload_into` container.  A warm
    handoff additionally passes its :func:`repro.kb.wire.encode_artefacts`
    bytes, appended as the container's optional third frame.  The caller
    owns the returned segment and must ``close()`` + ``unlink()`` it once
    every consumer has attached.
    """
    if isinstance(kb_payload, tuple):
        base, log = kb_payload
    else:
        base, log = kb_payload, b""
    size = wire.store_payload_size(len(base), len(log), len(artefacts))
    segment = shared_memory.SharedMemory(create=True, size=size)
    wire.pack_store_payload_into(segment.buf, base, log, artefacts)
    return segment


def attach_shared_payload(name: str) -> shared_memory.SharedMemory:
    """Attach to a published segment without registering as its owner.

    On CPython < 3.13 ``SharedMemory`` has no ``track`` parameter and the
    attaching process registers the segment with its *own* resource
    tracker, which would destroy (and warn about) a segment the
    supervisor still owns when this process exits.  Suppressing the
    registration during attach keeps the single-owner story: the
    supervisor created it, the supervisor unlinks it.  (Unregistering
    *after* attach is racy: several attachers feed the same shared
    tracker process, and the second unregister KeyErrors in it.)
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        from multiprocessing import resource_tracker

        # shared_memory.py reads the tracker as a module attribute, so a
        # scoped no-op swap cleanly skips the registration call.
        real_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = real_register


def decode_shared_payload(segment_name: str, on_attached=None):
    """Attach to a segment, lazily decode the chain out of it, detach.

    The decode path reads term tables and key arrays through sub-views of
    the segment (``wire._Reader`` slices any bytes-like buffer) and copies
    what it keeps into process-local structures, so the mapping can close
    as soon as the chain is built: zero-copy bootstrap, no lingering
    reference into shared memory.

    ``on_attached``, when given, is called as soon as the mapping exists
    (before the decode starts): the publisher may unlink the segment the
    moment every consumer holds a mapping, and a late joiner's decode can
    be slow enough that waiting for it would leave the segment visible in
    ``/dev/shm`` needlessly long.

    When the container carries a warm handoff's artefacts frame
    (:func:`repro.kb.wire.encode_artefacts`), the decoded caches are
    seeded onto the chain's schema views (:func:`seed_artefacts`) so the
    first request served from this chain skips the cold recompute.
    """
    segment = attach_shared_payload(segment_name)
    if on_attached is not None:
        on_attached()
    try:
        base, log, artefact_bytes = wire.unpack_store_payload_full(segment.buf)
        try:
            kb = decode_store_payload(base, log)
            if artefact_bytes is not None and len(kb):
                seed_artefacts(
                    kb,
                    wire.decode_artefacts(
                        artefact_bytes, kb.first().graph.dictionary
                    ),
                )
        finally:
            for part in (base, log, artefact_bytes):
                if isinstance(part, memoryview):
                    part.release()
    finally:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - stray decode view
            pass
    return kb


def destroy_segment(segment: shared_memory.SharedMemory) -> None:
    """Close and unlink a segment the caller created (tolerates races)."""
    try:
        segment.close()
    except BufferError:  # pragma: no cover - a view of .buf still exported
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


# -- warm artefact handoff ----------------------------------------------------------
#
# Bootstrapping a replica from the chain payload alone leaves its per-version
# engine caches cold: the first request pays a full Brandes pass over the
# class graph plus the semantic relative-cardinality/centrality sweep.  All
# of those are deterministic pure functions of the version snapshot, already
# computed and memoised on the owner's SchemaViews -- so a late joiner can
# inherit them byte-for-byte instead of recomputing them.


def collect_artefacts(kb) -> dict:
    """Harvest the warm per-version artefact caches of a serving chain.

    Walks the chain's versions and, for every schema view a request has
    already built (:attr:`repro.kb.version.Version.schema_if_built` --
    compacted or never-touched versions are skipped, never forced), pulls
    the memoised raw betweenness map and the semantic RC / centrality
    caches.  Returns the ``{version_id: entry}`` mapping
    :func:`repro.kb.wire.encode_artefacts` packs.
    """
    artefacts: dict = {}
    for version in kb:
        schema = version.schema_if_built
        if schema is None:
            continue
        memo = schema.memo
        entry: dict = {}
        raw = memo.get(RAW_BETWEENNESS_KEY)
        if raw is not None:
            entry["betweenness"] = dict(raw)
        rc = memo.get(RC_KEY)
        if rc:
            entry["rc"] = dict(rc)
        centrality = memo.get(CENTRALITY_KEY)
        if centrality:
            entry["centrality"] = dict(centrality)
        if entry:
            artefacts[version.version_id] = entry
    return artefacts


def seed_artefacts(kb, artefacts: dict) -> int:
    """Install decoded artefact caches on a chain's schema views.

    The inverse of :func:`collect_artefacts`: for every version named in
    ``artefacts`` that is materialised (the lazy decode warms exactly the
    head pair -- seeding a compacted middle would force the delta replay
    the lazy path exists to avoid), the memo entries a cold build would
    publish are installed up front:

    * ``betweenness`` seeds the raw map plus the ``(class graph,
      normalized map)`` artefact and the edge-key set -- the graph and
      edge keys are rebuilt locally (cheap, deterministic), the Brandes
      pass is what the handoff skips;
    * ``rc`` / ``centrality`` seed the semantic caches as plain dicts,
      exactly the shape ``_seeded_cache`` fills.

    Every seeded value is bit-identical to what the skipped recompute
    would produce: the caches are deterministic functions of the snapshot
    and the wire round-trip preserves float64 bits.  Returns the number
    of versions seeded.
    """
    seeded = 0
    for version_id, entry in artefacts.items():
        try:
            version = kb.version(version_id)
        except VersionError:
            continue  # artefact for a version this chain does not hold
        if not version.is_materialized:
            continue
        memo = version.schema.memo
        raw = entry.get("betweenness")
        if raw is not None and BETWEENNESS_KEY not in memo:
            graph = class_graph(version.schema)
            memo[RAW_BETWEENNESS_KEY] = dict(raw)
            memo[EDGE_KEYS_KEY] = edge_key_set(graph)
            memo[BETWEENNESS_KEY] = (graph, normalize_betweenness(raw, len(graph)))
        rc = entry.get("rc")
        if rc is not None and RC_KEY not in memo:
            memo[RC_KEY] = dict(rc)
        centrality = entry.get("centrality")
        if centrality is not None and CENTRALITY_KEY not in memo:
            memo[CENTRALITY_KEY] = dict(centrality)
        seeded += 1
    return seeded


def encode_tenant_artefacts(kb) -> bytes:
    """The wire bytes of :func:`collect_artefacts`, or ``b""`` when cold.

    Convenience for publishers: harvest + encode against the chain
    dictionary in one call, returning empty bytes when no view has warmed
    yet (the store container simply omits its artefacts frame then).
    """
    artefacts = collect_artefacts(kb)
    if not artefacts or not len(kb):
        return b""
    return wire.encode_artefacts(artefacts, kb.first().graph.dictionary)


# -- replica worker process ---------------------------------------------------------


def _replica_main(
    conn,
    tenant_name: str,
    replica_index: int,
    segment_name: str,
    config: ServiceConfig,
    users_bytes: bytes,
    feedback_bytes: Optional[bytes],
) -> None:
    """Entry point of one replica process (module-level: spawn-picklable).

    Same protocol as ``_shard_main``: ``(op, request_id, payload)`` in,
    ``(request_id, "ok", result)`` / ``(request_id, "error", kind,
    message)`` out, first message ``("ready", replica_index, [tenant])``.
    ``recommend`` answers asynchronously off the admission queue;
    ``apply_record`` runs inline on the receive loop so reads admitted
    after a record always score the post-record head.
    """
    # Deferred imports mirror _shard_main: http/sharding import this
    # module's supervisor-side helpers, so top-level imports would cycle.
    from repro.service.http import parse_recommend_payload
    from repro.service.sharding import _error_kind

    service = RecommendationService(config)
    send_lock = threading.Lock()

    def send(message: tuple) -> None:
        with send_lock:
            try:
                conn.send(message)
            except (OSError, ValueError, BrokenPipeError):  # parent is gone
                pass

    try:
        # The "attached" signal races ahead of the (potentially slow)
        # decode: as soon as this process holds its mapping the supervisor
        # may unlink the segment -- POSIX keeps the mapping alive -- so a
        # late-join segment is gone from /dev/shm within one pipe
        # round-trip of its creation.
        kb = decode_shared_payload(
            segment_name, on_attached=lambda: send(("attached", replica_index))
        )
        users = users_from_dicts(json.loads(users_bytes.decode("utf-8")))
        feedback = (
            feedback_from_dicts(json.loads(feedback_bytes.decode("utf-8")))
            if feedback_bytes is not None
            else None
        )
        tenant = service.add_tenant(tenant_name, kb, users, feedback)
        dictionary = kb.first().graph.dictionary if len(kb) else None
    except BaseException as exc:
        send(("failed", replica_index, _error_kind(exc), _error_message(exc)))
        service.close()
        return
    send(("ready", replica_index, [tenant_name]))

    def handle(op: str, request_id: int, payload) -> None:
        if op == "recommend":
            name, user, k, old, new = parse_recommend_payload(payload)
            if service.respcache is not None:
                # Process-local response cache, exactly as on the owning
                # shard: the replica's version ids advance only through
                # apply_record on this very recv loop and its population
                # is fixed at spawn, so nothing can invalidate a key from
                # outside the process -- no coherence traffic needed.
                cached_future = service.recommend_cached_async(name, user, k, old, new)

                def _done_cached(f, request_id=request_id):
                    try:
                        send((request_id, "ok", package_to_dict(f.result().package)))
                    except BaseException as exc:
                        send(
                            (request_id, "error", _error_kind(exc), _error_message(exc))
                        )

                cached_future.add_done_callback(_done_cached)
                return
            future = service.recommend_async(name, user, k, old, new)

            def _done(f, request_id=request_id):
                try:
                    send((request_id, "ok", package_to_dict(f.result())))
                except BaseException as exc:
                    send((request_id, "error", _error_kind(exc), _error_message(exc)))

            future.add_done_callback(_done)
        elif op == "apply_record":
            # The generation bump.  Under the tenant write lock the
            # decoded delta lands via commit_recorded -- O(delta), with
            # the dictionary growing by exactly the record's term range,
            # so replica term ids track the owner's forever.  Running
            # inline (not on a thread) makes pipe order the commit order:
            # a recommend the supervisor sends after this record cannot
            # be admitted on the pre-record head.
            with tenant.write_lock:
                version_id, metadata, added, deleted = wire.decode_commit(
                    payload["record"], dictionary
                )
                tenant.kb.commit_recorded(
                    added=added, deleted=deleted,
                    version_id=version_id, metadata=metadata,
                )
                generation = len(tenant.kb)
            send((request_id, "ok", {"generation": generation, "version_id": version_id}))
        elif op in ("commit", "commit_delta"):
            raise ServiceError(
                f"replica {replica_index} of tenant {tenant_name!r} is "
                "read-only; commits route to the owning shard"
            )
        elif op == "stats":
            send((request_id, "ok", service.stats()))
        elif op == "tenants":
            send((request_id, "ok", service.tenants()))
        elif op == "health":
            send(
                (
                    request_id,
                    "ok",
                    {"status": "ok", "replica": replica_index,
                     "tenant": tenant_name, "generation": len(tenant.kb)},
                )
            )
        else:
            raise ValueError(f"unknown replica op: {op!r}")

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            op, request_id, payload = message
            if op == "shutdown":
                send((request_id, "ok", {"replica": replica_index}))
                break
            try:
                handle(op, request_id, payload)
            except BaseException as exc:
                send((request_id, "error", _error_kind(exc), _error_message(exc)))
    finally:
        service.close()
        try:
            conn.close()
        except OSError:
            pass


__all__ = [
    "attach_shared_payload",
    "collect_artefacts",
    "create_shared_payload",
    "decode_shared_payload",
    "destroy_segment",
    "encode_tenant_artefacts",
    "seed_artefacts",
]
