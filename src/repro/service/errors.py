"""Exceptions of the serving layer."""

from __future__ import annotations


class ServiceError(Exception):
    """Base class for serving-layer failures."""


class UnknownTenantError(ServiceError, KeyError):
    """The named tenant is not registered."""


class UnknownUserError(ServiceError, KeyError):
    """The named user does not exist in the tenant's population."""


class ServiceClosedError(ServiceError):
    """The service (or its admission queue) has been shut down."""


class ServiceOverloadedError(ServiceError):
    """The admission queue is at capacity; the request was shed, not queued."""
