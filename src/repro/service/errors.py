"""Exceptions of the serving layer."""

from __future__ import annotations


def error_message(exc: BaseException) -> str:
    """The human-readable message of a serving-layer exception.

    KeyError-derived service errors (unknown tenant/user) carry the
    message as ``args[0]``; ``str()`` on them would add quotes.  One rule,
    shared by the HTTP handlers and the shard transport, so both
    topologies word their errors identically.
    """
    return str(exc.args[0]) if exc.args else str(exc)


class ServiceError(Exception):
    """Base class for serving-layer failures."""


class UnknownTenantError(ServiceError, KeyError):
    """The named tenant is not registered."""


class UnknownUserError(ServiceError, KeyError):
    """The named user does not exist in the tenant's population."""


class ServiceClosedError(ServiceError):
    """The service (or its admission queue) has been shut down."""


class ServiceOverloadedError(ServiceError):
    """The admission queue is at capacity; the request was shed, not queued."""


class ShardError(ServiceError):
    """A shard process failed (died, never became ready, or lost its pipe).

    Raised supervisor-side; the HTTP router maps it to 503 so clients see
    a retryable infrastructure failure, not a bad request.
    """


class RemoteInternalError(Exception):
    """An *unexpected* exception inside a shard process (a bug, not a request).

    Deliberately outside the :class:`ServiceError` hierarchy: the HTTP
    error mapping turns ``ServiceError`` into 400, but an internal shard
    failure must surface as 500 exactly like an unexpected exception in
    the single-process handler would.
    """
