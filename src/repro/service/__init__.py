"""Concurrent multi-tenant serving layer.

The paper frames the recommender as a curator-facing service reacting to
each knowledge-base evolution step; this package is the long-lived,
thread-safe subsystem that actually serves that workload:

* :class:`~repro.service.registry.TenantRegistry` /
  :class:`~repro.service.registry.Tenant` -- named
  :class:`~repro.kb.version.VersionedKnowledgeBase`\\ s with their user
  population, one shared :class:`~repro.recommender.engine.RecommenderEngine`
  per tenant and a per-tenant write lock for commits,
* :class:`~repro.service.admission.AdmissionQueue` -- coalesces concurrent
  ``recommend`` requests for the same (tenant, version pair) into single
  batched scoring calls on a worker pool,
* :class:`~repro.service.service.RecommendationService` /
  :class:`~repro.service.service.ServiceConfig` -- the Python API tying the
  two together with snapshot-consistent reads: a request keeps scoring the
  version pair it was admitted on even while a writer commits the next
  evolution step,
* :class:`~repro.service.sharding.ShardSupervisor` -- the cross-process
  scale-out: N worker processes each running a full service over the
  tenant subset a stable hash of the tenant name routes to them, fed over
  local pipes with the binary wire format of :mod:`repro.kb.wire`,
* :mod:`repro.service.replica` -- zero-copy read replicas for hot
  tenants: the supervisor publishes a tenant's store payload once into
  shared memory, R extra processes decode it lazily out of the segment
  and serve reads round-robin with the owner, while commits stay
  single-owner and reach replicas as O(delta) commit records; late
  joiners bootstrap warm from a re-published snapshot plus the owner's
  already-computed measure artefacts, and
  :class:`~repro.service.autoscale.AutoscaleController` adds/retires/
  respawns them at runtime from the per-tenant read share,
* :mod:`repro.service.http` -- stdlib-only JSON front-ends
  (``python -m repro serve``): the single-process server and the sharded
  thin router (``--shards N``, ``--replicas R``),
* :mod:`repro.service.aio` -- the asyncio front-end (``serve --async``):
  the same JSON API from one event-loop thread, so idle keep-alive
  connections cost a coroutine instead of a thread, plus the SSE
  ``/events`` stream only an event loop can afford,
* :mod:`repro.service.metrics` -- the ops plane: the lock-light
  per-tenant counter/latency aggregator behind the frozen, versioned
  ``GET /stats`` payload, and the threshold rules behind ``GET /alerts``,
* :mod:`repro.service.respcache` -- the response-cache plane
  (``serve --cache-entries/--cache-bytes``): a byte-budgeted LRU of
  fully serialised response bytes keyed by (tenant, version pair,
  user + population epoch, k), with singleflight fills and the strong
  ETags behind the HTTP ``If-None-Match``/304 contract.  Version-pair
  immutability means committed entries never go stale (no TTL); the
  cache is process-local, so every topology above gets it with zero
  coherence traffic.

Results are bit-identical to serial, single-threaded execution: batching,
concurrency, sharding, replication and the choice of front-end change
cost, never values (the service test suite asserts exactly that, in every
topology).
"""

from repro.service.admission import AdmissionQueue, AdmissionStats
from repro.service.aio import AsyncServerThread, AsyncServiceServer
from repro.service.autoscale import AutoscaleController
from repro.service.errors import (
    RemoteInternalError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ShardError,
    UnknownTenantError,
    UnknownUserError,
)
from repro.service.metrics import (
    STATS_VERSION,
    AlertThresholds,
    ServiceMetrics,
    evaluate_alerts,
)
from repro.service.registry import Tenant, TenantRegistry
from repro.service.respcache import CachedResponse, ResponseCache, make_etag
from repro.service.service import RecommendationService, ServiceConfig
from repro.service.sharding import ShardSupervisor

__all__ = [
    "STATS_VERSION",
    "AdmissionQueue",
    "AdmissionStats",
    "AlertThresholds",
    "AsyncServerThread",
    "AsyncServiceServer",
    "AutoscaleController",
    "CachedResponse",
    "RecommendationService",
    "RemoteInternalError",
    "ResponseCache",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "ServiceOverloadedError",
    "ShardError",
    "ShardSupervisor",
    "Tenant",
    "TenantRegistry",
    "UnknownTenantError",
    "UnknownUserError",
    "evaluate_alerts",
    "make_etag",
]
