"""Concurrent multi-tenant serving layer.

The paper frames the recommender as a curator-facing service reacting to
each knowledge-base evolution step; this package is the long-lived,
thread-safe subsystem that actually serves that workload:

* :class:`~repro.service.registry.TenantRegistry` /
  :class:`~repro.service.registry.Tenant` -- named
  :class:`~repro.kb.version.VersionedKnowledgeBase`\\ s with their user
  population, one shared :class:`~repro.recommender.engine.RecommenderEngine`
  per tenant and a per-tenant write lock for commits,
* :class:`~repro.service.admission.AdmissionQueue` -- coalesces concurrent
  ``recommend`` requests for the same (tenant, version pair) into single
  batched scoring calls on a worker pool,
* :class:`~repro.service.service.RecommendationService` /
  :class:`~repro.service.service.ServiceConfig` -- the Python API tying the
  two together with snapshot-consistent reads: a request keeps scoring the
  version pair it was admitted on even while a writer commits the next
  evolution step,
* :mod:`repro.service.http` -- a stdlib-only JSON front-end
  (``python -m repro serve``).

Results are bit-identical to serial, single-threaded execution: batching
and concurrency change cost, never values (the service test suite asserts
exactly that).
"""

from repro.service.admission import AdmissionQueue, AdmissionStats
from repro.service.errors import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    UnknownTenantError,
    UnknownUserError,
)
from repro.service.registry import Tenant, TenantRegistry
from repro.service.service import RecommendationService, ServiceConfig

__all__ = [
    "AdmissionQueue",
    "AdmissionStats",
    "RecommendationService",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "ServiceOverloadedError",
    "Tenant",
    "TenantRegistry",
    "UnknownTenantError",
    "UnknownUserError",
]
