"""Stdlib-only JSON front-ends over the serving layer.

Two servers share one handler toolbox (no third-party dependencies):

* :class:`ServiceHTTPServer` -- the single-process front-end: one
  :class:`ThreadingHTTPServer` (one thread per connection) over an
  in-process :class:`~repro.service.service.RecommendationService`.
* :class:`ShardRouterHTTPServer` -- the sharded front-end: the same
  endpoints, but the handler is a *thin router* that forwards each request
  to the shard process owning its tenant (see
  :mod:`repro.service.sharding`); the router parses just enough JSON to
  find the tenant name and never touches graphs, N-Triples or scoring.
  When the supervisor runs read replicas, ``/recommend`` for a replicated
  tenant round-robins across the owner and its live replicas
  (:meth:`~repro.service.sharding.ShardSupervisor.forward` routes reads;
  ``/commit`` always goes to the owner) -- bit-identical responses either
  way.

Endpoints (identical in both topologies):

``GET /health``
    liveness + tenant count (the sharded server adds shard liveness and,
    when replicas are configured, a ``replicas`` summary with configured
    vs live counts).
``GET /tenants``
    tenant summaries (versions, users).
``GET /stats``
    the frozen, versioned ops snapshot (see
    :data:`repro.service.metrics.STATS_VERSION` and ``docs/http-api.md``):
    admission/batching counters plus per-tenant serving counters, rolling
    latency percentiles and persistence gauges (per shard in the sharded
    topology, which reports each shard's raw admission counters).
``GET /alerts``
    threshold evaluation over the same ``/stats`` payload
    (:func:`repro.service.metrics.evaluate_alerts`): tail-latency budget,
    admission backlog, commit-log-near-roll-up, and -- in the sharded
    topology -- replica degradation (live < configured, no threshold
    flag needed).
``GET /events``
    Server-Sent Events stream of periodic ``/stats`` payloads -- the
    async front-end only (:mod:`repro.service.aio`); this threaded server
    answers 404 with a hint, because an SSE subscriber would pin one
    thread for its whole lifetime here.
``POST /recommend``
    ``{"tenant": ..., "user": ..., "k"?: ..., "old"?: ..., "new"?: ...}`` ->
    the recommendation package as JSON (same layout as
    :func:`repro.io.storage.package_to_dict`).  The response carries a
    strong ``ETag`` (SHA-256 of the exact body bytes); a request whose
    ``If-None-Match`` header matches it is answered ``304 Not Modified``
    with no body -- cheap revalidation for pollers, valid precisely
    because responses over committed version pairs are bit-identical.
    With the response cache enabled (``serve --cache-entries`` /
    ``--cache-bytes``) hits are served as the pre-encoded cached bytes;
    enabled or not, the bytes on the wire are identical.
``POST /commit``
    ``{"tenant": ..., "added"?: "<N-Triples>", "deleted"?: "<N-Triples>",
    "version_id"?: ..., "metadata"?: {...}}`` -> the committed version.
    The curator-side write path: changes are applied to the tenant's
    latest version under its write lock while readers keep scoring the
    pair they were admitted on.  In the sharded topology the N-Triples
    body is forwarded verbatim and parsed by the owning shard.

Concurrent requests batch through the (per-shard) admission queue exactly
as Python-API callers do; the HTTP layer adds no state of its own.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import TimeoutError as FuturesTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Tuple

from repro.io.storage import package_to_dict
from repro.kb.errors import KnowledgeBaseError
from repro.kb.ntriples import parse_graph
from repro.kb.triples import Triple
from repro.service.errors import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ShardError,
    UnknownTenantError,
    UnknownUserError,
    error_message,
)
from repro.service.metrics import AlertThresholds, evaluate_alerts
from repro.service.service import RecommendationService

if TYPE_CHECKING:  # sharding imports this module; annotation only here.
    from repro.service.sharding import ShardSupervisor


# -- request semantics (shared by the in-process handler and the shards) -----------


#: Overload timeouts, whatever layer raised them: the blocking front-end's
#: Future.result, the async front-end's asyncio.wait_for (a distinct class
#: until Python 3.11 aliased it to the builtin), or a hung shard fan-out.
TIMEOUT_ERRORS = (TimeoutError, FuturesTimeoutError, asyncio.TimeoutError)


def map_error(exc: BaseException) -> Tuple[int, str]:
    """One request-failure taxonomy -> ``(HTTP status, message)``.

    Shared by every front-end (threaded, router, async), so the same
    failure produces byte-identical error JSON on all of them:

    * 404 -- the client named a tenant/user that does not exist;
    * 503 -- shutdown, shed under load, or a dead shard: retry elsewhere,
      the request itself was fine;
    * 504 -- the admitted batch missed ``request_timeout_s``: overload,
      not a bug (the fixed message leaks no per-request state);
    * 400 -- the request was malformed (bad JSON, bad N-Triples, bad
      field types, duplicate version id);
    * 500 -- everything else: a server-side bug.
    """
    if isinstance(exc, (UnknownTenantError, UnknownUserError)):
        return 404, error_message(exc)
    if isinstance(exc, (ServiceClosedError, ServiceOverloadedError, ShardError)):
        return 503, error_message(exc)
    if isinstance(exc, TIMEOUT_ERRORS):
        return 504, "request timed out under load"
    if isinstance(
        exc, (ValueError, KeyError, ServiceError, KnowledgeBaseError, json.JSONDecodeError)
    ):
        return 400, error_message(exc)
    return 500, error_message(exc)


def parse_recommend_payload(
    payload: Dict,
) -> Tuple[str, str, Optional[int], Optional[str], Optional[str]]:
    """Validate a ``/recommend`` body -> ``(tenant, user, k, old, new)``."""
    tenant_name = payload.get("tenant")
    user_id = payload.get("user")
    if not tenant_name or not user_id:
        raise ValueError("recommend requires 'tenant' and 'user'")
    k = payload.get("k")
    if k is not None and (not isinstance(k, int) or isinstance(k, bool) or k < 0):
        raise ValueError(f"k must be a non-negative integer, got {k!r}")
    return tenant_name, user_id, k, payload.get("old"), payload.get("new")


def handle_recommend(service: RecommendationService, payload: Dict) -> Dict:
    """Serve one ``/recommend`` body against an in-process service."""
    tenant_name, user_id, k, old, new = parse_recommend_payload(payload)
    package = service.recommend(tenant_name, user_id, k=k, old_id=old, new_id=new)
    return package_to_dict(package)


def handle_recommend_cached(service: RecommendationService, payload: Dict):
    """Serve one ``/recommend`` body -> a wire-ready ``CachedResponse``.

    The front-ends' shared read path: body bytes + strong ETag, straight
    from the response cache on a hit (singleflight fill on a miss), or
    computed-and-serialised when the cache is disabled -- byte-identical
    either way.
    """
    tenant_name, user_id, k, old, new = parse_recommend_payload(payload)
    return service.recommend_cached(tenant_name, user_id, k=k, old_id=old, new_id=new)


def etag_matches(header: Optional[str], etag: str) -> bool:
    """Does an ``If-None-Match`` header value match a strong ``etag``?

    Implements the comparison the contract needs: ``*`` matches anything,
    otherwise the header is a comma-separated tag list compared tag by
    tag.  Weak validators (``W/"..."``) never match -- every tag this
    server hands out is strong, so a weak match could only come from a
    foreign cache and must revalidate.
    """
    if not header:
        return False
    if header.strip() == "*":
        return True
    return any(candidate.strip() == etag for candidate in header.split(","))


def apply_commit(
    service: RecommendationService,
    tenant_name: str,
    added: Iterable[Triple],
    deleted: Iterable[Triple],
    version_id: str | None,
    metadata: Dict,
) -> Dict:
    """Commit already-parsed changes to a tenant (shared write-path core).

    Validation and the duplicate-id precheck run under the tenant write
    lock, atomic with the commit itself; both the N-Triples HTTP path and
    the binary-delta shard path funnel through here.
    """
    tenant = service.tenant(tenant_name)
    if version_id is not None and not isinstance(version_id, str):
        raise ValueError(f"version_id must be a string, got {version_id!r}")
    if not isinstance(metadata, dict):
        raise ValueError("metadata must be a JSON object")
    added = list(added)
    deleted = list(deleted)
    if not added and not deleted:
        raise ValueError("commit requires non-empty 'added' and/or 'deleted'")
    with tenant.write_lock:
        # Duplicate-id precheck before commit_changes interns the new terms
        # (atomic with the commit: the lock is reentrant and held across
        # both).
        if version_id is not None and version_id in tenant.kb:
            raise ValueError(f"duplicate version id: {version_id!r}")
        version = tenant.commit_changes(
            added=added,
            deleted=deleted,
            version_id=version_id,
            metadata={str(k): str(v) for k, v in metadata.items()},
        )
    return {
        "tenant": tenant_name,
        "version_id": version.version_id,
        "size": len(version),
        "versions": tenant.kb.version_ids(),
    }


def handle_commit(service: RecommendationService, payload: Dict) -> Dict:
    """Serve one ``/commit`` body (N-Triples changes) against a service."""
    tenant_name = payload.get("tenant")
    if not tenant_name:
        raise ValueError("commit requires 'tenant'")
    added_text = payload.get("added") or ""
    deleted_text = payload.get("deleted") or ""
    if not isinstance(added_text, str) or not isinstance(deleted_text, str):
        raise ValueError("'added' and 'deleted' must be N-Triples strings")
    # Parse into private dictionaries: the chain's shared TermDictionary is
    # append-only and interning is writer-locked, so (a) a rejected request
    # must not grow it, and (b) concurrent handler threads must not intern
    # into it outside the tenant write lock.
    added = parse_graph(added_text)
    deleted = parse_graph(deleted_text)
    return apply_commit(
        service,
        tenant_name,
        list(added),
        list(deleted),
        payload.get("version_id"),
        payload.get("metadata") or {},
    )


# -- handler plumbing --------------------------------------------------------------


class _JsonRequestHandler(BaseHTTPRequestHandler):
    """Shared JSON plumbing for both front-ends."""

    protocol_version = "HTTP/1.1"
    # Keep-alive clients exchange small request/response pairs on one
    # connection; with Nagle on, every exchange after the first stalls
    # ~40ms on the delayed-ACK interaction.  (socketserver reads this off
    # the *handler* class in setup().)
    disable_nagle_algorithm = True
    # Quiet by default: the serving benchmark hammers the server and the
    # default handler writes one stderr line per request.
    verbose = False

    def log_message(self, format: str, *args) -> None:  # noqa: A002 (stdlib API)
        if self.verbose:
            super().log_message(format, *args)

    def _send_json(self, payload: Dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_raw_json(self, body: bytes, etag: str) -> None:
        """Write pre-encoded JSON bytes (the cached-response hit path)."""
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("ETag", etag)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_not_modified(self, etag: str) -> None:
        self.send_response(304)
        self.send_header("ETag", etag)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_json_body(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("request body must be a JSON object")
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    _error_message = staticmethod(error_message)

    def _dispatch_post(self, handler) -> None:
        """Run ``handler(payload) -> Dict`` with the shared error mapping."""
        try:
            self._send_json(handler(self._read_json_body()))
        except Exception as exc:
            self._send_error_json(*map_error(exc))


# -- single-process front-end ------------------------------------------------------


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service for its handlers."""

    daemon_threads = True
    # The stdlib default listen backlog is 5: a burst of clients opening
    # keep-alive connections (the load generator's 32 simultaneous
    # connects, any real fleet rollover) gets kernel RSTs before the
    # accept loop ever sees them.
    request_queue_size = 128

    def __init__(
        self,
        address: Tuple[str, int],
        service: RecommendationService,
        thresholds: Optional[AlertThresholds] = None,
    ) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        #: The ``GET /alerts`` rules (see repro.service.metrics).
        self.thresholds = thresholds or AlertThresholds()


class ServiceRequestHandler(_JsonRequestHandler):
    """Routes the six endpoints; every response body is JSON."""

    server: ServiceHTTPServer

    def do_GET(self) -> None:  # noqa: N802 (stdlib API)
        service = self.server.service
        path = self.path.partition("?")[0]
        if path == "/health":
            self._send_json({"status": "ok", "tenants": len(service.registry)})
        elif path == "/tenants":
            self._send_json({"tenants": service.tenants()})
        elif path == "/stats":
            self._send_json(service.stats())
        elif path == "/alerts":
            self._send_json(
                evaluate_alerts(service.stats(), self.server.thresholds)
            )
        elif path == "/events":
            # SSE is async-front-end-only by design: a stream here would
            # pin one server thread per subscriber -- exactly the
            # thread-per-connection cost `repro serve --async` removes.
            self._send_error_json(
                404, "SSE /events requires the async front-end (repro serve --async)"
            )
        else:
            self._send_error_json(404, f"unknown path: {self.path}")

    def do_POST(self) -> None:  # noqa: N802 (stdlib API)
        service = self.server.service
        if self.path == "/recommend":
            # /recommend speaks conditional GET semantics: serve the
            # cached (or freshly serialised) bytes with their strong
            # ETag, or 304 when the client already holds them.
            try:
                response = handle_recommend_cached(service, self._read_json_body())
            except Exception as exc:
                self._send_error_json(*map_error(exc))
                return
            if etag_matches(self.headers.get("If-None-Match"), response.etag):
                self._send_not_modified(response.etag)
            else:
                self._send_raw_json(response.body, response.etag)
        elif self.path == "/commit":
            self._dispatch_post(lambda payload: handle_commit(service, payload))
        else:
            self._send_error_json(404, f"unknown path: {self.path}")


def make_server(
    service: RecommendationService,
    host: str = "127.0.0.1",
    port: int = 0,
    thresholds: Optional[AlertThresholds] = None,
) -> ServiceHTTPServer:
    """Bind a :class:`ServiceHTTPServer` (port 0 = ephemeral); caller serves."""
    return ServiceHTTPServer((host, port), service, thresholds=thresholds)


# -- sharded front-end (thin router) ----------------------------------------------


class ShardRouterHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shard supervisor for its handlers."""

    daemon_threads = True
    request_queue_size = 128  # same rationale as ServiceHTTPServer

    def __init__(
        self,
        address: Tuple[str, int],
        supervisor: "ShardSupervisor",
        thresholds: Optional[AlertThresholds] = None,
    ) -> None:
        super().__init__(address, ShardRouterRequestHandler)
        self.supervisor = supervisor
        #: The ``GET /alerts`` rules (see repro.service.metrics).
        self.thresholds = thresholds or AlertThresholds()


class ShardRouterRequestHandler(_JsonRequestHandler):
    """The sharded topology's front-end: same endpoints, zero scoring.

    ``POST`` bodies are decoded just far enough to read the tenant name,
    then forwarded to the owning shard process -- or, for ``/recommend``
    on a tenant with read replicas, round-robined across the owner and
    its live replica processes (commits always hit the owner); responses
    come back as JSON-ready dicts.  All error mapping is shared with the
    single-process handler, plus 503 for a dead shard
    (:class:`ShardError`); a dead *replica* is not an error -- reads
    degrade to the remaining processes.
    """

    server: ShardRouterHTTPServer

    def do_GET(self) -> None:  # noqa: N802 (stdlib API)
        supervisor = self.server.supervisor
        try:
            if self.path == "/health":
                self._send_json(supervisor.health())
            elif self.path == "/tenants":
                self._send_json({"tenants": supervisor.tenants()})
            elif self.path == "/stats":
                self._send_json(supervisor.stats())
            elif self.path == "/alerts":
                # evaluate_alerts flattens the router's per-shard stats
                # shape itself and adds the threshold-free
                # replica_degraded rule from the tenant_replicas block.
                self._send_json(
                    evaluate_alerts(supervisor.stats(), self.server.thresholds)
                )
            else:
                self._send_error_json(404, f"unknown path: {self.path}")
        except (ServiceClosedError, ShardError) as exc:
            self._send_error_json(503, self._error_message(exc))
        except (TimeoutError, FuturesTimeoutError):
            # A hung shard missed the fan-out deadline: answer like the POST
            # paths do instead of dropping the connection with a traceback.
            self._send_error_json(504, "shard did not answer in time")

    def do_POST(self) -> None:  # noqa: N802 (stdlib API)
        supervisor = self.server.supervisor
        if self.path == "/recommend":
            self._dispatch_post(
                lambda payload: supervisor.forward("recommend", payload)
            )
        elif self.path == "/commit":
            self._dispatch_post(lambda payload: supervisor.forward("commit", payload))
        else:
            self._send_error_json(404, f"unknown path: {self.path}")


def make_router_server(
    supervisor: "ShardSupervisor",
    host: str = "127.0.0.1",
    port: int = 0,
    thresholds: Optional[AlertThresholds] = None,
) -> ShardRouterHTTPServer:
    """Bind a :class:`ShardRouterHTTPServer` (port 0 = ephemeral); caller serves."""
    return ShardRouterHTTPServer((host, port), supervisor, thresholds=thresholds)
