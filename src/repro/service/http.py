"""Stdlib-only JSON front-end over :class:`RecommendationService`.

One :class:`ThreadingHTTPServer` (one thread per connection, no third-party
dependencies) exposing the serving layer:

``GET /health``
    liveness + tenant count.
``GET /tenants``
    tenant summaries (versions, users).
``GET /stats``
    admission/batching counters.
``POST /recommend``
    ``{"tenant": ..., "user": ..., "k"?: ..., "old"?: ..., "new"?: ...}`` ->
    the recommendation package as JSON (same layout as
    :func:`repro.io.storage.package_to_dict`).
``POST /commit``
    ``{"tenant": ..., "added"?: "<N-Triples>", "deleted"?: "<N-Triples>",
    "version_id"?: ..., "metadata"?: {...}}`` -> the committed version.
    The curator-side write path: changes are applied to the tenant's
    latest version under its write lock while readers keep scoring the
    pair they were admitted on.

Concurrent requests batch through the service's admission queue exactly as
Python-API callers do; the HTTP layer adds no state of its own.
"""

from __future__ import annotations

import json
from concurrent.futures import TimeoutError as FuturesTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Tuple

from repro.io.storage import package_to_dict
from repro.kb.errors import KnowledgeBaseError
from repro.kb.ntriples import parse_graph
from repro.service.errors import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    UnknownTenantError,
    UnknownUserError,
)
from repro.service.service import RecommendationService


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service for its handlers."""

    daemon_threads = True

    def __init__(
        self, address: Tuple[str, int], service: RecommendationService
    ) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes the five endpoints; every response body is JSON."""

    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"
    # Quiet by default: the serving benchmark hammers the server and the
    # default handler writes one stderr line per request.
    verbose = False

    def log_message(self, format: str, *args) -> None:  # noqa: A002 (stdlib API)
        if self.verbose:
            super().log_message(format, *args)

    # -- plumbing ---------------------------------------------------------------

    def _send_json(self, payload: Dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_json_body(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("request body must be a JSON object")
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    @staticmethod
    def _error_message(exc: BaseException) -> str:
        # KeyError-derived service errors carry the message as args[0].
        return str(exc.args[0]) if exc.args else str(exc)

    # -- routes -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib API)
        service = self.server.service
        if self.path == "/health":
            self._send_json({"status": "ok", "tenants": len(service.registry)})
        elif self.path == "/tenants":
            self._send_json({"tenants": service.tenants()})
        elif self.path == "/stats":
            self._send_json(service.stats())
        else:
            self._send_error_json(404, f"unknown path: {self.path}")

    def do_POST(self) -> None:  # noqa: N802 (stdlib API)
        try:
            payload = self._read_json_body()
            if self.path == "/recommend":
                self._send_json(self._handle_recommend(payload))
            elif self.path == "/commit":
                self._send_json(self._handle_commit(payload))
            else:
                self._send_error_json(404, f"unknown path: {self.path}")
        except (UnknownTenantError, UnknownUserError) as exc:
            self._send_error_json(404, self._error_message(exc))
        except (ServiceClosedError, ServiceOverloadedError) as exc:
            # Shutdown or shed under load: tell clients to retry elsewhere,
            # not that their request was malformed.
            self._send_error_json(503, self._error_message(exc))
        except (TimeoutError, FuturesTimeoutError):
            # Overload, not a bug: the batch missed request_timeout_s.
            self._send_error_json(504, "request timed out under load")
        except (ValueError, KeyError, ServiceError, KnowledgeBaseError, json.JSONDecodeError) as exc:
            self._send_error_json(400, self._error_message(exc))
        except Exception as exc:  # pragma: no cover - defensive last resort
            self._send_error_json(500, self._error_message(exc))

    def _handle_recommend(self, payload: Dict) -> Dict:
        service = self.server.service
        tenant_name = payload.get("tenant")
        user_id = payload.get("user")
        if not tenant_name or not user_id:
            raise ValueError("recommend requires 'tenant' and 'user'")
        k = payload.get("k")
        if k is not None and (not isinstance(k, int) or isinstance(k, bool) or k < 0):
            raise ValueError(f"k must be a non-negative integer, got {k!r}")
        package = service.recommend(
            tenant_name,
            user_id,
            k=k,
            old_id=payload.get("old"),
            new_id=payload.get("new"),
        )
        return package_to_dict(package)

    def _handle_commit(self, payload: Dict) -> Dict:
        service = self.server.service
        tenant_name = payload.get("tenant")
        if not tenant_name:
            raise ValueError("commit requires 'tenant'")
        tenant = service.tenant(tenant_name)
        version_id = payload.get("version_id")
        if version_id is not None and not isinstance(version_id, str):
            raise ValueError(f"version_id must be a string, got {version_id!r}")
        metadata = payload.get("metadata") or {}
        if not isinstance(metadata, dict):
            raise ValueError("metadata must be a JSON object")
        added_text = payload.get("added") or ""
        deleted_text = payload.get("deleted") or ""
        if not isinstance(added_text, str) or not isinstance(deleted_text, str):
            raise ValueError("'added' and 'deleted' must be N-Triples strings")
        # Parse into private dictionaries: the chain's shared TermDictionary
        # is append-only and interning is writer-locked, so (a) a rejected
        # request must not grow it, and (b) concurrent handler threads must
        # not intern into it outside the tenant write lock.
        added = parse_graph(added_text)
        deleted = parse_graph(deleted_text)
        if not len(added) and not len(deleted):
            raise ValueError("commit requires non-empty 'added' and/or 'deleted'")
        with tenant.write_lock:
            # Duplicate-id precheck before commit_changes interns the new
            # terms (atomic with the commit: the lock is reentrant and held
            # across both).
            if version_id is not None and version_id in tenant.kb:
                raise ValueError(f"duplicate version id: {version_id!r}")
            version = tenant.commit_changes(
                added=list(added),
                deleted=list(deleted),
                version_id=version_id,
                metadata={str(k): str(v) for k, v in metadata.items()},
            )
        return {
            "tenant": tenant_name,
            "version_id": version.version_id,
            "size": len(version),
            "versions": tenant.kb.version_ids(),
        }


def make_server(
    service: RecommendationService, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Bind a :class:`ServiceHTTPServer` (port 0 = ephemeral); caller serves."""
    return ServiceHTTPServer((host, port), service)
