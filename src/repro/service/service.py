"""The serving facade: ``ServiceConfig`` + ``RecommendationService``.

``RecommendationService`` is the long-lived object a deployment holds: a
:class:`~repro.service.registry.TenantRegistry` of knowledge bases behind
one :class:`~repro.service.admission.AdmissionQueue`.  Reads
(:meth:`RecommendationService.recommend`) are admitted with the version
pair captured at arrival and never block on writers; writes
(:meth:`RecommendationService.commit` and friends) serialise per tenant on
the chain's write lock.  Every result is bit-identical to running the same
requests serially on a private engine -- concurrency and batching are pure
cost optimisations.
"""

from __future__ import annotations

import json
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.io.storage import package_to_dict
from repro.kb.graph import Graph
from repro.kb.triples import Triple
from repro.kb.version import Version, VersionedKnowledgeBase
from repro.profiles.feedback import FeedbackStore
from repro.profiles.user import User
from repro.recommender.engine import EngineConfig
from repro.recommender.items import RecommendationPackage
from repro.service.admission import AdmissionQueue
from repro.service.errors import ServiceClosedError
from repro.service.metrics import STATS_VERSION, ServiceMetrics
from repro.service.registry import Tenant, TenantRegistry
from repro.service.respcache import CachedResponse, ResponseCache, make_etag


@dataclass(frozen=True)
class ServiceConfig:
    """All serving knobs in one place.

    ``engine`` is the per-tenant engine configuration (every tenant's
    shared engine is built from it); ``k`` is the default package size a
    request gets when it does not ask for one.
    """

    k: int = 5
    workers: int = 4
    max_batch: int = 64
    #: Backpressure: requests beyond this many queued are shed with
    #: :class:`ServiceOverloadedError` (HTTP 503) instead of piling up.
    max_pending: int = 1024
    request_timeout_s: float = 60.0
    #: Commit-log roll-up thresholds for persisted tenants
    #: (``add_tenant(..., store=...)``): when a tenant's ``commits.rpl``
    #: reaches either bound after a sync, the store rewrites its base and
    #: truncates the log (:meth:`repro.io.store.BinaryKBStore.rollup`),
    #: bounding recovery time.  ``None`` disables a threshold.
    rollup_bytes: Optional[int] = None
    rollup_records: Optional[int] = None
    #: Response-cache budgets (see :mod:`repro.service.respcache`): the
    #: maximum cached responses and the byte budget for their serialised
    #: bodies.  Zero on a knob means no bound on that axis; zero on
    #: *both* (the default) disables the cache entirely -- every read
    #: then computes exactly as it did before the cache existed.
    cache_entries: int = 0
    cache_bytes: int = 0
    engine: EngineConfig = field(default_factory=EngineConfig)

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValueError(f"k must be >= 0, got {self.k}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be > 0, got {self.request_timeout_s}"
            )
        for knob in ("rollup_bytes", "rollup_records"):
            value = getattr(self, knob)
            if value is not None and value < 1:
                raise ValueError(f"{knob} must be a positive integer, got {value!r}")
        for knob in ("cache_entries", "cache_bytes"):
            value = getattr(self, knob)
            if value < 0:
                raise ValueError(f"{knob} must be >= 0, got {value!r}")


def _resolve_future(future: "Future", value=None, error: BaseException | None = None) -> None:
    """Resolve a hand-made future, tolerating an already-cancelled one.

    The async front-end's ``asyncio.wait_for`` cancels on timeout (the
    admission queue tolerates the same race in ``_resolve``); the fill
    itself still completes and lands in the cache.
    """
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(value)
    except Exception:  # cancelled between check and set: the client left
        pass


class RecommendationService:
    """Thread-safe multi-tenant recommendation serving."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        registry: TenantRegistry | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.registry = registry or TenantRegistry()
        # The ops plane's aggregator: the admission queue feeds it
        # per-tenant request counters/latencies, tenants feed commits,
        # and the front-ends read it through stats() / SSE /events.
        self.metrics = ServiceMetrics()
        self.registry.attach_metrics(self.metrics)
        # The response-cache plane (repro.service.respcache): memoised
        # wire bytes keyed by (tenant, version pair, user+epoch, k).
        # Process-local on purpose -- committed version ids and the
        # population epoch are facts this process owns, so shard/replica
        # processes each cache independently with zero coherence traffic.
        if self.config.cache_entries or self.config.cache_bytes:
            self.respcache: Optional[ResponseCache] = ResponseCache(
                max_entries=self.config.cache_entries,
                max_bytes=self.config.cache_bytes,
            )
            self.registry.attach_response_cache(self.respcache)
        else:
            self.respcache = None
        self._queue = AdmissionQueue(
            workers=self.config.workers,
            max_batch=self.config.max_batch,
            max_pending=self.config.max_pending,
            metrics=self.metrics,
        )

    # -- tenants -----------------------------------------------------------------

    def add_tenant(
        self,
        name: str,
        kb: VersionedKnowledgeBase,
        users: Iterable[User] = (),
        feedback: FeedbackStore | None = None,
        on_commit=None,
        on_close=None,
        on_population_change=None,
        store=None,
    ) -> Tenant:
        """Register a knowledge base (and its users) for serving.

        ``on_commit`` (optional, one ``Version`` argument) runs after every
        tenant commit under the tenant write lock -- the persistence seam
        for the binary store's O(delta) commit-log appends.  ``on_close``
        (optional, no arguments) runs once when the tenant leaves serving
        (eviction or service shutdown) -- the release seam for resources
        backing the tenant, e.g. a binary store's lazy memory map.
        ``on_population_change`` (optional, no arguments) runs after any
        user/feedback mutation routed through the tenant
        (:meth:`~repro.service.registry.Tenant.add_user`,
        :meth:`~repro.service.registry.Tenant.record_feedback`); the
        response cache's epoch bump is wired in independently and always
        runs first, so this hook is purely for caller-side bookkeeping.

        ``store`` (optional, a :class:`~repro.io.store.BinaryKBStore`
        whose ``load()`` produced ``kb``) wires all of the above in one
        step: the config's ``rollup_bytes`` / ``rollup_records``
        thresholds are applied to the store, ``on_commit`` defaults to an
        O(delta) ``store.sync(kb)`` (which also rolls the log up whenever
        a threshold is crossed, under the tenant write lock), and
        ``on_close`` defaults to ``store.close``.  Explicit hooks still
        win.
        """
        if store is not None:
            if self.config.rollup_bytes is not None:
                store.rollup_bytes = self.config.rollup_bytes
            if self.config.rollup_records is not None:
                store.rollup_records = self.config.rollup_records
            if on_commit is None:
                on_commit = lambda version: store.sync(kb)  # noqa: E731
            if on_close is None:
                on_close = store.close
        return self.registry.add(
            name, kb, users, feedback,
            engine_config=self.config.engine,
            on_commit=on_commit,
            on_close=on_close,
            on_population_change=on_population_change,
            store=store,
        )

    def tenant(self, name: str) -> Tenant:
        """The named tenant (raises :class:`UnknownTenantError`)."""
        return self.registry.get(name)

    def tenants(self) -> List[Dict[str, object]]:
        """JSON-friendly tenant summaries."""
        return [tenant.describe() for tenant in self.registry]

    # -- reads --------------------------------------------------------------------

    def _resolve_read(
        self,
        tenant_name: str,
        user_id: str,
        k: int | None,
        old_id: str | None,
        new_id: str | None,
    ) -> Tuple[Tenant, User, int, Tuple[str, str]]:
        """Validate one read and resolve its admission snapshot.

        The version pair is resolved *now* (explicit ids, or the tenant's
        current head pair) -- that is the snapshot the request scores, even
        if a writer commits more versions before a worker picks it up.
        The cache keys on the same resolved pair, so a cached body can
        never answer for a pair the request was not admitted on.
        """
        if self._queue.closed:
            raise ServiceClosedError("service is closed")
        tenant = self.registry.get(tenant_name)
        user = tenant.user(user_id)
        if (old_id is None) != (new_id is None):
            raise ValueError("old_id and new_id must be given together")
        if old_id is not None and new_id is not None:
            pair: Tuple[str, str] = (
                tenant.kb.version(old_id).version_id,
                tenant.kb.version(new_id).version_id,
            )
        else:
            pair = tenant.head_pair()
        return tenant, user, self.config.k if k is None else k, pair

    def recommend_async(
        self,
        tenant_name: str,
        user_id: str,
        k: int | None = None,
        old_id: str | None = None,
        new_id: str | None = None,
    ) -> "Future[RecommendationPackage]":
        """Admit one request; returns the future of its package.

        This is the raw (uncached) admission path; see
        :meth:`recommend_cached` for the memoised one.
        """
        tenant, user, k, pair = self._resolve_read(
            tenant_name, user_id, k, old_id, new_id
        )
        return self._queue.submit(tenant, user, k, pair)

    def recommend_cached_async(
        self,
        tenant_name: str,
        user_id: str,
        k: int | None = None,
        old_id: str | None = None,
        new_id: str | None = None,
    ) -> "Future[CachedResponse]":
        """One read through the response cache, as a future.

        The uniform serving path for the HTTP front-ends: the resolved
        future always carries the serialised body (exactly what both
        front-ends write) and its strong ETag, whether the cache is
        enabled or not -- the cache only changes the *cost*.  Hits resolve
        immediately without touching the admission queue; a miss admits
        once and *leads* a singleflight fill, and concurrent or repeated
        misses on the same key attach to that fill instead of
        re-admitting.  Nothing blocks the caller: completion rides the
        admission workers' done-callbacks, so event-loop callers (the
        async front-end, the shard recv loop) use it directly.
        """
        tenant, user, k, pair = self._resolve_read(
            tenant_name, user_id, k, old_id, new_id
        )
        result: "Future[CachedResponse]" = Future()

        def lead() -> None:
            inner = self._queue.submit(tenant, user, k, pair)

            def finish(f: "Future[RecommendationPackage]") -> None:
                try:
                    package = f.result()
                    body = json.dumps(package_to_dict(package)).encode("utf-8")
                except BaseException as exc:
                    _resolve_future(result, error=exc)
                else:
                    _resolve_future(
                        result, CachedResponse(body, make_etag(body), package, False)
                    )

            inner.add_done_callback(finish)

        if self.respcache is None:
            lead()
            return result

        got = self.respcache.begin(tenant.name, pair[0], pair[1], user.user_id, k)
        if isinstance(got, CachedResponse):
            result.set_result(got)
            return result
        ticket = got
        if ticket.leader:
            inner = self._queue.submit(tenant, user, k, pair)

            def finish_fill(f: "Future[RecommendationPackage]") -> None:
                try:
                    package = f.result()
                    body = json.dumps(package_to_dict(package)).encode("utf-8")
                except BaseException as exc:
                    ticket.abort(exc)
                    _resolve_future(result, error=exc)
                else:
                    _resolve_future(result, ticket.commit(body, package))

            inner.add_done_callback(finish_fill)
        else:
            def attach(response, error) -> None:
                _resolve_future(result, response, error)

            ticket.on_done(attach)
        return result

    def recommend_cached(
        self,
        tenant_name: str,
        user_id: str,
        k: int | None = None,
        old_id: str | None = None,
        new_id: str | None = None,
        timeout: float | None = None,
    ) -> CachedResponse:
        """Blocking :meth:`recommend_cached_async` (the threaded front-end)."""
        future = self.recommend_cached_async(tenant_name, user_id, k, old_id, new_id)
        return future.result(
            timeout=self.config.request_timeout_s if timeout is None else timeout
        )

    def recommend(
        self,
        tenant_name: str,
        user_id: str,
        k: int | None = None,
        old_id: str | None = None,
        new_id: str | None = None,
        timeout: float | None = None,
    ) -> RecommendationPackage:
        """Recommend a package for one user (blocking; admission-batched).

        With the cache enabled this goes through :meth:`recommend_cached`
        (so Python-API repeats hit too); disabled, it is the plain
        admit-and-wait path with zero serialisation overhead.
        """
        if self.respcache is not None:
            return self.recommend_cached(
                tenant_name, user_id, k, old_id, new_id, timeout=timeout
            ).package
        future = self.recommend_async(tenant_name, user_id, k, old_id, new_id)
        return future.result(
            timeout=self.config.request_timeout_s if timeout is None else timeout
        )

    # -- writes -------------------------------------------------------------------

    def commit(
        self,
        tenant_name: str,
        graph: Graph,
        version_id: str | None = None,
        metadata: Dict[str, str] | None = None,
    ) -> Version:
        """Commit the next version of a tenant (serialised per tenant)."""
        return self.registry.get(tenant_name).commit(
            graph, version_id=version_id, metadata=metadata
        )

    def commit_changes(
        self,
        tenant_name: str,
        added: Iterable[Triple] = (),
        deleted: Iterable[Triple] = (),
        version_id: str | None = None,
        metadata: Dict[str, str] | None = None,
    ) -> Version:
        """Commit latest + changes as a tenant's next version."""
        return self.registry.get(tenant_name).commit_changes(
            added=added, deleted=deleted, version_id=version_id, metadata=metadata
        )

    # -- introspection / lifecycle ---------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """The frozen ``GET /stats`` payload (contract version 2).

        This exact payload is also what the async front-end's SSE
        ``/events`` stream publishes each tick and what
        :func:`repro.service.metrics.evaluate_alerts` reads, so the
        three surfaces can never disagree on field names.  The v2
        contract (documented field by field in ``docs/http-api.md``,
        pinned by ``tests/service/test_service_metrics.py``):

        * ``stats_version`` -- this layout's version (currently 2).
        * ``workers`` -- scoring worker threads.
        * ``tenants`` -- sorted tenant names.
        * ``admission`` -- global queue counters
          (:meth:`~repro.service.admission.AdmissionStats.snapshot`)
          plus ``depth``, the current backlog.
        * ``per_tenant`` -- per-tenant ops counters
          (:meth:`~repro.service.metrics.ServiceMetrics.tenant_snapshot`:
          commits, admitted/completed/failed/shed, batch counters,
          rolling-window ``mean_ms``/``p50_ms``/``p99_ms``) plus
          ``persistence`` (``log_records``/``log_bytes`` and the
          roll-up thresholds for persisted tenants, else ``None``) and
          -- new in v2 -- ``cache`` (the response-cache block:
          ``hits``/``misses``/``evictions``/``entries``/``bytes``/
          ``singleflight_waits``, or ``None`` when the cache is
          disabled).

        Adding fields is allowed without a version bump; renaming,
        removing or changing the meaning of one bumps ``stats_version``.
        """
        per_tenant: Dict[str, object] = {}
        for tenant in self.registry:
            entry = self.metrics.tenant_snapshot(tenant.name)
            entry["persistence"] = tenant.persistence_summary()
            entry["cache"] = (
                None if self.respcache is None else self.respcache.stats(tenant.name)
            )
            per_tenant[tenant.name] = entry
        admission = dict(self._queue.stats.snapshot())
        admission["depth"] = self._queue.depth
        return {
            "stats_version": STATS_VERSION,
            "admission": admission,
            "tenants": self.registry.names(),
            "per_tenant": per_tenant,
            "workers": self.config.workers,
        }

    @property
    def admission_stats(self):
        """The raw admission counters (tests assert coalescing on these)."""
        return self._queue.stats

    def close(self, timeout: Optional[float] = 5.0) -> None:
        """Drain the admission queue, stop the workers, release tenant resources."""
        self._queue.close(timeout=timeout)
        self.registry.close_all()

    def __enter__(self) -> "RecommendationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
