"""Multi-tenant knowledge-base registry.

A *tenant* is one curated knowledge base with its human population: a named
:class:`~repro.kb.version.VersionedKnowledgeBase`, the
:class:`~repro.profiles.user.User`\\ s recommendations are produced for, an
optional feedback store, and one shared
:class:`~repro.recommender.engine.RecommenderEngine` whose per-context
caches make repeated requests against the same version pair cheap.

Concurrency contract:

* **Writers serialise per tenant.**  :meth:`Tenant.commit` /
  :meth:`Tenant.commit_changes` run under the chain's write lock (the KB's
  own reentrant :attr:`~repro.kb.version.VersionedKnowledgeBase.write_lock`),
  so there is exactly one evolution writer per tenant at a time.
* **Readers never block.**  Committed versions are immutable snapshots;
  :meth:`Tenant.head_pair` reads the current chain head without a lock and
  in-flight requests keep the pair they were admitted on, so a concurrent
  commit can never change what an admitted request scores.
"""

from __future__ import annotations

import threading
import warnings
import zlib
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # ops-plane feeding seam; annotation only
    from repro.service.metrics import ServiceMetrics
    from repro.service.respcache import ResponseCache

from repro.kb.graph import Graph
from repro.kb.triples import Triple
from repro.kb.version import Version, VersionedKnowledgeBase
from repro.profiles.feedback import FeedbackEvent, FeedbackStore
from repro.profiles.user import User
from repro.recommender.engine import EngineConfig, RecommenderEngine
from repro.service.errors import ServiceError, UnknownTenantError, UnknownUserError


class Tenant:
    """One served knowledge base: versions, users and a shared engine."""

    def __init__(
        self,
        name: str,
        kb: VersionedKnowledgeBase,
        users: Iterable[User] = (),
        feedback: FeedbackStore | None = None,
        engine_config: EngineConfig | None = None,
        on_commit: Callable[[Version], None] | None = None,
        on_close: Callable[[], None] | None = None,
        on_population_change: Callable[[], None] | None = None,
        store=None,
    ) -> None:
        if not name:
            raise ServiceError("tenant name must be non-empty")
        self.name = name
        self.kb = kb
        # The tenant's backing BinaryKBStore, when served with --persist:
        # purely informational here (describe() reports its commit-log
        # size) -- the durability work itself runs through on_commit.
        self.store = store
        self._users: Dict[str, User] = {user.user_id: user for user in users}
        #: The tenant's feedback store (None when served without one).
        #: Mutations must go through record_feedback so the population
        #: seam below sees them.
        self.feedback = feedback
        self.engine = RecommenderEngine(
            kb, config=engine_config or EngineConfig(), feedback=feedback
        )
        # Post-commit hook, invoked under the tenant write lock -- the
        # durability seam: ``python -m repro serve --persist`` appends each
        # committed version to the KB's binary store commit log here
        # (O(delta) fsync, see repro.io.store.BinaryKBStore.sync).  Hook
        # failures are warnings, not request failures: the commit is
        # already live in memory, so failing the request would invite the
        # client to re-commit a duplicate, and a sync-style hook catches
        # up on every version still missing at its next success.
        self.on_commit = on_commit
        # Resource-release hook, run exactly once when the tenant leaves
        # serving (eviction via TenantRegistry.remove, or service
        # shutdown): the seam that lets a binary store's lazy memory map
        # close with the tenant instead of lingering until GC.
        self.on_close = on_close
        # Population-change hook, run after any user/feedback mutation --
        # the invalidation seam: all such mutations change what the engine
        # may produce (profiles feed the relatedness scorer, feedback the
        # novelty history), so anything memoising responses must hear
        # about them.  Mirrors on_commit/on_close: failures are warnings,
        # never mutation failures.
        self.on_population_change = on_population_change
        # Ops-plane aggregator (attached by the registry): commits are
        # recorded here, under the tenant write lock, so the /events
        # stream sees every committed version.
        self._metrics: "Optional[ServiceMetrics]" = None
        # Response cache (attached by the registry): population mutations
        # bump this tenant's epoch here, before the user hook runs.
        self._respcache: "Optional[ResponseCache]" = None
        self._closed = False

    def close(self) -> None:
        """Run the tenant's resource-release hook (idempotent).

        Hook failures are warnings, mirroring :meth:`_run_commit_hook`:
        the tenant is leaving service either way, and eviction/shutdown
        must not fail because a backing file was already gone.
        """
        if self._closed:
            return
        self._closed = True
        if self.on_close is None:
            return
        try:
            self.on_close()
        except Exception as exc:
            warnings.warn(
                f"tenant {self.name!r}: close hook failed ({exc})",
                RuntimeWarning,
                stacklevel=2,
            )

    def _run_commit_hook(self, version: Version) -> None:
        if self.on_commit is None:
            return
        try:
            self.on_commit(version)
        except Exception as exc:
            warnings.warn(
                f"tenant {self.name!r}: post-commit hook failed for version "
                f"{version.version_id!r} ({exc}); the version is live in "
                "memory and will be persisted by the next successful hook run",
                RuntimeWarning,
                stacklevel=3,
            )

    def _run_population_hook(self) -> None:
        """Tell the cache + hook the population changed (warning-on-failure).

        The epoch bump is unconditional and first: even if a user hook
        fails, no memoised response for the pre-mutation population may be
        served again.
        """
        if self._respcache is not None:
            self._respcache.bump_epoch(self.name)
        if self.on_population_change is None:
            return
        try:
            self.on_population_change()
        except Exception as exc:
            warnings.warn(
                f"tenant {self.name!r}: population-change hook failed ({exc}); "
                "the mutation itself is live",
                RuntimeWarning,
                stacklevel=3,
            )

    # -- users ----------------------------------------------------------------

    def user(self, user_id: str) -> User:
        """The user named ``user_id`` (raises :class:`UnknownUserError`)."""
        try:
            return self._users[user_id]
        except KeyError:
            raise UnknownUserError(
                f"tenant {self.name!r} has no user {user_id!r} "
                f"(have: {', '.join(sorted(self._users)) or 'none'})"
            ) from None

    def add_user(self, user: User) -> User:
        """Register (or replace) a user.

        ``User`` is frozen, so replacement through here *is* the profile
        mutation path -- which is why this routes through the population
        seam (epoch bump + ``on_population_change``).
        """
        self._users[user.user_id] = user
        self._run_population_hook()
        return user

    def record_feedback(self, event: FeedbackEvent) -> FeedbackEvent:
        """Record one feedback event through the population seam.

        Feedback feeds the relatedness scorer and the novelty history, so
        it changes responses exactly like a profile edit does; mutating
        the store directly would bypass the invalidation seam.
        """
        if self.feedback is None:
            raise ServiceError(
                f"tenant {self.name!r} has no feedback store to record into"
            )
        self.feedback.add(event)
        self._run_population_hook()
        return event

    def user_ids(self) -> List[str]:
        """Registered user ids, sorted."""
        return sorted(self._users)

    # -- versions -------------------------------------------------------------

    @property
    def write_lock(self):
        """The tenant's writer lock (the KB chain's own reentrant lock)."""
        return self.kb.write_lock

    def head_pair(self) -> Tuple[str, str]:
        """The latest adjacent version pair ``(old_id, new_id)``.

        This is the *admission snapshot*: the serving layer captures it when
        a request arrives, and the request scores exactly that pair no
        matter how many versions a writer commits before the worker pool
        gets to it.
        """
        ids = self.kb.version_ids()
        if len(ids) < 2:
            raise ServiceError(
                f"tenant {self.name!r} needs at least two versions to recommend on"
            )
        return ids[-2], ids[-1]

    def commit(
        self,
        graph: Graph,
        version_id: str | None = None,
        metadata: Dict[str, str] | None = None,
    ) -> Version:
        """Commit ``graph`` as the tenant's next version (single writer)."""
        with self.write_lock:
            version = self.kb.commit(graph, version_id=version_id, metadata=metadata)
            self._run_commit_hook(version)
            if self._metrics is not None:
                self._metrics.record_commit(self.name)
            return version

    def commit_changes(
        self,
        added: Iterable[Triple] = (),
        deleted: Iterable[Triple] = (),
        version_id: str | None = None,
        metadata: Dict[str, str] | None = None,
    ) -> Version:
        """Commit the next version as latest + changes (single writer)."""
        with self.write_lock:
            version = self.kb.commit_changes(
                added=added, deleted=deleted, version_id=version_id, metadata=metadata
            )
            self._run_commit_hook(version)
            if self._metrics is not None:
                self._metrics.record_commit(self.name)
            return version

    def persistence_summary(self) -> Optional[Dict[str, object]]:
        """The commit-log gauge block (None for unpersisted tenants).

        Shared by :meth:`describe` and the frozen ``/stats`` payload's
        ``per_tenant.<name>.persistence`` field -- the signal the
        "log-bytes-near-rollup" alert rule watches.
        """
        if self.store is None:
            return None
        records, size = self.store.log_stats()
        return {
            "log_records": records,
            "log_bytes": size,
            "rollup_bytes": self.store.rollup_bytes,
            "rollup_records": self.store.rollup_records,
        }

    def describe(self) -> Dict[str, object]:
        """JSON-friendly summary (the HTTP front-end's ``/tenants`` view)."""
        ids = self.kb.version_ids()
        summary: Dict[str, object] = {
            "name": self.name,
            "versions": ids,
            "latest": ids[-1] if ids else None,
            "users": self.user_ids(),
        }
        persistence = self.persistence_summary()
        if persistence is not None:
            summary["persistence"] = persistence
        return summary

    def __repr__(self) -> str:
        return f"Tenant({self.name!r}, versions={len(self.kb)}, users={len(self._users)})"


class TenantRegistry:
    """Thread-safe name -> :class:`Tenant` map.

    The registry is also the system's shard key space: the tenant name is
    the unit of placement, and :meth:`shard_of` is the one routing function
    every topology layer (the :class:`~repro.service.sharding.ShardSupervisor`,
    the HTTP router, external load balancers) agrees on.
    """

    def __init__(self) -> None:
        self._tenants: Dict[str, Tenant] = {}
        self._lock = threading.Lock()
        self._metrics: "Optional[ServiceMetrics]" = None
        self._respcache: "Optional[ResponseCache]" = None

    def attach_response_cache(self, cache: "ResponseCache") -> None:
        """Wire the response cache into this registry.

        Mirrors :meth:`attach_metrics`: every tenant (current and future)
        bumps its cache epoch on population mutations, and eviction purges
        the tenant's entries.  Called by ``RecommendationService`` when
        its config enables the cache.
        """
        with self._lock:
            self._respcache = cache
            tenants = list(self._tenants.values())
        for tenant in tenants:
            tenant._respcache = cache

    def attach_metrics(self, metrics: "ServiceMetrics") -> None:
        """Wire the ops-plane aggregator into this registry.

        Every already-registered tenant and every tenant added later
        records its commits into ``metrics``; eviction drops the
        tenant's counters.  Called by ``RecommendationService`` so a
        caller-supplied registry joins the service's ops plane too.
        """
        with self._lock:
            self._metrics = metrics
            tenants = list(self._tenants.values())
        for tenant in tenants:
            tenant._metrics = metrics

    # -- shard routing --------------------------------------------------------

    @staticmethod
    def shard_of(name: str, n_shards: int) -> int:
        """The shard index owning tenant ``name`` out of ``n_shards``.

        Stable across processes, hosts and Python versions (CRC-32 of the
        UTF-8 name, *not* the salted builtin ``hash``), so a router and its
        shard processes always agree on placement without coordination.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        return zlib.crc32(name.encode("utf-8")) % n_shards

    def shard_map(self, n_shards: int) -> Dict[int, List[str]]:
        """Registered tenant names grouped by owning shard (sorted names)."""
        mapping: Dict[int, List[str]] = {shard: [] for shard in range(n_shards)}
        for name in self.names():
            mapping[self.shard_of(name, n_shards)].append(name)
        return mapping

    def add(
        self,
        name: str,
        kb: VersionedKnowledgeBase,
        users: Iterable[User] = (),
        feedback: FeedbackStore | None = None,
        engine_config: EngineConfig | None = None,
        on_commit: Callable[[Version], None] | None = None,
        on_close: Callable[[], None] | None = None,
        on_population_change: Callable[[], None] | None = None,
        store=None,
    ) -> Tenant:
        """Register a tenant; duplicate names are rejected."""
        tenant = Tenant(
            name,
            kb,
            users,
            feedback,
            engine_config,
            on_commit,
            on_close,
            on_population_change=on_population_change,
            store=store,
        )
        with self._lock:
            if name in self._tenants:
                raise ServiceError(f"duplicate tenant name: {name!r}")
            tenant._metrics = self._metrics
            tenant._respcache = self._respcache
            self._tenants[name] = tenant
        return tenant

    def get(self, name: str) -> Tenant:
        """The tenant named ``name`` (raises :class:`UnknownTenantError`)."""
        tenant = self._tenants.get(name)
        if tenant is None:
            raise UnknownTenantError(
                f"unknown tenant {name!r} (have: {', '.join(self.names()) or 'none'})"
            )
        return tenant

    def remove(self, name: str) -> Optional[Tenant]:
        """Deregister a tenant, run its close hook, return it (None if absent)."""
        with self._lock:
            tenant = self._tenants.pop(name, None)
            metrics = self._metrics
            respcache = self._respcache
        if tenant is not None:
            tenant.close()
            if metrics is not None:
                # A re-registered name is a *new* tenant (the admission
                # key already says so); its counters must start at zero.
                metrics.forget(name)
            if respcache is not None:
                # Same rule for cached bodies: a new KB under the old name
                # may even reuse version ids, so nothing may survive.
                respcache.forget_tenant(name)
        return tenant

    def close_all(self) -> None:
        """Run every registered tenant's close hook (tenants stay registered).

        The service-shutdown half of the resource-lifetime contract: a
        closed service keeps answering introspection (``tenants()``) but
        releases what its tenants held open (lazy store maps, etc.).
        """
        with self._lock:
            tenants = list(self._tenants.values())
        for tenant in tenants:
            tenant.close()

    def names(self) -> List[str]:
        """Registered tenant names, sorted."""
        return sorted(self._tenants)

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, name: object) -> bool:
        return name in self._tenants

    def __iter__(self):
        return iter([self._tenants[name] for name in self.names()])
