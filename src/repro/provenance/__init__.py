"""Provenance substrate (system S13): transparency, Section III.b.

A PROV-DM-style model, an in-memory store answering the paper's three
provenance question templates, and a workflow engine that captures
provenance automatically while running tasks.
"""

from repro.provenance.model import (
    Activity,
    Agent,
    Entity,
    Relation,
    RelationKind,
    fresh_id,
)
from repro.provenance.store import ProvenanceError, ProvenanceStore
from repro.provenance.workflow import TaskRun, Workflow

__all__ = [
    "Activity",
    "Agent",
    "Entity",
    "Relation",
    "RelationKind",
    "fresh_id",
    "ProvenanceError",
    "ProvenanceStore",
    "TaskRun",
    "Workflow",
]
