"""A tiny workflow engine with automatic provenance capture.

Section III.b: "usually workflow systems are employed.  They support the
automation of repetitive tasks, as well as they can capture complex analysis
processes at various levels of detail and systematically capture provenance
information for the derived data items."

A :class:`Workflow` is a sequence of named tasks.  Running a task through the
workflow records, in a :class:`~repro.provenance.store.ProvenanceStore`:

* one ``Activity`` per task run (with wall-clock start/end),
* ``used`` edges to every input entity,
* one output ``Entity`` with a ``wasGeneratedBy`` edge and
  ``wasDerivedFrom`` edges to the inputs,
* ``wasAssociatedWith`` the workflow's agent.

The recommendation engine uses this to make every recommendation package
fully explainable (E9 measures the overhead of exactly this capture).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.provenance.model import Activity, Agent, Entity, fresh_id
from repro.provenance.store import ProvenanceStore


@dataclass(frozen=True)
class TaskRun:
    """Outcome of one workflow task: the value plus its provenance handles."""

    value: Any
    output: Entity
    activity: Activity


class Workflow:
    """Runs callables as provenance-tracked tasks.

    ``store=None`` disables capture entirely (zero overhead), which is the
    control condition of experiment E9.
    """

    def __init__(
        self,
        name: str,
        store: ProvenanceStore | None = None,
        agent: Agent | None = None,
    ) -> None:
        if not name:
            raise ValueError("workflow name must be non-empty")
        self.name = name
        self._store = store
        self._agent = agent or Agent(agent_id=f"workflow:{name}", label=name)
        if self._store is not None:
            self._store.add_agent(self._agent)

    @property
    def capturing(self) -> bool:
        """True when provenance capture is enabled."""
        return self._store is not None

    @property
    def store(self) -> ProvenanceStore | None:
        """The provenance store (None when capture is disabled)."""
        return self._store

    def register_input(self, label: str, attributes: Dict[str, str] | None = None) -> Entity:
        """Register an external input (a version snapshot, a profile, ...)."""
        entity = Entity(fresh_id("entity"), label=label, attributes=attributes or {})
        if self._store is not None:
            self._store.add_entity(entity)
        return entity

    def run_task(
        self,
        label: str,
        func: Callable[..., Any],
        inputs: Sequence[Entity] = (),
        args: Tuple = (),
        kwargs: Dict[str, Any] | None = None,
        output_label: str | None = None,
    ) -> TaskRun:
        """Execute ``func(*args, **kwargs)`` as a tracked task.

        ``inputs`` are the provenance entities the task consumes; ``args`` /
        ``kwargs`` are the actual Python arguments (the two are decoupled so
        that large values need not be wrapped as entities).
        """
        kwargs = kwargs or {}
        started = time.time()
        value = func(*args, **kwargs)
        ended = time.time()

        activity = Activity(
            fresh_id("activity"),
            label=f"{self.name}:{label}",
            started_at=started,
            ended_at=ended,
        )
        output = Entity(fresh_id("entity"), label=output_label or f"{label}:output")

        if self._store is not None:
            self._store.add_activity(activity)
            self._store.add_entity(output)
            self._store.was_associated_with(activity.activity_id, self._agent.agent_id)
            for entity in inputs:
                self._store.used(activity.activity_id, entity.entity_id)
                self._store.was_derived_from(output.entity_id, entity.entity_id)
            self._store.was_generated_by(output.entity_id, activity.activity_id, at_time=ended)

        return TaskRun(value=value, output=output, activity=activity)

    def explain(self, entity_id: str) -> List[str]:
        """Human-readable answers to the paper's three provenance questions."""
        if self._store is None:
            return ["provenance capture is disabled for this workflow"]
        lines: List[str] = []
        created = self._store.who_created(entity_id)
        if created is not None:
            agent, when = created
            when_str = f" at {when:.3f}" if when is not None else ""
            lines.append(f"created by {agent.label or agent.agent_id}{when_str}")
        for agent, when in self._store.who_modified(entity_id):
            when_str = f" at {when:.3f}" if when is not None else ""
            lines.append(f"modified by {agent.label or agent.agent_id}{when_str}")
        for activity in self._store.derivation_process(entity_id):
            lines.append(f"produced by process {activity.label or activity.activity_id}")
        return lines or [f"no provenance recorded for {entity_id!r}"]
