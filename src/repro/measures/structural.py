"""Section II.c -- structural importance shifts.

"A shift in one node's Bridging Centrality or Betweenness among V1 and V2
could capture how the different changes on a dataset affected the topology
around this specific node."

Both measures build the class-level graph of each version (subsumption +
property domain/range edges), compute the centrality in each, and score each
class by the absolute difference.  Classes absent from a version have
centrality 0 there, so newly appearing or vanishing hub classes score high.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Mapping, Tuple

from repro.graphtools.adjacency import UndirectedGraph
from repro.graphtools.betweenness import normalize_betweenness, raw_betweenness
from repro.graphtools.bridging import bridging_centrality
from repro.graphtools.incremental import (
    DEFAULT_FALLBACK_RATIO,
    edge_key_set,
    update_raw_betweenness,
)
from repro.kb.schema import SchemaView
from repro.kb.terms import IRI
from repro.measures.base import (
    EvolutionContext,
    EvolutionMeasure,
    MeasureFamily,
    MeasureResult,
    TargetKind,
)

CentralityFn = Callable[[UndirectedGraph], Mapping[Hashable, float]]

#: Schema-memo keys of the structural artefact: the class graph with its
#: normalized betweenness map, and the raw (unnormalized) scores the
#: incremental maintenance path chains on.
BETWEENNESS_KEY = "structural:betweenness"
RAW_BETWEENNESS_KEY = "structural:betweenness:raw"
EDGE_KEYS_KEY = "structural:betweenness:edges"
BRIDGING_KEY = "structural:bridging"

#: Share of the class graph the delta may touch before incremental
#: maintenance falls back to a full Brandes pass.
FALLBACK_RATIO = DEFAULT_FALLBACK_RATIO


def class_graph(schema: SchemaView) -> UndirectedGraph:
    """The class-level graph of one version (every class is a node).

    Nodes and edges are inserted in sorted IRI order, so the graph's
    iteration order -- and with it every float accumulation downstream
    (betweenness, bridging coefficients) -- is a pure function of the
    schema content.  The incremental betweenness path relies on this to
    carry per-component scores across versions bit-for-bit.
    """
    graph = UndirectedGraph(nodes=sorted(schema.classes(), key=lambda c: c.value))
    for a, b in sorted(schema.class_edges(), key=lambda e: (e[0].value, e[1].value)):
        graph.add_edge(a, b)
    return graph


def betweenness_artefact(schema: SchemaView) -> Tuple[UndirectedGraph, Mapping]:
    """The ``(class graph, normalized betweenness)`` artefact of one version.

    Memoised on the :class:`SchemaView` snapshot, so Brandes runs at most
    once per version -- and, when the view carries a parent hint (versioned
    KBs seed it at commit), usually not even that: the parent's raw scores
    are updated through :func:`~repro.graphtools.incremental.update_raw_betweenness`,
    recomputing only the components the delta touched.

    First fill runs under the view's lock (:meth:`SchemaView.memoize`), so
    concurrent serving threads hitting a cold version share one Brandes /
    incremental-update pass.  The raw-score and edge-key side artefacts
    publish before the normalized map, so a parent cache observed by a child
    fill is never half-written.
    """

    def _build():
        graph = class_graph(schema)
        edge_keys = edge_key_set(graph)
        raw = None
        hint = schema.parent_hint()
        if hint is not None:
            parent = hint[0]
            parent_graph_map = parent.memo.get(BETWEENNESS_KEY)
            parent_raw = parent.memo.get(RAW_BETWEENNESS_KEY)
            if parent_graph_map is not None and parent_raw is not None:
                update = update_raw_betweenness(
                    graph,
                    parent_graph_map[0],
                    parent_raw,
                    FALLBACK_RATIO,
                    edge_keys=edge_keys,
                    base_edge_keys=parent.memo.get(EDGE_KEYS_KEY),
                )
                raw = update.raw
        if raw is None:
            raw = raw_betweenness(graph)
        memo = schema.memo
        memo[RAW_BETWEENNESS_KEY] = raw
        memo[EDGE_KEYS_KEY] = edge_keys
        return (graph, normalize_betweenness(raw, len(graph)))

    return schema.memoize(BETWEENNESS_KEY, _build)


def bridging_scores(schema: SchemaView) -> Mapping:
    """Bridging centrality of every class of one version, memoised on the view."""

    def _build():
        graph, betweenness = betweenness_artefact(schema)
        return bridging_centrality(graph, betweenness=dict(betweenness))

    return schema.memoize(BRIDGING_KEY, _build)


def _graph_and_betweenness(context: EvolutionContext, which: str):
    """The class graph and betweenness map of one side, memoised on the schema.

    Both structural measures need the same betweenness scores, and the same
    version typically appears in many contexts (adjacent pairs share a
    side; benchmark loops rebuild contexts); memoising on the
    :class:`SchemaView` snapshot computes betweenness once per version, ever.
    The context memo keeps a reference for backwards compatibility.
    """
    context_key = f"structural:betweenness:{which}"
    if context_key not in context.memo:
        schema = context.old_schema if which == "old" else context.new_schema
        context.memo[context_key] = betweenness_artefact(schema)
    return context.memo[context_key]


class _CentralityShift(EvolutionMeasure):
    """Shared implementation: |centrality_V2(n) - centrality_V1(n)|."""

    family = MeasureFamily.STRUCTURAL
    target_kind = TargetKind.CLASS

    @staticmethod
    def _side_scores(schema: SchemaView) -> Mapping:
        raise NotImplementedError

    def compute(self, context: EvolutionContext) -> MeasureResult:
        # Touching the artefacts through the context keeps the per-context
        # memo references warm for callers that inspect them.
        _graph_and_betweenness(context, "old")
        _graph_and_betweenness(context, "new")
        old_scores = self._side_scores(context.old_schema)
        new_scores = self._side_scores(context.new_schema)
        shifts: Dict[IRI, float] = {}
        for cls in context.union_classes():
            shifts[cls] = abs(new_scores.get(cls, 0.0) - old_scores.get(cls, 0.0))
        return self._result(shifts)


class BetweennessShift(_CentralityShift):
    """Absolute change of betweenness centrality between the two versions."""

    name = "betweenness_shift"
    description = (
        "Absolute difference of the class's betweenness centrality in the "
        "class graphs of the two versions (Section II.c)."
    )

    @staticmethod
    def _side_scores(schema: SchemaView) -> Mapping:
        return betweenness_artefact(schema)[1]


class BridgingCentralityShift(_CentralityShift):
    """Absolute change of bridging centrality between the two versions."""

    name = "bridging_centrality_shift"
    description = (
        "Absolute difference of the class's bridging centrality (betweenness "
        "times bridging coefficient) between the two versions (Section II.c)."
    )

    @staticmethod
    def _side_scores(schema: SchemaView) -> Mapping:
        return bridging_scores(schema)
