"""Section II.c -- structural importance shifts.

"A shift in one node's Bridging Centrality or Betweenness among V1 and V2
could capture how the different changes on a dataset affected the topology
around this specific node."

Both measures build the class-level graph of each version (subsumption +
property domain/range edges), compute the centrality in each, and score each
class by the absolute difference.  Classes absent from a version have
centrality 0 there, so newly appearing or vanishing hub classes score high.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Mapping

from repro.graphtools.adjacency import UndirectedGraph
from repro.graphtools.betweenness import betweenness_centrality
from repro.graphtools.bridging import bridging_centrality
from repro.kb.schema import SchemaView
from repro.kb.terms import IRI
from repro.measures.base import (
    EvolutionContext,
    EvolutionMeasure,
    MeasureFamily,
    MeasureResult,
    TargetKind,
)

CentralityFn = Callable[[UndirectedGraph], Mapping[Hashable, float]]


def class_graph(schema: SchemaView) -> UndirectedGraph:
    """The class-level graph of one version (every class is a node)."""
    graph = UndirectedGraph(nodes=schema.classes())
    for a, b in schema.class_edges():
        graph.add_edge(a, b)
    return graph


def _graph_and_betweenness(context: EvolutionContext, which: str):
    """The class graph and betweenness map of one side, memoised on the schema.

    Both structural measures need the same betweenness scores, and the same
    version typically appears in many contexts (adjacent pairs share a
    side; benchmark loops rebuild contexts); memoising on the immutable
    :class:`SchemaView` snapshot computes Brandes once per version, ever.
    The context memo keeps a reference for backwards compatibility.
    """
    context_key = f"structural:betweenness:{which}"
    if context_key not in context.memo:
        schema = context.old_schema if which == "old" else context.new_schema
        schema_key = "structural:betweenness"
        if schema_key not in schema.memo:
            graph = class_graph(schema)
            schema.memo[schema_key] = (graph, betweenness_centrality(graph))
        context.memo[context_key] = schema.memo[schema_key]
    return context.memo[context_key]


class _CentralityShift(EvolutionMeasure):
    """Shared implementation: |centrality_V2(n) - centrality_V1(n)|."""

    family = MeasureFamily.STRUCTURAL
    target_kind = TargetKind.CLASS

    @staticmethod
    def _scores(graph: UndirectedGraph, betweenness: Mapping) -> Mapping:
        raise NotImplementedError

    def compute(self, context: EvolutionContext) -> MeasureResult:
        old_graph, old_betweenness = _graph_and_betweenness(context, "old")
        new_graph, new_betweenness = _graph_and_betweenness(context, "new")
        old_scores = self._scores(old_graph, old_betweenness)
        new_scores = self._scores(new_graph, new_betweenness)
        shifts: Dict[IRI, float] = {}
        for cls in context.union_classes():
            shifts[cls] = abs(new_scores.get(cls, 0.0) - old_scores.get(cls, 0.0))
        return self._result(shifts)


class BetweennessShift(_CentralityShift):
    """Absolute change of betweenness centrality between the two versions."""

    name = "betweenness_shift"
    description = (
        "Absolute difference of the class's betweenness centrality in the "
        "class graphs of the two versions (Section II.c)."
    )

    @staticmethod
    def _scores(graph: UndirectedGraph, betweenness: Mapping) -> Mapping:
        return betweenness


class BridgingCentralityShift(_CentralityShift):
    """Absolute change of bridging centrality between the two versions."""

    name = "bridging_centrality_shift"
    description = (
        "Absolute difference of the class's bridging centrality (betweenness "
        "times bridging coefficient) between the two versions (Section II.c)."
    )

    @staticmethod
    def _scores(graph: UndirectedGraph, betweenness: Mapping) -> Mapping:
        return bridging_centrality(graph, betweenness=dict(betweenness))
