"""Schema summaries: the "ontology understanding without tears" approach.

The paper's semantic measures come from its authors' summarisation line
(Troullinou et al. [15]): pick the most *relevant* classes of a version and
connect them into a small summary schema a human can actually read.  This
module implements that consumer of the Section II.d machinery:

* :func:`schema_summary` -- the top-k relevant classes of one version plus
  the paths connecting them (through at most one intermediate class),
* :func:`evolution_summary` -- the same construction, but selecting classes
  by an *evolution measure* on a version pair: a summary of what changed,
  which is precisely the "high-level overview of the changes" the paper
  wants to hand to humans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.graphtools.adjacency import UndirectedGraph
from repro.graphtools.traversal import bfs_distances
from repro.kb.schema import SchemaView
from repro.kb.terms import IRI
from repro.measures.base import EvolutionContext, EvolutionMeasure, MeasureResult
from repro.measures.semantic import relevance
from repro.measures.structural import class_graph


@dataclass(frozen=True)
class SchemaSummary:
    """A compact view: selected classes, their scores, connecting edges.

    ``edges`` are undirected class pairs included to keep the summary
    connected; they may pass through at most one non-selected *connector*
    class (listed in ``connectors``).
    """

    classes: Tuple[IRI, ...]  # selected, score-descending
    scores: Dict[IRI, float]
    edges: FrozenSet[Tuple[IRI, IRI]]
    connectors: FrozenSet[IRI]

    def __len__(self) -> int:
        return len(self.classes)

    def describe(self) -> List[str]:
        """Human-readable lines, most important class first."""
        lines = [
            f"{cls.local_name} (score {self.scores[cls]:.3f})" for cls in self.classes
        ]
        if self.connectors:
            names = ", ".join(sorted(c.local_name for c in self.connectors))
            lines.append(f"(+ connectors: {names})")
        return lines


def _connect(
    selected: List[IRI], graph: UndirectedGraph
) -> Tuple[Set[Tuple[IRI, IRI]], Set[IRI]]:
    """Edges and 1-hop connectors linking the selected classes."""
    edges: Set[Tuple[IRI, IRI]] = set()
    connectors: Set[IRI] = set()
    selected_set = set(selected)

    def undirected(a: IRI, b: IRI) -> Tuple[IRI, IRI]:
        return (a, b) if a.value <= b.value else (b, a)

    for index, cls in enumerate(selected):
        if cls not in graph:
            continue
        distances = bfs_distances(graph, cls)
        for other in selected[index + 1 :]:
            hops = distances.get(other)
            if hops == 1:
                edges.add(undirected(cls, other))
            elif hops == 2:
                # One connector in between keeps the summary readable.
                for middle in graph.neighbors(cls):
                    if other in graph.neighbors(middle):
                        edges.add(undirected(cls, middle))
                        edges.add(undirected(middle, other))
                        if middle not in selected_set:
                            connectors.add(middle)
                        break
    return edges, connectors


def summary_from_result(
    result: MeasureResult, schema: SchemaView, k: int
) -> SchemaSummary:
    """Build a summary from any measure result over ``schema``'s classes."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    top = [(cls, score) for cls, score in result.top(k) if score > 0.0]
    selected = [cls for cls, _ in top]
    edges, connectors = _connect(selected, class_graph(schema))
    return SchemaSummary(
        classes=tuple(selected),
        scores={cls: score for cls, score in top},
        edges=frozenset(edges),
        connectors=frozenset(connectors),
    )


def schema_summary(schema: SchemaView, k: int = 10) -> SchemaSummary:
    """The top-``k`` *relevant* classes of one version, connected.

    Relevance is the Section II.d semantic relevance; this is the [15]
    construction: summarise a knowledge base by its most relevant classes.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    scores = {cls: relevance(schema, cls) for cls in schema.classes()}
    ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0].value))
    selected = [cls for cls, score in ranked[:k] if score > 0.0]
    edges, connectors = _connect(selected, class_graph(schema))
    return SchemaSummary(
        classes=tuple(selected),
        scores={cls: scores[cls] for cls in selected},
        edges=frozenset(edges),
        connectors=frozenset(connectors),
    )


def evolution_summary(
    context: EvolutionContext, measure: EvolutionMeasure, k: int = 10
) -> SchemaSummary:
    """A summary of *what changed*: top-``k`` classes by an evolution measure.

    The connecting structure comes from the new version's schema (the state
    the human is looking at now).
    """
    result = measure.compute(context)
    return summary_from_result(result, context.new_schema, k)
