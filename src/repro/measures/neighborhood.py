"""Section II.b -- number of changes in class neighbourhoods.

For a class ``n`` the paper defines the two-version neighbourhood
``N_{V1,V2}(n)`` as the classes related to ``n`` -- via subsumption or via a
property's domain/range -- *in either version*, and the measure::

    |delta N_{V1,V2}(n)| = sum_{c in N_{V1,V2}(n)} delta_{V1,V2}(c)

i.e. the total change count over the neighbourhood.  It captures whether
"the topology of the knowledge base changed in a particular area".
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.kb.terms import IRI
from repro.measures.base import (
    EvolutionContext,
    EvolutionMeasure,
    MeasureFamily,
    MeasureResult,
    TargetKind,
)


def two_version_neighborhood(context: EvolutionContext, cls: IRI) -> FrozenSet[IRI]:
    """``N_{V1,V2}(n)``: union of the class's neighbourhoods in both versions."""
    neighbourhood: Set[IRI] = set()
    for schema in (context.old_schema, context.new_schema):
        if cls in schema.classes():
            neighbourhood |= schema.neighborhood(cls)
    neighbourhood.discard(cls)
    return frozenset(neighbourhood)


class NeighborhoodChangeCount(EvolutionMeasure):
    """Total ``delta(c)`` over the two-version neighbourhood of each class.

    ``include_self=True`` additionally counts the class's own changes, which
    turns the measure into "changes in the area around and including n";
    the paper's definition sums over neighbours only (the default).
    """

    name = "neighborhood_change_count"
    family = MeasureFamily.NEIGHBORHOOD
    target_kind = TargetKind.CLASS
    description = (
        "Sum of change counts over the classes related to this class via "
        "subsumption or properties in either version (Section II.b)."
    )

    def __init__(self, include_self: bool = False) -> None:
        self._include_self = include_self
        if include_self:
            # Distinct configuration -> distinct catalogue identity.
            self.name = "neighborhood_change_count_with_self"

    def compute(self, context: EvolutionContext) -> MeasureResult:
        counts = context.change_counts()
        scores: Dict[IRI, float] = {}
        for cls in context.union_classes():
            total = sum(
                counts.get(neighbour, 0)
                for neighbour in two_version_neighborhood(context, cls)
            )
            if self._include_self:
                total += counts.get(cls, 0)
            scores[cls] = float(total)
        return self._result(scores)
