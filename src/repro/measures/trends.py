"""Trend analysis over version chains.

The paper's introduction promises to help humans "observe changes trends and
identify the most changed parts of a knowledge base".  A single delta shows
one step; a *trend* shows how a measure's score for a class develops across
the whole chain -- is an area heating up, cooling down, or spiking?

:func:`measure_series` evaluates one measure on every consecutive version
pair; :class:`TrendAnalysis` fits a least-squares slope per target and
classifies each as ``rising`` / ``falling`` / ``spiking`` / ``steady``.
The classification thresholds are relative to each target's own mean score,
so populous and sparse classes are treated comparably.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.kb.errors import VersionError
from repro.kb.terms import IRI
from repro.kb.version import VersionedKnowledgeBase
from repro.measures.base import EvolutionContext, EvolutionMeasure


class TrendKind(enum.Enum):
    """How a target's evolution intensity develops over the chain."""

    RISING = "rising"  # consistent upward slope
    FALLING = "falling"  # consistent downward slope
    SPIKING = "spiking"  # one step dominates the whole series
    STEADY = "steady"  # no significant movement


@dataclass(frozen=True)
class Trend:
    """One target's trend: the series, its slope, and its classification."""

    target: IRI
    series: Tuple[float, ...]
    slope: float
    kind: TrendKind

    @property
    def total(self) -> float:
        """Sum of the series (total evolution intensity over the chain)."""
        return sum(self.series)

    @property
    def peak_step(self) -> int:
        """0-based index of the step with the highest score."""
        return max(range(len(self.series)), key=lambda i: self.series[i])


def measure_series(
    kb: VersionedKnowledgeBase, measure: EvolutionMeasure
) -> Dict[IRI, List[float]]:
    """Evaluate ``measure`` on every consecutive version pair.

    Returns, per target, the per-step score series (length ``len(kb) - 1``).
    Targets missing from a step's result score 0.0 there.  Raises
    :class:`~repro.kb.errors.VersionError` for chains shorter than two
    versions.
    """
    if len(kb) < 2:
        raise VersionError("trend analysis needs at least two versions")
    step_results = [
        measure.compute(EvolutionContext(old, new)) for old, new in kb.pairs()
    ]
    targets = set()
    for result in step_results:
        targets.update(result.scores)
    return {
        target: [result.score(target) for result in step_results]
        for target in targets
    }


def _least_squares_slope(series: Sequence[float]) -> float:
    """Slope of the ordinary-least-squares line through (step, score)."""
    n = len(series)
    if n < 2:
        return 0.0
    mean_x = (n - 1) / 2.0
    mean_y = sum(series) / n
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in enumerate(series))
    denominator = sum((x - mean_x) ** 2 for x in range(n))
    return numerator / denominator if denominator else 0.0


class TrendAnalysis:
    """Classified trends of one measure over a version chain.

    ``slope_threshold`` is the relative slope (per step, as a fraction of
    the target's mean score) above which a series counts as rising/falling;
    ``spike_ratio`` is how much of the series' total a single step must
    carry to count as a spike.
    """

    def __init__(
        self,
        kb: VersionedKnowledgeBase,
        measure: EvolutionMeasure,
        slope_threshold: float = 0.25,
        spike_ratio: float = 0.75,
    ) -> None:
        if not 0.0 < spike_ratio <= 1.0:
            raise ValueError(f"spike_ratio must be in (0, 1], got {spike_ratio}")
        if slope_threshold < 0.0:
            raise ValueError(f"slope_threshold must be >= 0, got {slope_threshold}")
        self._measure = measure
        self._slope_threshold = slope_threshold
        self._spike_ratio = spike_ratio
        self._trends: Dict[IRI, Trend] = {}
        for target, series in measure_series(kb, measure).items():
            self._trends[target] = self._classify(target, series)

    def _classify(self, target: IRI, series: List[float]) -> Trend:
        slope = _least_squares_slope(series)
        total = sum(series)
        mean = total / len(series) if series else 0.0
        kind = TrendKind.STEADY
        if total > 0.0:
            peak = max(series)
            if len(series) >= 3 and peak / total >= self._spike_ratio:
                kind = TrendKind.SPIKING
            elif mean > 0.0 and slope / mean >= self._slope_threshold:
                kind = TrendKind.RISING
            elif mean > 0.0 and slope / mean <= -self._slope_threshold:
                kind = TrendKind.FALLING
        return Trend(target=target, series=tuple(series), slope=slope, kind=kind)

    @property
    def measure_name(self) -> str:
        """The analysed measure's name."""
        return self._measure.name

    def trend(self, target: IRI) -> Trend:
        """The trend of one target (raises ``KeyError`` if never scored)."""
        if target not in self._trends:
            raise KeyError(f"{target} was never scored by {self._measure.name}")
        return self._trends[target]

    def by_kind(self, kind: TrendKind) -> List[Trend]:
        """All trends of one kind, strongest (|slope|, total) first."""
        matching = [t for t in self._trends.values() if t.kind is kind]
        matching.sort(key=lambda t: (-abs(t.slope), -t.total, t.target.value))
        return matching

    def hottest(self, k: int) -> List[Trend]:
        """The ``k`` targets with the highest total intensity over the chain."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        ranked = sorted(
            self._trends.values(), key=lambda t: (-t.total, t.target.value)
        )
        return ranked[:k]

    def __len__(self) -> int:
        return len(self._trends)

    def __iter__(self):
        return iter(self._trends.values())
