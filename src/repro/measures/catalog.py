"""The default measure catalogue: every Section II exemplar measure."""

from __future__ import annotations

from repro.measures.base import MeasureCatalog
from repro.measures.counts import ClassChangeCount, PropertyChangeCount
from repro.measures.neighborhood import NeighborhoodChangeCount
from repro.measures.semantic import (
    InOutCentralityShift,
    PropertyCardinalityShift,
    RelevanceShift,
)
from repro.measures.structural import BetweennessShift, BridgingCentralityShift


def default_catalog() -> MeasureCatalog:
    """The eight-measure catalogue covering Section II paragraphs a-d.

    ============================== =====================================
    measure                        paper paragraph
    ============================== =====================================
    class_change_count             II.a (classes)
    property_change_count          II.a (properties)
    neighborhood_change_count      II.b
    betweenness_shift              II.c (betweenness)
    bridging_centrality_shift      II.c (bridging centrality)
    centrality_shift               II.d (in/out-centrality)
    relevance_shift                II.d (relevance)
    property_cardinality_shift     II.d (property extension)
    ============================== =====================================
    """
    catalog = MeasureCatalog()
    catalog.register(ClassChangeCount())
    catalog.register(PropertyChangeCount())
    catalog.register(NeighborhoodChangeCount())
    catalog.register(BetweennessShift())
    catalog.register(BridgingCentralityShift())
    catalog.register(InOutCentralityShift())
    catalog.register(RelevanceShift())
    catalog.register(PropertyCardinalityShift())
    return catalog
