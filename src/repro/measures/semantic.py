"""Section II.d -- semantic importance measures and their shifts.

The paper sketches (following Troullinou et al. [15], the "RDF Digest"
summarisation line) three semantic notions, which we instantiate precisely:

Relative cardinality
    ``RC(e(n, ni))`` of a property edge ``e`` connecting classes ``n`` and
    ``ni``: the number of instance-level connections between the two classes
    through ``e``, divided by the total number of instance-level links that
    instances of the two classes participate in.  In [0, 1] by construction.

In/out-centrality
    ``Cin(n)`` / ``Cout(n)``: the sum of the relative cardinalities of the
    incoming / outgoing schema property edges of ``n``.  This combines the
    data distribution (through RC) with the number of incoming/outgoing
    properties (through the sum), exactly as the paper describes.

Relevance
    Extends centrality with the neighbourhood and the instance population:

        relevance(n) = (C(n) + mean_{m in N(n)} C(m)) * log2(1 + |I(n)|)

    where ``C = Cin + Cout``, ``N(n)`` is the schema neighbourhood of ``n``
    and ``|I(n)|`` its direct instance count.  Classes with central
    neighbours and many instances are more relevant, per the paper's
    intuition ("the relevance of a class is affected by the centrality of
    the class itself, as well as by the centrality of its neighboring
    classes ... the actual data instances of the class are also considered").

The *evolution* measures score each class by the absolute difference of the
importance value between the two versions: "an indirect way of measuring the
effects of a change on a class ... is, in many cases, superior to the simple
counting of changes, because it shows the cumulative effect of these changes"
(Section II.d).  Property variants (`PropertyCardinalityShift`) implement the
paper's closing remark that the definitions extend to properties.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.kb.schema import SchemaView
from repro.kb.terms import IRI
from repro.measures.base import (
    EvolutionContext,
    EvolutionMeasure,
    MeasureFamily,
    MeasureResult,
    TargetKind,
)

#: Schema-memo keys of the semantic artefact caches.
RC_KEY = "semantic:rc"
CENTRALITY_KEY = "semantic:centrality"
RELEVANCE_KEY = "semantic:relevance"


def relative_cardinality(schema: SchemaView, prop: IRI, source: IRI, target: IRI) -> float:
    """``RC(e(source, target))`` for one property edge in one version.

    Returns 0.0 when the classes have no instance links at all (the edge
    carries no data, so it contributes no importance).

    RC is a pure function of the schema snapshot, and centrality sums query
    the same edge for both of its endpoint classes (and again per neighbour
    in :func:`relevance`), so values are memoised on ``schema.memo`` -- and
    seeded from the parent version's cache when the view carries a commit
    delta hint (see :func:`_seeded_cache`).
    """
    cache = _seeded_cache(schema, RC_KEY)
    key = (prop, source, target)
    value = cache.get(key)  # type: ignore[union-attr]
    if value is None:
        value = _relative_cardinality_uncached(schema, prop, source, target)
        cache[key] = value  # type: ignore[index]
    return value


def _relative_cardinality_uncached(
    schema: SchemaView, prop: IRI, source: IRI, target: IRI
) -> float:
    connections = schema.instance_connections(prop, source, target)
    if connections == 0:
        return 0.0
    total_links = schema.instance_link_count([source, target])
    if total_links == 0:
        return 0.0
    return connections / total_links


def in_centrality(schema: SchemaView, cls: IRI) -> float:
    """``Cin(n)``: sum of RCs of the incoming property edges of ``cls``."""
    return sum(
        relative_cardinality(schema, edge.prop, edge.source, edge.target)
        for edge in schema.incoming_properties(cls)
    )


def out_centrality(schema: SchemaView, cls: IRI) -> float:
    """``Cout(n)``: sum of RCs of the outgoing property edges of ``cls``."""
    return sum(
        relative_cardinality(schema, edge.prop, edge.source, edge.target)
        for edge in schema.outgoing_properties(cls)
    )


def _seeded_cache(schema: SchemaView, key: str) -> Dict:
    """The per-schema memo dict for ``key``, seeded from the parent view.

    On first access for a view that carries a parent hint (a versioned-KB
    commit delta), every parent cache entry whose validity region the delta
    provably did not touch is carried over, so only delta-affected values
    are ever recomputed:

    * relative cardinalities (keyed ``(prop, source, target)``) depend on
      the instance links and membership of their two endpoint classes --
      carried unless an endpoint is in :meth:`SchemaView.delta_affected_classes`;
    * centrality sums additionally depend on the class's incident schema
      edge set and *its neighbours'* cardinalities -- carried unless the
      class is in the one-hop-dilated affected set.

    Carried values are bit-identical to a cold recomputation: each is a
    deterministic arithmetic function (fixed summation order over
    value-sorted schema edges) of quantities the delta left untouched.

    Cache *creation* (with its parent seeding) runs once under the view
    lock (:meth:`SchemaView.memoize`); the per-entry fills afterwards stay
    lock-free -- racing threads can at worst recompute the same
    deterministic value and overwrite it with an identical one.
    """

    def _build() -> Dict:
        cache: Dict = {}
        hint = schema.parent_hint()
        if hint is not None:
            parent_cache = hint[0].memo.get(key)
            if parent_cache:
                if key == RC_KEY:
                    affected = schema.delta_affected_classes()
                    cache.update(
                        (edge, value)
                        for edge, value in dict(parent_cache).items()
                        if edge[1] not in affected and edge[2] not in affected
                    )
                else:
                    affected = schema.delta_affected_classes_dilated()
                    cache.update(
                        (cls, value)
                        for cls, value in dict(parent_cache).items()
                        if cls not in affected
                    )
        return cache

    return schema.memoize(key, _build)


def centrality(schema: SchemaView, cls: IRI) -> float:
    """Total semantic centrality ``C(n) = Cin(n) + Cout(n)`` (memoised)."""
    cache = _seeded_cache(schema, CENTRALITY_KEY)
    value = cache.get(cls)  # type: ignore[union-attr]
    if value is None:
        value = in_centrality(schema, cls) + out_centrality(schema, cls)
        cache[cls] = value  # type: ignore[index]
    return value


def relevance(schema: SchemaView, cls: IRI) -> float:
    """Semantic relevance of ``cls`` in one version (see module docstring).

    Memoised per view (the same version's view serves every context that
    touches it), but *not* seeded across versions: relevance folds in the
    neighbourhood's centralities and the transitive instance population,
    whose change region is much wider than the per-class delta footprint.
    """
    cache = schema.memoize(RELEVANCE_KEY, dict)
    value = cache.get(cls)
    if value is None:
        own = centrality(schema, cls)
        neighbours = schema.neighborhood(cls)
        if neighbours:
            # Sorted accumulation: the neighbourhood is a frozenset, whose
            # iteration order follows the per-process hash salt, and float
            # addition is not associative -- an unsorted sum can drift by
            # an ulp between processes, breaking the serving layer's
            # cross-process bit-identity contract.
            neighbour_term = sum(
                sorted(centrality(schema, m) for m in neighbours)
            ) / len(neighbours)
        else:
            neighbour_term = 0.0
        population = schema.instance_count(cls, transitive=True)
        value = (own + neighbour_term) * math.log2(1 + population)
        cache[cls] = value
    return value


class _SemanticShift(EvolutionMeasure):
    """Shared implementation: |importance_V2(n) - importance_V1(n)|."""

    family = MeasureFamily.SEMANTIC
    target_kind = TargetKind.CLASS

    @staticmethod
    def _importance(schema: SchemaView, cls: IRI) -> float:
        raise NotImplementedError

    def compute(self, context: EvolutionContext) -> MeasureResult:
        old_schema, new_schema = context.old_schema, context.new_schema
        old_classes, new_classes = old_schema.classes(), new_schema.classes()
        shifts: Dict[IRI, float] = {}
        for cls in context.union_classes():
            before = self._importance(old_schema, cls) if cls in old_classes else 0.0
            after = self._importance(new_schema, cls) if cls in new_classes else 0.0
            shifts[cls] = abs(after - before)
        return self._result(shifts)


class InOutCentralityShift(_SemanticShift):
    """Absolute change of semantic centrality (Cin + Cout) per class."""

    name = "centrality_shift"
    description = (
        "Absolute difference of the class's semantic in/out-centrality (sum "
        "of relative cardinalities of its property edges) between versions "
        "(Section II.d)."
    )

    @staticmethod
    def _importance(schema: SchemaView, cls: IRI) -> float:
        return centrality(schema, cls)


class RelevanceShift(_SemanticShift):
    """Absolute change of semantic relevance per class."""

    name = "relevance_shift"
    description = (
        "Absolute difference of the class's relevance (centrality of the "
        "class and its neighbours, weighted by instance population) between "
        "versions (Section II.d)."
    )

    @staticmethod
    def _importance(schema: SchemaView, cls: IRI) -> float:
        return relevance(schema, cls)


class PropertyCardinalityShift(EvolutionMeasure):
    """Property-level importance shift (the paper's 'extensions' remark).

    A property's importance in one version is the sum of the relative
    cardinalities of its schema edges; the measure scores the absolute
    difference between versions.
    """

    name = "property_cardinality_shift"
    family = MeasureFamily.SEMANTIC
    target_kind = TargetKind.PROPERTY
    description = (
        "Absolute difference of the property's total relative cardinality "
        "across its domain/range edges between versions (Section II.d, "
        "property extension)."
    )

    @staticmethod
    def _importance(schema: SchemaView, prop: IRI) -> float:
        return sum(
            relative_cardinality(schema, edge.prop, edge.source, edge.target)
            for edge in schema.edges_of_property(prop)
        )

    def compute(self, context: EvolutionContext) -> MeasureResult:
        old_schema, new_schema = context.old_schema, context.new_schema
        old_props, new_props = old_schema.properties(), new_schema.properties()
        shifts: Dict[IRI, float] = {}
        for prop in context.union_properties():
            before = self._importance(old_schema, prop) if prop in old_props else 0.0
            after = self._importance(new_schema, prop) if prop in new_props else 0.0
            shifts[prop] = abs(after - before)
        return self._result(shifts)
