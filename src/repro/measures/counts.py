"""Section II.a -- number of class or property changes.

``delta(n)`` is the number of added/deleted triples in which the class (or
property) ``n`` appears.  These are the paper's baseline measures: purely
syntactic change counting.
"""

from __future__ import annotations

from repro.measures.base import (
    EvolutionContext,
    EvolutionMeasure,
    MeasureFamily,
    MeasureResult,
    TargetKind,
)


class ClassChangeCount(EvolutionMeasure):
    """``delta(n)`` for every class ``n`` existing in either version."""

    name = "class_change_count"
    family = MeasureFamily.COUNT
    target_kind = TargetKind.CLASS
    description = (
        "Number of added or deleted triples mentioning the class "
        "(Section II.a, low-level delta restricted to the class)."
    )

    def compute(self, context: EvolutionContext) -> MeasureResult:
        counts = context.change_counts()
        return self._result(
            {cls: float(counts.get(cls, 0)) for cls in context.union_classes()}
        )


class PropertyChangeCount(EvolutionMeasure):
    """``delta(p)`` for every property ``p`` existing in either version."""

    name = "property_change_count"
    family = MeasureFamily.COUNT
    target_kind = TargetKind.PROPERTY
    description = (
        "Number of added or deleted triples mentioning the property "
        "(Section II.a extended to properties)."
    )

    def compute(self, context: EvolutionContext) -> MeasureResult:
        counts = context.change_counts()
        return self._result(
            {prop: float(counts.get(prop, 0)) for prop in context.union_properties()}
        )
