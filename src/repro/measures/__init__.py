"""Evolution measures (system S8): the Section II catalogue.

Count measures (II.a), neighbourhood measures (II.b), structural importance
shifts (II.c) and semantic importance shifts (II.d), all sharing the
:class:`~repro.measures.base.EvolutionContext` /
:class:`~repro.measures.base.MeasureResult` framework.
"""

from repro.measures.base import (
    EvolutionContext,
    EvolutionMeasure,
    MeasureCatalog,
    MeasureFamily,
    MeasureResult,
    TargetKind,
)
from repro.measures.catalog import default_catalog
from repro.measures.counts import ClassChangeCount, PropertyChangeCount
from repro.measures.mix import WeightedMixMeasure, persona_mix
from repro.measures.trends import (
    Trend,
    TrendAnalysis,
    TrendKind,
    measure_series,
)
from repro.measures.neighborhood import NeighborhoodChangeCount, two_version_neighborhood
from repro.measures.semantic import (
    InOutCentralityShift,
    PropertyCardinalityShift,
    RelevanceShift,
    centrality,
    in_centrality,
    out_centrality,
    relative_cardinality,
    relevance,
)
from repro.measures.structural import (
    BetweennessShift,
    BridgingCentralityShift,
    class_graph,
)
from repro.measures.summary import (
    SchemaSummary,
    evolution_summary,
    schema_summary,
    summary_from_result,
)

__all__ = [
    "EvolutionContext",
    "EvolutionMeasure",
    "MeasureCatalog",
    "MeasureFamily",
    "MeasureResult",
    "TargetKind",
    "default_catalog",
    "ClassChangeCount",
    "PropertyChangeCount",
    "WeightedMixMeasure",
    "persona_mix",
    "Trend",
    "TrendAnalysis",
    "TrendKind",
    "measure_series",
    "NeighborhoodChangeCount",
    "two_version_neighborhood",
    "InOutCentralityShift",
    "PropertyCardinalityShift",
    "RelevanceShift",
    "centrality",
    "in_centrality",
    "out_centrality",
    "relative_cardinality",
    "relevance",
    "BetweennessShift",
    "BridgingCentralityShift",
    "class_graph",
    "SchemaSummary",
    "evolution_summary",
    "schema_summary",
    "summary_from_result",
]
