"""The evolution-measure framework: contexts, results, the measure ABC.

Section II of the paper catalogues "evolution measures that allow
quantifying the changes that particular parts of a knowledge base underwent".
Every concrete measure in this package:

* consumes an :class:`EvolutionContext` -- a pair of versions plus the cached
  low-level delta and schema views between them,
* produces a :class:`MeasureResult` -- a score per *target* (class IRI or
  property IRI), where larger means "more affected by the evolution".

Measures are registered in a :class:`MeasureCatalog` so the recommender can
enumerate, describe and evaluate them uniformly.
"""

from __future__ import annotations

import abc
import enum
import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Mapping, Tuple

from repro.deltas.lowlevel import LowLevelDelta
from repro.kb.schema import SchemaView
from repro.kb.terms import IRI
from repro.kb.version import Version


class MeasureFamily(enum.Enum):
    """The paper's grouping of measures (Section II paragraphs a-d)."""

    COUNT = "count"  # II.a: number of changes
    NEIGHBORHOOD = "neighborhood"  # II.b: changes in neighbourhoods
    STRUCTURAL = "structural"  # II.c: topology-based importance shifts
    SEMANTIC = "semantic"  # II.d: semantics-based importance shifts


class TargetKind(enum.Enum):
    """What a measure scores: classes or properties."""

    CLASS = "class"
    PROPERTY = "property"


class EvolutionContext:
    """A (V1, V2) version pair with lazily cached derived artefacts.

    Building deltas, schema views and per-term change counts once and
    sharing them across all measures keeps evaluating the whole catalogue
    linear in the size of the delta instead of quadratic.
    """

    def __init__(self, old: Version, new: Version) -> None:
        self.old = old
        self.new = new
        self._delta: LowLevelDelta | None = None
        self._change_counts: Dict | None = None
        # Contexts are shared across serving threads (the engine caches one
        # per version pair); the lock makes the lazy delta / change-count
        # fills first-fill-once instead of racing.
        self._lock = threading.Lock()
        #: Scratch cache for expensive per-version artefacts that several
        #: measures share (e.g. class graphs and betweenness scores).  Keys
        #: are namespaced strings; values are measure-defined.
        self.memo: Dict[str, object] = {}

    @property
    def delta(self) -> LowLevelDelta:
        """The low-level delta from the old to the new version.

        For adjacent version pairs the delta recorded at commit time is
        reused (no re-diffing of snapshots); any other pair diffs the two
        graphs with the integer-set fast path.
        """
        if self._delta is None:
            with self._lock:
                if self._delta is None:
                    delta = None
                    if self.new.parent is self.old:
                        delta = self.new.delta_from_parent()
                    if delta is None:
                        delta = LowLevelDelta.compute(self.old.graph, self.new.graph)
                    self._delta = delta
        return self._delta

    @property
    def old_schema(self) -> SchemaView:
        """Schema view of the old version."""
        return self.old.schema

    @property
    def new_schema(self) -> SchemaView:
        """Schema view of the new version."""
        return self.new.schema

    def change_counts(self) -> Mapping:
        """Per-term ``delta(n)`` counts, computed once."""
        if self._change_counts is None:
            counts = self.delta.change_counts()
            with self._lock:
                if self._change_counts is None:
                    self._change_counts = counts
        return self._change_counts

    def union_classes(self) -> FrozenSet[IRI]:
        """Classes existing in either version."""
        return self.old_schema.classes() | self.new_schema.classes()

    def union_properties(self) -> FrozenSet[IRI]:
        """Properties existing in either version."""
        return self.old_schema.properties() | self.new_schema.properties()

    def __repr__(self) -> str:
        return f"EvolutionContext({self.old.version_id!r} -> {self.new.version_id!r})"


@dataclass(frozen=True)
class MeasureResult:
    """Scores assigned by one measure to each of its targets.

    Scores are non-negative; larger means more affected.  ``scores`` always
    covers every target the measure considered, including zero scores, so
    rankings and set operations are well defined.
    """

    measure_name: str
    target_kind: TargetKind
    scores: Mapping[IRI, float]

    def top(self, k: int) -> List[Tuple[IRI, float]]:
        """The ``k`` highest-scoring targets, score-descending.

        Ties break by IRI value so results are deterministic.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        ranked = sorted(self.scores.items(), key=lambda kv: (-kv[1], kv[0].value))
        return ranked[:k]

    def ranking(self) -> List[IRI]:
        """All targets, most affected first (deterministic tie-break)."""
        return [t for t, _ in self.top(len(self.scores))]

    def rank_of(self, target: IRI) -> int:
        """0-based rank of ``target`` (raises ``KeyError`` if unscored)."""
        if target not in self.scores:
            raise KeyError(f"{target} was not scored by {self.measure_name}")
        return self.ranking().index(target)

    def score(self, target: IRI) -> float:
        """Score of ``target`` (0.0 for targets the measure did not score)."""
        return self.scores.get(target, 0.0)

    def normalized(self) -> "MeasureResult":
        """Scores rescaled to [0, 1] by the maximum (all-zero stays all-zero)."""
        peak = max(self.scores.values(), default=0.0)
        if peak <= 0.0:
            return self
        return MeasureResult(
            measure_name=self.measure_name,
            target_kind=self.target_kind,
            scores={t: s / peak for t, s in self.scores.items()},
        )

    def nonzero(self) -> Dict[IRI, float]:
        """Only the targets with a strictly positive score."""
        return {t: s for t, s in self.scores.items() if s > 0.0}

    def __len__(self) -> int:
        return len(self.scores)

    def __iter__(self) -> Iterator[IRI]:
        return iter(self.scores)


class EvolutionMeasure(abc.ABC):
    """Base class of every evolution measure.

    Subclasses define :attr:`name`, :attr:`family`, :attr:`target_kind`, a
    human-oriented :attr:`description` (used by the transparency perspective
    to explain recommendations) and :meth:`compute`.
    """

    #: Unique, stable identifier (used by catalogues and provenance records).
    name: str = "abstract"
    #: Which Section II family the measure belongs to.
    family: MeasureFamily = MeasureFamily.COUNT
    #: Whether the measure scores classes or properties.
    target_kind: TargetKind = TargetKind.CLASS
    #: One-sentence human-readable description.
    description: str = ""

    @abc.abstractmethod
    def compute(self, context: EvolutionContext) -> MeasureResult:
        """Score every target of ``context`` (non-negative, larger = more changed)."""

    def _result(self, scores: Mapping[IRI, float]) -> MeasureResult:
        bad = {t: s for t, s in scores.items() if s < 0.0}
        if bad:
            sample = next(iter(bad.items()))
            raise ValueError(
                f"measure {self.name} produced a negative score: {sample[0]} -> {sample[1]}"
            )
        return MeasureResult(self.name, self.target_kind, dict(scores))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass
class MeasureCatalog:
    """A named collection of evolution measures.

    The catalogue is what gets *recommended from*: the engine treats each
    (measure, target) combination as a candidate item.
    """

    measures: Dict[str, EvolutionMeasure] = field(default_factory=dict)

    def register(self, measure: EvolutionMeasure) -> EvolutionMeasure:
        """Add ``measure``; duplicate names are rejected."""
        if measure.name in self.measures:
            raise ValueError(f"duplicate measure name: {measure.name!r}")
        self.measures[measure.name] = measure
        return measure

    def get(self, name: str) -> EvolutionMeasure:
        """Look up a measure by name (raises ``KeyError`` with candidates)."""
        try:
            return self.measures[name]
        except KeyError:
            raise KeyError(
                f"unknown measure {name!r}; available: {', '.join(sorted(self.measures))}"
            ) from None

    def names(self) -> List[str]:
        """Registered measure names, sorted."""
        return sorted(self.measures)

    def by_family(self, family: MeasureFamily) -> List[EvolutionMeasure]:
        """Measures of one Section II family."""
        return [m for m in self.measures.values() if m.family is family]

    def compute_all(self, context: EvolutionContext) -> Dict[str, MeasureResult]:
        """Evaluate every measure on ``context``."""
        return {name: m.compute(context) for name, m in sorted(self.measures.items())}

    def __len__(self) -> int:
        return len(self.measures)

    def __iter__(self) -> Iterator[EvolutionMeasure]:
        return iter(self.measures.values())

    def __contains__(self, name: object) -> bool:
        return name in self.measures
