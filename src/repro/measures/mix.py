"""Measure mixes: weighted combinations of evolution measures.

Section III: the goal is "to recommend to the humans evolution measures *or
their mix* that are qualified to cover different vertical and complementary
viewpoints".  A :class:`WeightedMixMeasure` is itself an
:class:`~repro.measures.base.EvolutionMeasure`: it normalises each member's
result and combines the per-target scores with convex weights, so mixes can
be registered in a catalogue, recommended, explained and trended exactly
like primitive measures.

:func:`persona_mix` builds the natural mix for a user: member weights taken
from the profile's measure-family preferences.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping, Sequence, Tuple

from repro.kb.terms import IRI
from repro.measures.base import (
    EvolutionContext,
    EvolutionMeasure,
    MeasureCatalog,
    MeasureFamily,
    MeasureResult,
    TargetKind,
)
if TYPE_CHECKING:  # annotation-only: profiles sits above measures, and a
    # runtime import here closes the measures -> profiles -> measures cycle
    # that breaks profiles-first import orders (e.g. `import repro.service`).
    from repro.profiles.user import InterestProfile


class WeightedMixMeasure(EvolutionMeasure):
    """A convex combination of same-target-kind measures.

    Member results are normalised to [0, 1] before mixing, so a member with
    large raw magnitudes (e.g. change counts) cannot drown out a bounded one
    (e.g. normalised betweenness shifts).  Weights are normalised to sum
    to 1.
    """

    family = MeasureFamily.COUNT  # overridden per instance below

    def __init__(
        self,
        name: str,
        members: Mapping[EvolutionMeasure, float] | Sequence[Tuple[EvolutionMeasure, float]],
    ) -> None:
        pairs = list(members.items()) if isinstance(members, Mapping) else list(members)
        if not pairs:
            raise ValueError("a mix needs at least one member measure")
        if not name:
            raise ValueError("mix name must be non-empty")
        total = sum(weight for _, weight in pairs)
        if total <= 0:
            raise ValueError("mix weights must sum to a positive value")
        if any(weight < 0 for _, weight in pairs):
            raise ValueError("mix weights must be non-negative")
        kinds = {measure.target_kind for measure, _ in pairs}
        if len(kinds) != 1:
            raise ValueError(
                f"mix members must share a target kind, got {sorted(k.value for k in kinds)}"
            )
        self.name = name
        self.target_kind = kinds.pop()
        self._members: Tuple[Tuple[EvolutionMeasure, float], ...] = tuple(
            (measure, weight / total) for measure, weight in pairs
        )
        # The mix's family is its dominant member's family.
        dominant = max(self._members, key=lambda mw: mw[1])[0]
        self.family = dominant.family
        self.description = "Weighted mix: " + ", ".join(
            f"{measure.name} ({weight:.2f})" for measure, weight in self._members
        )

    @property
    def members(self) -> Tuple[Tuple[EvolutionMeasure, float], ...]:
        """The (measure, normalised weight) pairs."""
        return self._members

    def compute(self, context: EvolutionContext) -> MeasureResult:
        combined: Dict[IRI, float] = {}
        for measure, weight in self._members:
            result = measure.compute(context).normalized()
            for target, score in result.scores.items():
                combined[target] = combined.get(target, 0.0) + weight * score
        return self._result(combined)


def persona_mix(
    name: str,
    catalog: MeasureCatalog,
    profile: InterestProfile,
    target_kind: TargetKind = TargetKind.CLASS,
) -> WeightedMixMeasure:
    """The mix a profile's family preferences imply.

    Each catalogue measure of ``target_kind`` is weighted by the profile's
    preference for its family; a profile with all-zero preferences gets a
    uniform mix.
    """
    members: Dict[EvolutionMeasure, float] = {}
    for measure in catalog:
        if measure.target_kind is not target_kind:
            continue
        members[measure] = profile.family_preference(measure.family)
    if not members:
        raise ValueError(f"catalogue has no measures of kind {target_kind.value}")
    if all(weight == 0 for weight in members.values()):
        members = {measure: 1.0 for measure in members}
    return WeightedMixMeasure(name, members)
