"""Persistence: knowledge bases, users, feedback and packages on disk."""

from repro.io.storage import (
    load_feedback,
    load_graph,
    load_kb,
    load_users,
    package_to_dict,
    save_feedback,
    save_graph,
    save_kb,
    save_package,
    save_users,
)

__all__ = [
    "load_feedback",
    "load_graph",
    "load_kb",
    "load_users",
    "package_to_dict",
    "save_feedback",
    "save_graph",
    "save_kb",
    "save_package",
    "save_users",
]
