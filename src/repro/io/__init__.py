"""Persistence: knowledge bases, users, feedback and packages on disk."""

from repro.io.storage import (
    convert_kb,
    load_feedback,
    load_graph,
    load_kb,
    load_users,
    package_to_dict,
    save_feedback,
    save_graph,
    save_kb,
    save_package,
    save_users,
)
from repro.io.store import BinaryKBStore, decode_store_payload

__all__ = [
    "BinaryKBStore",
    "convert_kb",
    "decode_store_payload",
    "load_feedback",
    "load_graph",
    "load_kb",
    "load_users",
    "package_to_dict",
    "save_feedback",
    "save_graph",
    "save_kb",
    "save_package",
    "save_users",
]
