"""File formats for the library's artefacts.

Everything uses open formats so external tools can interoperate:

* graphs -- N-Triples (``.nt``),
* knowledge bases -- either a directory of per-version ``.nt`` files plus
  a ``manifest.json`` (name, version order, metadata), **or** the binary
  store of :mod:`repro.io.store` (``format="binary"``: one wire-format
  base file plus an append-only commit log -- the cold-start fast path);
  :func:`load_kb` auto-detects which layout a directory holds,
* users -- JSON (ids, names, class weights by IRI, family weights),
* feedback -- JSON Lines, one event per line,
* recommendation packages -- JSON (audience, ranked items, explanations).

:func:`convert_kb` migrates a KB directory between the two layouts in
either direction; the conversion is lossless (identical version ids,
metadata, triple sets and -- via the shared interning order -- identical
downstream measure results and recommendations).
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Dict, List, Sequence

from repro.io.store import BASE_FILE, LOG_FILE, BinaryKBStore
from repro.kb.graph import Graph
from repro.kb.interning import TermDictionary
from repro.kb.ntriples import parse_graph, serialize
from repro.kb.terms import IRI
from repro.kb.version import VersionedKnowledgeBase
from repro.measures.base import MeasureFamily
from repro.profiles.feedback import FeedbackEvent, FeedbackStore
from repro.profiles.user import InterestProfile, User
from repro.recommender.items import RecommendationPackage

# -- graphs -----------------------------------------------------------------------


def save_graph(graph: Graph, path: str | Path) -> Path:
    """Write ``graph`` to ``path`` as canonical N-Triples."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(serialize(graph), encoding="utf-8")
    return path


def load_graph(path: str | Path, dictionary: TermDictionary | None = None) -> Graph:
    """Read an N-Triples file into a fresh graph.

    ``dictionary`` interns the parsed terms into an existing
    :class:`~repro.kb.interning.TermDictionary` (:func:`load_kb` threads one
    through a whole version chain).
    """
    return parse_graph(Path(path).read_text(encoding="utf-8"), dictionary=dictionary)


# -- knowledge bases ----------------------------------------------------------------

_MANIFEST = "manifest.json"


def save_kb(
    kb: VersionedKnowledgeBase, directory: str | Path, format: str = "nt"
) -> Path:
    """Write a versioned KB to ``directory``.

    ``format="nt"`` (default) writes the interoperable layout: per-version
    ``.nt`` files plus a manifest.  ``format="binary"`` writes the
    :class:`~repro.io.store.BinaryKBStore` layout (wire-format base +
    empty commit log) -- load it back with the same :func:`load_kb`, boot
    it O(root + deltas), and append later commits in O(delta) via
    :meth:`~repro.io.store.BinaryKBStore.sync`.
    """
    directory = Path(directory)
    if format == "binary":
        BinaryKBStore.save(kb, directory)
        return directory
    if format != "nt":
        raise ValueError(f"unknown KB format {format!r} (expected 'nt' or 'binary')")
    directory.mkdir(parents=True, exist_ok=True)
    # A directory holds exactly one layout: a leftover binary store would
    # win load_kb's auto-detection and silently shadow the ``.nt`` files
    # being written now.
    for stale in (directory / BASE_FILE, directory / LOG_FILE):
        if stale.exists():
            stale.unlink()
    manifest = {"name": kb.name, "versions": []}
    for index, version in enumerate(kb):
        filename = f"{index:04d}_{version.version_id}.nt"
        save_graph(version.graph, directory / filename)
        manifest["versions"].append(
            {
                "version_id": version.version_id,
                "file": filename,
                "metadata": dict(version.metadata),
            }
        )
    (directory / _MANIFEST).write_text(
        json.dumps(manifest, indent=2), encoding="utf-8"
    )
    return directory


def load_kb(directory: str | Path, lazy: bool = True) -> VersionedKnowledgeBase:
    """Load a versioned KB saved by :func:`save_kb` (either layout).

    Auto-detects the directory format: a binary store (``kb.rpw``
    present) decodes out of a memory map with lazy delta replay
    (``lazy=False`` forces every snapshot to materialise eagerly); a
    ``manifest.json`` directory parses the per-version ``.nt`` files
    through the bulk codec.  Both paths intern one shared dictionary for
    the whole chain.
    """
    directory = Path(directory)
    if BinaryKBStore.is_store(directory):
        if (directory / _MANIFEST).exists():
            # Both layouts at once only happens when a save was interrupted
            # before its cleanup (or two tools trampled one directory).
            # Warn rather than guess silently: the binary store wins, the
            # .nt manifest is the remnant.
            warnings.warn(
                f"{directory} holds both a binary store and a {_MANIFEST} "
                "layout; loading the binary store and ignoring the .nt "
                "remnants (re-save to clean up)",
                RuntimeWarning,
                stacklevel=2,
            )
        return BinaryKBStore.open(directory).load(lazy=lazy)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise FileNotFoundError(f"no {_MANIFEST} or {BASE_FILE} in {directory}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    kb = VersionedKnowledgeBase(manifest.get("name", "kb"))
    # One dictionary for the whole chain keeps every commit on the
    # integer-set fast path (no per-version re-encode).
    dictionary = TermDictionary()
    for entry in manifest["versions"]:
        graph = load_graph(directory / entry["file"], dictionary=dictionary)
        kb.commit(
            graph,
            version_id=entry["version_id"],
            metadata=entry.get("metadata", {}),
            copy=False,
        )
    return kb


def convert_kb(
    source: str | Path, destination: str | Path, to: str = "binary"
) -> Path:
    """Migrate a KB directory between the ``.nt`` and binary layouts.

    ``to`` is the *destination* format (``"binary"`` or ``"nt"``); the
    source format is auto-detected.  Conversion is lossless and
    direction-symmetric: version ids, metadata, triple sets, recorded
    deltas and the chain's term-interning order all survive, so a
    converted KB serves bit-identical measure results and
    recommendations.  ``source`` and ``destination`` must differ (the
    layouts would trample each other in one directory).
    """
    source = Path(source)
    destination = Path(destination)
    if source.resolve() == destination.resolve():
        raise ValueError("convert_kb needs distinct source and destination directories")
    if to not in ("nt", "binary"):
        raise ValueError(f"unknown KB format {to!r} (expected 'nt' or 'binary')")
    return save_kb(load_kb(source), destination, format=to)


# -- users -----------------------------------------------------------------------


def users_to_dicts(users: Sequence[User]) -> List[Dict]:
    """JSON-ready dicts for users (the on-disk / on-wire layout)."""
    return [
        {
            "user_id": user.user_id,
            "name": user.name,
            "class_weights": {
                cls.value: weight for cls, weight in user.profile.class_weights.items()
            },
            "family_weights": {
                family.value: weight
                for family, weight in user.profile.family_weights.items()
            },
        }
        for user in users
    ]


def users_from_dicts(payload: Sequence[Dict]) -> List[User]:
    """Inverse of :func:`users_to_dicts`."""
    users: List[User] = []
    for entry in payload:
        profile = InterestProfile(
            class_weights={
                IRI(value): weight
                for value, weight in entry.get("class_weights", {}).items()
            },
            family_weights={
                MeasureFamily(value): weight
                for value, weight in entry.get("family_weights", {}).items()
            },
        )
        users.append(
            User(user_id=entry["user_id"], profile=profile, name=entry.get("name", ""))
        )
    return users


def save_users(users: Sequence[User], path: str | Path) -> Path:
    """Write users (with their ground-truth profiles) to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(users_to_dicts(users), indent=2), encoding="utf-8")
    return path


def load_users(path: str | Path) -> List[User]:
    """Load users saved by :func:`save_users`."""
    return users_from_dicts(json.loads(Path(path).read_text(encoding="utf-8")))


# -- feedback -----------------------------------------------------------------------


def feedback_to_dicts(store: FeedbackStore) -> List[Dict]:
    """JSON-ready dicts for feedback events (the on-disk / on-wire layout)."""
    return [
        {
            "user_id": event.user_id,
            "item_key": event.item_key,
            "rating": event.rating,
        }
        for event in store
    ]


def feedback_from_dicts(payload: Sequence[Dict]) -> FeedbackStore:
    """Inverse of :func:`feedback_to_dicts`."""
    store = FeedbackStore()
    for entry in payload:
        store.add(
            FeedbackEvent(
                user_id=entry["user_id"],
                item_key=entry["item_key"],
                rating=entry["rating"],
            )
        )
    return store


def save_feedback(store: FeedbackStore, path: str | Path) -> Path:
    """Write feedback events as JSON Lines (one event per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for entry in feedback_to_dicts(store):
            handle.write(json.dumps(entry))
            handle.write("\n")
    return path


def load_feedback(path: str | Path) -> FeedbackStore:
    """Load feedback saved by :func:`save_feedback`."""
    entries = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return feedback_from_dicts(entries)


# -- packages -----------------------------------------------------------------------


def package_to_dict(package: RecommendationPackage) -> Dict:
    """A JSON-serialisable view of a recommendation package."""
    return {
        "audience": package.audience,
        "metadata": dict(package.metadata),
        "items": [
            {
                "rank": rank,
                "measure": scored.item.measure_name,
                "family": scored.item.family.value,
                "target": scored.item.target.value,
                "evolution_score": scored.item.evolution_score,
                "utility": scored.utility,
                "explanation": package.explanation_for(scored.item.key),
            }
            for rank, scored in enumerate(package, start=1)
        ],
    }


def save_package(package: RecommendationPackage, path: str | Path) -> Path:
    """Write a package to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(package_to_dict(package), indent=2), encoding="utf-8")
    return path
