"""The binary on-disk knowledge-base store: wire base + append-only commit log.

A store is a directory holding two files in the binary wire format of
:mod:`repro.kb.wire`:

``kb.rpw``
    one ``encode_kb`` payload -- the term dictionary in id order, the root
    snapshot and the recorded delta chain of every version present at
    :meth:`BinaryKBStore.save` time.  Written atomically (tmp file +
    ``os.replace``) and never touched again by commits.
``commits.rpl``
    zero or more self-delimiting commit records (``encode_commit``)
    appended by :meth:`BinaryKBStore.sync` / :meth:`append_commit` -- each
    carries one version's dictionary *growth* plus its recorded
    ``(added, deleted)`` delta, flushed and ``fsync``\\ ed per record.
    Persisting a service commit is therefore **O(delta)**, never a
    full-snapshot rewrite.  Crash damage the append/save protocol can
    produce -- a torn final record, or a log superseded by a newer base --
    is *recovered* on load (warn, replay the intact prefix, truncate the
    file), never a refused boot; see :func:`_vet_commit_log`.

Loading memory-maps the base file and decodes it lazily
(:func:`repro.kb.wire.decode_kb` with ``lazy=True``): only the root
snapshot is built eagerly; every other version is appended from its
recorded delta and rematerialises through the version chain's existing
delta-replay path on first access.  Replaying the log grows the same
dictionary, so a loaded chain is **bit-identical** to the saved one --
same dense term ids, same recorded deltas, hence bit-equal measure
results and recommendations.

The store format is also the sharded serving plane's bootstrap unit:
:meth:`BinaryKBStore.bootstrap_payload` hands the raw ``(base, log)``
bytes straight to a shard process (:mod:`repro.service.sharding`), which
decodes them with :func:`decode_store_payload` -- no N-Triples re-parse,
no re-encode in the router.
"""

from __future__ import annotations

import mmap
import os
import warnings
from pathlib import Path
from typing import List, Optional, Tuple

from repro.kb import wire
from repro.kb.errors import WireFormatError
from repro.kb.graph import Graph
from repro.kb.version import Version, VersionedKnowledgeBase

#: File names inside a store directory (presence of BASE_FILE *is* the
#: format auto-detection signal, see repro.io.storage.load_kb).
BASE_FILE = "kb.rpw"
LOG_FILE = "commits.rpl"


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so renames/truncations of its entries are durable.

    ``os.replace`` is atomic but only the *file* data was fsynced; the
    directory entry pointing at the new inode still lives in the page
    cache until the directory itself is synced.  Platforms without
    directory fds (or filesystems refusing to fsync one) are a no-op --
    they offer no stronger primitive anyway.
    """
    try:
        fd = os.open(directory, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:  # pragma: no cover - platform without directory opens
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. network fs rejecting dir fsync
        pass
    finally:
        os.close(fd)


def _vet_commit_log(kb: VersionedKnowledgeBase, dictionary, log) -> Tuple[bytes, Optional[str]]:
    """The replayable prefix of ``log`` against the decoded base, if any.

    Two kinds of damage are survivable by construction and recovered here
    rather than failing the boot:

    * a **torn tail** -- a crash between ``write`` and ``fsync`` in
      :meth:`BinaryKBStore.append_commit` leaves a partial final record;
      every intact record before it is a perfectly served prefix;
    * a **stale log** -- a crash between :meth:`BinaryKBStore.save`'s
      atomic base replace and its log truncation leaves records that
      predate the new base (which already contains their versions); a
      valid log's first record always chains exactly onto the base
      (``terms_before`` equals the dictionary size and its version id is
      new), so a first record that does not is the whole log being
      superseded.

    Anything else (a corrupt record that still frames correctly) stays a
    hard :class:`WireFormatError` downstream.  Returns ``(usable log
    bytes, reason-dropped-or-None)``.
    """
    _, intact_end = wire.scan_commit_log(log)
    dropped = None
    if intact_end < len(log):
        dropped = (
            f"torn tail at byte {intact_end} of {len(log)} "
            f"(crash between append and fsync?)"
        )
        log = log[:intact_end]
    if log:
        first = next(wire.iter_commit_headers(log))
        if first.get("terms_before") != len(dictionary) or first.get("version_id") in kb:
            dropped = (
                f"{dropped}; " if dropped else ""
            ) + "log does not chain onto this base (superseded by a newer save?)"
            log = b""
    return bytes(log), dropped


def decode_store_payload(
    base: bytes,
    log: bytes = b"",
    on_recovery: "Optional[callable]" = None,
) -> VersionedKnowledgeBase:
    """Decode a store's raw ``(base, log)`` bytes into a lazy version chain.

    The shard bootstrap path: the base decodes with lazy delta replay,
    every usable commit record in ``log`` is appended through
    :meth:`~repro.kb.version.VersionedKnowledgeBase.commit_recorded`, and
    the chain's **true head pair** -- the two newest versions after the
    replay, wherever they live -- gets bulk-built snapshots adopted from
    a running key set, so a freshly booted chain serves its first request
    with zero delta replay no matter how long the log tail is.  All other
    snapshots stay lazy.

    A torn log tail or a stale log (see :func:`_vet_commit_log`) is
    dropped with a :class:`RuntimeWarning` instead of failing the boot;
    ``on_recovery(reason, usable_log_bytes)`` is additionally invoked so
    an owner of the underlying file can truncate it.  (In the rare
    stale-log case the head pair boots unwarmed and materialises through
    ordinary delta replay on first use.)
    """
    if not log:
        return wire.decode_kb(base, lazy=True)
    # Frame-level scan first: it tells the base decode how many log
    # versions will follow (so head-pair warming lands on the *chain's*
    # head, not the base's) and bounds the replay to the intact prefix.
    n_records, _ = wire.scan_commit_log(log)
    kb, running = wire.decode_kb_lazy(base, trailing_records=n_records)
    if not len(kb):
        raise WireFormatError("commit log without a root version in the base")
    dictionary = kb.first().graph.dictionary
    log, dropped = _vet_commit_log(kb, dictionary, log)
    if dropped is not None:
        warnings.warn(f"commit log recovery: {dropped}", RuntimeWarning, stacklevel=2)
        if on_recovery is not None:
            on_recovery(dropped, log)
    records = list(wire.decode_commit_log(log, dictionary)) if log else []
    key_of = dictionary.key_of
    n_base = len(kb)
    head_from = n_base + len(records) - 2
    for offset, (version_id, metadata, added, deleted) in enumerate(records):
        running.difference_update(key_of(t) for t in deleted)
        running.update(key_of(t) for t in added)
        kb.commit_recorded(
            added=added,
            deleted=deleted,
            version_id=version_id,
            metadata=metadata,
            snapshot=(
                Graph.from_interned_keys(dictionary, running)
                if n_base + offset >= head_from
                else None
            ),
        )
    return kb


class BinaryKBStore:
    """Handle on one on-disk binary KB store directory.

    Usage::

        store = BinaryKBStore.save(kb, "world/kb")   # write base + empty log
        ...
        kb.commit_changes(added=[...])
        store.sync(kb)                               # O(delta) append + fsync

        store = BinaryKBStore.open("world/kb")
        kb = store.load()                            # mmap decode, lazy replay
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.base_path = self.directory / BASE_FILE
        self.log_path = self.directory / LOG_FILE
        # Disk-state cursor: how far the on-disk files cover the chain.
        # Filled by save()/load(); sync() refuses to run blind.
        self._n_terms: Optional[int] = None
        self._version_ids: Optional[List[str]] = None
        # Memory maps opened by load() that a stray decode view kept
        # pinned; close() retries them so the fd/map lifetime is bounded
        # by the handle, not by garbage collection.
        self._pinned_maps: List[Tuple[memoryview, mmap.mmap]] = []

    # -- creation / detection ------------------------------------------------

    @staticmethod
    def is_store(directory: str | Path) -> bool:
        """True when ``directory`` holds a binary store (base file present)."""
        return (Path(directory) / BASE_FILE).is_file()

    @classmethod
    def save(cls, kb: VersionedKnowledgeBase, directory: str | Path) -> "BinaryKBStore":
        """Write ``kb`` as a fresh store (atomic base write, empty log).

        The base lands via tmp-file + ``os.replace``; the old commit log
        is truncated *after* the replace, so the crash window between the
        two leaves a new base plus a log that predates it -- which the
        load path detects as stale (its first record no longer chains
        onto the base) and discards.  Every version of the saved chain is
        inside the new base, so nothing is lost in that window either.
        """
        store = cls(directory)
        store.directory.mkdir(parents=True, exist_ok=True)
        data = wire.encode_kb(kb)
        tmp_path = store.base_path.with_suffix(".rpw.tmp")
        with tmp_path.open("wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, store.base_path)
        # The rename is atomic but not yet durable: the directory entry
        # for the new inode must itself be synced, or a crash right after
        # save() could resurface the old base (or no base at all).
        _fsync_dir(store.directory)
        # A fresh base supersedes any previous log tail -- and any ``.nt``
        # layout in the same directory (manifest plus its numbered
        # per-version files), which external tools globbing ``*.nt`` would
        # otherwise read as a second, stale identity for this KB.
        with store.log_path.open("wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        manifest = store.directory / "manifest.json"
        if manifest.exists():
            manifest.unlink()
        for stale in store.directory.glob("[0-9][0-9][0-9][0-9]_*.nt"):
            stale.unlink()
        _fsync_dir(store.directory)
        store._version_ids = kb.version_ids()
        store._n_terms = (
            len(kb.first().graph.dictionary) if len(kb) else 0
        )
        return store

    @classmethod
    def open(cls, directory: str | Path) -> "BinaryKBStore":
        """Handle on an existing store (raises ``FileNotFoundError`` if absent)."""
        store = cls(directory)
        if not store.base_path.is_file():
            raise FileNotFoundError(f"no {BASE_FILE} in {store.directory}")
        return store

    # -- loading -------------------------------------------------------------

    def load(self, lazy: bool = True) -> VersionedKnowledgeBase:
        """Decode the store into a version chain (bit-identical ids/deltas).

        The base file is decoded straight out of a memory map; the commit
        log (if any) is replayed on top.  With ``lazy=True`` (default)
        only the root snapshot is materialised -- every other version
        rebuilds through delta replay on first access, which is what makes
        cold boot O(root + deltas).
        """
        with self.base_path.open("rb") as handle:
            size = os.fstat(handle.fileno()).st_size
            if size == 0:
                raise WireFormatError(f"empty store base file: {self.base_path}")
            buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            view = memoryview(buffer)
            try:
                log = self.log_path.read_bytes() if self.log_path.is_file() else b""
                kb = decode_store_payload(view, log, on_recovery=self._recover_log)
            finally:
                view.release()
                try:
                    buffer.close()
                except BufferError:  # pragma: no cover - stray decode view
                    # Keep the handle: close() retries instead of leaving
                    # the map (and its fd) to the garbage collector.
                    self._pinned_maps.append((view, buffer))
        if not lazy:
            for version in kb:
                version.graph  # force materialisation
        self._version_ids = kb.version_ids()
        self._n_terms = len(kb.first().graph.dictionary) if len(kb) else 0
        return kb

    def bootstrap_payload(self) -> Tuple[bytes, bytes]:
        """The raw ``(base, log)`` bytes -- the shard bootstrap unit.

        Read verbatim from disk: the router process never decodes or
        re-encodes a tenant it only routes for.
        """
        log = self.log_path.read_bytes() if self.log_path.is_file() else b""
        return self.base_path.read_bytes(), log

    def describe(
        self, payload: Tuple[bytes, bytes] | None = None
    ) -> Tuple[str, List[str]]:
        """``(kb name, version ids on disk)`` from the headers alone.

        Decodes only the base header and the per-record log headers -- no
        term table, no key array.  Pass an already-read
        :meth:`bootstrap_payload` to avoid touching the files a second
        time (the sharded serve path reads the store exactly once).
        """
        base, log = payload if payload is not None else self.bootstrap_payload()
        header = wire.read_kb_header(base)
        ids = [entry["version_id"] for entry in header.get("versions", [])]
        # Same crash tolerance as the load path: walk only the intact log
        # prefix, and ignore a log whose first record names a version the
        # base already holds (stale after an interrupted save).
        _, intact_end = wire.scan_commit_log(log)
        log_ids = [
            record["version_id"]
            for record in wire.iter_commit_headers(log[:intact_end])
        ]
        if log_ids and log_ids[0] not in ids:
            ids.extend(log_ids)
        return header.get("name", "kb"), ids

    def _recover_log(self, reason: str, usable: bytes) -> None:
        """Persist a log recovery: rewrite the file to its usable prefix.

        Called by :func:`decode_store_payload` during :meth:`load` when it
        dropped a torn tail or a stale log, so a later
        :meth:`append_commit` extends intact records instead of garbage.
        """
        with self.log_path.open("wb") as handle:
            handle.write(usable)
            handle.flush()
            os.fsync(handle.fileno())
        _fsync_dir(self.directory)

    # -- appending -----------------------------------------------------------

    def append_commit(self, version: Version, dictionary) -> None:
        """Append one committed version's record to the log (flush + fsync)."""
        if self._n_terms is None or self._version_ids is None:
            raise WireFormatError(
                "store has no disk-state cursor: save() or load() it first"
            )
        record = wire.encode_commit(version, dictionary, self._n_terms)
        with self.log_path.open("ab") as handle:
            handle.write(record)
            handle.flush()
            os.fsync(handle.fileno())
        self._n_terms = len(dictionary)
        self._version_ids.append(version.version_id)

    def sync(self, kb: VersionedKnowledgeBase) -> int:
        """Append every version of ``kb`` not yet on disk; returns the count.

        The on-disk chain must be a prefix of ``kb``'s (same ids, same
        order) -- it is, for any chain this store saved or loaded and that
        only grew since.  Each appended record costs O(its delta); the
        base file is never rewritten.
        """
        if self._n_terms is None or self._version_ids is None:
            raise WireFormatError(
                "store has no disk-state cursor: save() or load() it first"
            )
        with kb.write_lock:
            ids = kb.version_ids()
            on_disk = self._version_ids
            if ids[: len(on_disk)] != on_disk:
                raise WireFormatError(
                    f"store {self.directory} is not a prefix of chain "
                    f"{kb.name!r}: have {on_disk}, chain has {ids}"
                )
            pending = ids[len(on_disk) :]
            if not pending:
                return 0
            dictionary = kb.first().graph.dictionary
            for version_id in pending:
                self.append_commit(kb.version(version_id), dictionary)
            return len(pending)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release any memory map a past :meth:`load` left pinned (idempotent).

        The lazy decode copies everything it returns out of the map, so
        :meth:`load` normally closes it before returning; this is the
        backstop for a map a stray exported view kept alive.  Called on
        tenant eviction and at server shutdown
        (:meth:`repro.service.registry.Tenant.close`), so the store's fd
        lifetime is bounded by serving lifetime, not garbage collection.
        """
        still_pinned: List[Tuple[memoryview, mmap.mmap]] = []
        for view, buffer in self._pinned_maps:
            view.release()  # idempotent
            try:
                buffer.close()
            except BufferError:  # pragma: no cover - view still exported
                still_pinned.append((view, buffer))
        self._pinned_maps = still_pinned

    def __enter__(self) -> "BinaryKBStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"BinaryKBStore({str(self.directory)!r})"
