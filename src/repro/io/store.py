"""The binary on-disk knowledge-base store: wire base + append-only commit log.

A store is a directory holding two files in the binary wire format of
:mod:`repro.kb.wire`:

``kb.rpw``
    one ``encode_kb`` payload -- the term dictionary in id order, the root
    snapshot and the recorded delta chain of every version present at
    :meth:`BinaryKBStore.save` (or :meth:`BinaryKBStore.rollup`) time.
    Written atomically (tmp file + ``os.replace`` + directory fsync) and
    never touched again by commits.
``commits.rpl``
    zero or more self-delimiting commit records (``encode_commit``)
    appended by :meth:`BinaryKBStore.sync` / :meth:`append_commit` -- each
    carries one version's dictionary *growth* plus its recorded
    ``(added, deleted)`` delta, flushed and ``fsync``\\ ed per record.
    Persisting a service commit is therefore **O(delta)**, never a
    full-snapshot rewrite.  Crash damage the append/save/roll-up protocol
    can produce -- a torn final record, or log records superseded by a
    newer base -- is *recovered* on load (warn, replay the chained
    prefix, truncate the file), never a refused boot; see
    :func:`_chained_prefix`.

The crash-consistency contract, in one sentence: **an append that
returned is never lost** -- each record is fsynced before
:meth:`append_commit` returns, recovery only ever drops bytes *after*
the last record that chains onto the base, and a failed append rewinds
the file (or poisons the handle) so later appends can never land behind
garbage.  Every durable mutation goes through the :data:`hooks` syscall
seam, which is how the fault-injection tests prove the contract at every
crash point.

Unbounded log growth is handled by **roll-up**
(:meth:`BinaryKBStore.rollup`): when the log crosses a configured
byte/record threshold, the live chain is rewritten as a fresh base (same
atomic tmp + replace path as :meth:`~BinaryKBStore.save`) and the log is
truncated -- bounding a long-lived server's recovery time by the
threshold, not by its uptime.  :meth:`sync` triggers it opportunistically
under the tenant write lock; ``repro compact-store`` exposes it offline.

Loading memory-maps the base file and decodes it lazily
(:func:`repro.kb.wire.decode_kb` with ``lazy=True``): only the root
snapshot is built eagerly; every other version is appended from its
recorded delta and rematerialises through the version chain's existing
delta-replay path on first access.  Replaying the log grows the same
dictionary, so a loaded chain is **bit-identical** to the saved one --
same dense term ids, same recorded deltas, hence bit-equal measure
results and recommendations.

The store format is also the sharded serving plane's bootstrap unit:
:meth:`BinaryKBStore.bootstrap_payload` hands the raw ``(base, log)``
bytes straight to a shard process (:mod:`repro.service.sharding`), which
decodes them with :func:`decode_store_payload` -- no N-Triples re-parse,
no re-encode in the router.
"""

from __future__ import annotations

import mmap
import os
import warnings
from pathlib import Path
from typing import List, Optional, Tuple

from repro.kb import wire
from repro.kb.errors import WireFormatError
from repro.kb.graph import Graph
from repro.kb.version import Version, VersionedKnowledgeBase

#: File names inside a store directory (presence of BASE_FILE *is* the
#: format auto-detection signal, see repro.io.storage.load_kb).
BASE_FILE = "kb.rpw"
LOG_FILE = "commits.rpl"


class _SyscallHooks:
    """The store's durability syscalls, behind one swappable indirection.

    Every mutation the crash-consistency contract depends on -- record
    and base writes, fsyncs (file and directory), the atomic base
    replace, log truncations -- calls through the module-level
    :data:`hooks` instance instead of ``os``/file methods directly.
    Production is a straight pass-through; the fault-injection tests
    (``tests/test_failure_injection.py``) and the kill-and-reboot soak
    (``benchmarks/bench_durability.py``) swap in implementations that
    fail or "crash" at a chosen call, which is how the store proves that
    every crash point of save/append/recover/roll-up reboots with zero
    loss of acknowledged commits.
    """

    @staticmethod
    def write(handle, data) -> int:
        return handle.write(data)

    @staticmethod
    def fsync(fd: int) -> None:
        os.fsync(fd)

    @staticmethod
    def replace(src, dst) -> None:
        os.replace(src, dst)

    @staticmethod
    def truncate(handle, size: int) -> None:
        handle.truncate(size)


#: Live hook set; tests monkeypatch ``repro.io.store.hooks`` to inject faults.
hooks = _SyscallHooks()


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so renames/truncations of its entries are durable.

    ``os.replace`` is atomic but only the *file* data was fsynced; the
    directory entry pointing at the new inode still lives in the page
    cache until the directory itself is synced.  Platforms without
    directory fds (or filesystems refusing to fsync one) are a no-op --
    they offer no stronger primitive anyway.
    """
    try:
        fd = os.open(directory, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:  # pragma: no cover - platform without directory opens
        return
    try:
        hooks.fsync(fd)
    except OSError:  # pragma: no cover - e.g. network fs rejecting dir fsync
        pass
    finally:
        os.close(fd)


def _chained_prefix(
    base_ids: List[str], n_terms: Optional[int], log
) -> Tuple[List[str], int, Optional[str]]:
    """The longest log prefix chaining onto a base, from headers alone.

    Three kinds of crash damage are survivable by construction and
    recovered here rather than failing the boot:

    * a **torn tail** -- a crash between ``write`` and ``fsync`` in
      :meth:`BinaryKBStore.append_commit` leaves a partial final record;
      every intact record before it is a perfectly served prefix;
    * a **stale log** -- a crash between :meth:`BinaryKBStore.save`'s
      atomic base replace and its log truncation leaves records that
      predate the new base (which already contains their versions);
    * a **partially superseded log** -- the same window in
      :meth:`BinaryKBStore.rollup` can leave a log whose records overlap
      the freshly rolled-up base mid-chain.

    All three reduce to one chain walk: starting from the base's version
    ids and its dictionary size (``n_terms``), each record must name a
    *new* version id and pick up the term count exactly where the running
    head left it (``terms_before`` matches, ``terms_after`` never
    shrinks).  The walk stops at the first record that does not chain --
    a first-record mismatch is the classic stale log, a later one is the
    interrupted-roll-up overlap -- so the usable prefix is exact, never a
    guess from the first record alone.

    ``n_terms`` may be ``None`` for pre-``n_terms`` base payloads; the
    walk then anchors on the first record's own ``terms_before`` claim,
    which :func:`decode_store_payload` re-verifies against the decoded
    dictionary.  Anything else (a corrupt record that still frames and
    chains) stays a hard :class:`WireFormatError` downstream.  Returns
    ``(chained version ids, end byte offset, reason-dropped-or-None)``.
    """
    _, intact_end = wire.scan_commit_log(log)
    reason = None
    if intact_end < len(log):
        reason = (
            f"torn tail at byte {intact_end} of {len(log)} "
            f"(crash between append and fsync?)"
        )
    seen = set(base_ids)
    ids: List[str] = []
    end = 0
    running = n_terms
    for index, (header, _start, stop) in enumerate(
        wire.iter_commit_spans(bytes(log[:intact_end]))
    ):
        version_id = header.get("version_id")
        terms_before = header.get("terms_before")
        terms_after = header.get("terms_after")
        if running is None:
            running = terms_before
        if (
            version_id is None
            or version_id in seen
            or terms_before != running
            or not isinstance(terms_after, int)
            or terms_after < running
        ):
            reason = (f"{reason}; " if reason else "") + (
                f"record {index} ({version_id!r}) does not chain onto this "
                "base (superseded by a newer save or an interrupted roll-up?)"
            )
            break
        seen.add(version_id)
        ids.append(version_id)
        running = terms_after
        end = stop
    return ids, end, reason


def decode_store_payload(
    base,
    log: bytes = b"",
    on_recovery: "Optional[callable]" = None,
) -> VersionedKnowledgeBase:
    """Decode a store's raw ``(base, log)`` bytes into a lazy version chain.

    The shard bootstrap path: the base decodes with lazy delta replay,
    every usable commit record in ``log`` is appended through
    :meth:`~repro.kb.version.VersionedKnowledgeBase.commit_recorded`, and
    the chain's **true head pair** -- the two newest versions after the
    replay, wherever they live -- gets bulk-built snapshots adopted from
    a running key set, so a freshly booted chain serves its first request
    with zero delta replay no matter how long the log tail is.  All other
    snapshots stay lazy.

    A torn log tail, a stale log, or a partially superseded log (see
    :func:`_chained_prefix`) is dropped with a :class:`RuntimeWarning`
    instead of failing the boot; ``on_recovery(reason, usable_log_bytes)``
    is additionally invoked so an owner of the underlying file can
    truncate it.  (In the rare stale-log case the head pair boots
    unwarmed and materialises through ordinary delta replay on first
    use.)
    """
    if not log:
        return wire.decode_kb(base, lazy=True)
    # Header-only pre-vet: which log prefix chains onto this base?  The
    # answer tells the base decode how many log versions will follow (so
    # head-pair warming lands on the *chain's* head, not the base's) and
    # bounds the replay to records that actually extend the base.
    header = wire.read_kb_header(base)
    base_ids = [entry["version_id"] for entry in header.get("versions", [])]
    usable_ids, usable_end, dropped = _chained_prefix(
        base_ids, header.get("n_terms"), log
    )
    kb, running = wire.decode_kb_lazy(base, trailing_records=len(usable_ids))
    if not len(kb):
        raise WireFormatError("commit log without a root version in the base")
    dictionary = kb.first().graph.dictionary
    if usable_ids and header.get("n_terms") is None:
        # Pre-``n_terms`` base payload: the chain walk anchored on the
        # first record's own claim -- re-verify it against the decoded
        # dictionary before trusting the whole prefix.
        first = next(wire.iter_commit_headers(log))
        if first.get("terms_before") != len(dictionary):
            usable_ids, usable_end = [], 0
            dropped = (f"{dropped}; " if dropped else "") + (
                "record 0 does not chain onto this base "
                "(superseded by a newer save?)"
            )
    log = bytes(log[:usable_end])
    if dropped is not None:
        warnings.warn(f"commit log recovery: {dropped}", RuntimeWarning, stacklevel=2)
        if on_recovery is not None:
            on_recovery(dropped, log)
    records = list(wire.decode_commit_log(log, dictionary)) if log else []
    key_of = dictionary.key_of
    n_base = len(kb)
    head_from = n_base + len(records) - 2
    for offset, (version_id, metadata, added, deleted) in enumerate(records):
        running.difference_update(key_of(t) for t in deleted)
        running.update(key_of(t) for t in added)
        kb.commit_recorded(
            added=added,
            deleted=deleted,
            version_id=version_id,
            metadata=metadata,
            snapshot=(
                Graph.from_interned_keys(dictionary, running)
                if n_base + offset >= head_from
                else None
            ),
        )
    return kb


class BinaryKBStore:
    """Handle on one on-disk binary KB store directory.

    Usage::

        store = BinaryKBStore.save(kb, "world/kb")   # write base + empty log
        ...
        kb.commit_changes(added=[...])
        store.sync(kb)                               # O(delta) append + fsync

        store = BinaryKBStore.open("world/kb", rollup_records=256)
        kb = store.load()                            # mmap decode, lazy replay

    ``rollup_bytes`` / ``rollup_records`` arm opportunistic roll-up:
    whenever :meth:`sync` leaves the commit log at or above either
    threshold, the live chain is rewritten as a fresh base and the log is
    truncated (:meth:`rollup`), bounding recovery time for a long-lived
    server.  ``None`` (the default) disables the corresponding threshold.
    """

    def __init__(
        self,
        directory: str | Path,
        rollup_bytes: Optional[int] = None,
        rollup_records: Optional[int] = None,
    ) -> None:
        for knob, value in (
            ("rollup_bytes", rollup_bytes),
            ("rollup_records", rollup_records),
        ):
            if value is not None and value < 1:
                raise ValueError(f"{knob} must be a positive integer, got {value!r}")
        self.directory = Path(directory)
        self.base_path = self.directory / BASE_FILE
        self.log_path = self.directory / LOG_FILE
        self.rollup_bytes = rollup_bytes
        self.rollup_records = rollup_records
        # Disk-state cursor: how far the on-disk files cover the chain.
        # Filled by save()/load(); sync() refuses to run blind.
        self._n_terms: Optional[int] = None
        self._version_ids: Optional[List[str]] = None
        self._log_records: int = 0
        # Set when a failed append could not be rewound: the log tail may
        # be garbage, so further appends raise until a roll-up (or a
        # reload's recovery) rewrites/truncates the file.
        self._poisoned: Optional[str] = None
        # Memory maps opened by load() that a stray decode view kept
        # pinned; close() retries them so the fd/map lifetime is bounded
        # by the handle, not by garbage collection.
        self._pinned_maps: List[Tuple[memoryview, mmap.mmap]] = []

    # -- creation / detection ------------------------------------------------

    @staticmethod
    def is_store(directory: str | Path) -> bool:
        """True when ``directory`` holds a binary store (base file present)."""
        return (Path(directory) / BASE_FILE).is_file()

    @classmethod
    def save(
        cls,
        kb: VersionedKnowledgeBase,
        directory: str | Path,
        rollup_bytes: Optional[int] = None,
        rollup_records: Optional[int] = None,
    ) -> "BinaryKBStore":
        """Write ``kb`` as a fresh store (atomic base write, empty log).

        The base lands via tmp-file + ``os.replace``; the old commit log
        is truncated *after* the replace, so the crash window between the
        two leaves a new base plus a log that predates it -- which the
        load path detects as stale (its records no longer chain onto the
        base) and discards.  Every version of the saved chain is inside
        the new base, so nothing is lost in that window either.
        """
        store = cls(directory, rollup_bytes=rollup_bytes, rollup_records=rollup_records)
        store.directory.mkdir(parents=True, exist_ok=True)
        store._write_base(kb)
        store._truncate_log()
        # A fresh base supersedes any ``.nt`` layout in the same directory
        # (manifest plus its numbered per-version files), which external
        # tools globbing ``*.nt`` would otherwise read as a second, stale
        # identity for this KB.
        manifest = store.directory / "manifest.json"
        if manifest.exists():
            manifest.unlink()
        for stale in store.directory.glob("[0-9][0-9][0-9][0-9]_*.nt"):
            stale.unlink()
        _fsync_dir(store.directory)
        store._set_cursor(kb)
        return store

    @classmethod
    def open(
        cls,
        directory: str | Path,
        rollup_bytes: Optional[int] = None,
        rollup_records: Optional[int] = None,
    ) -> "BinaryKBStore":
        """Handle on an existing store (raises ``FileNotFoundError`` if absent)."""
        store = cls(directory, rollup_bytes=rollup_bytes, rollup_records=rollup_records)
        if not store.base_path.is_file():
            raise FileNotFoundError(f"no {BASE_FILE} in {store.directory}")
        # Tmp-file hygiene: a crash between writing the tmp base and the
        # atomic replace strands the tmp file; it is garbage by
        # construction (the real base is whatever the replace last
        # published), so opening the store clears it.
        store._clear_stale_tmp()
        return store

    # -- internal write primitives -------------------------------------------

    def _clear_stale_tmp(self) -> None:
        """Remove stranded ``*.rpw.tmp`` files (crash before ``os.replace``)."""
        for stale in self.directory.glob("*.rpw.tmp"):
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - raced by a concurrent writer
                pass

    def _write_base(self, kb: VersionedKnowledgeBase) -> None:
        """Atomically publish ``kb`` as the base file (tmp + replace + fsyncs)."""
        self._clear_stale_tmp()
        data = wire.encode_kb(kb)
        tmp_path = self.base_path.with_suffix(".rpw.tmp")
        with tmp_path.open("wb") as handle:
            hooks.write(handle, data)
            handle.flush()
            hooks.fsync(handle.fileno())
        hooks.replace(tmp_path, self.base_path)
        # The rename is atomic but not yet durable: the directory entry
        # for the new inode must itself be synced, or a crash right after
        # could resurface the old base (or no base at all).
        _fsync_dir(self.directory)

    def _truncate_log(self) -> None:
        """Truncate (or create) the commit log as empty, durably."""
        mode = "r+b" if self.log_path.is_file() else "wb"
        with self.log_path.open(mode) as handle:
            hooks.truncate(handle, 0)
            handle.flush()
            hooks.fsync(handle.fileno())
        _fsync_dir(self.directory)

    def _set_cursor(self, kb: VersionedKnowledgeBase, log_records: int = 0) -> None:
        """Reset the disk-state cursor to ``kb`` with an empty (or known) log."""
        self._version_ids = kb.version_ids()
        self._n_terms = len(kb.first().graph.dictionary) if len(kb) else 0
        self._log_records = log_records
        self._poisoned = None

    # -- loading -------------------------------------------------------------

    def load(self, lazy: bool = True) -> VersionedKnowledgeBase:
        """Decode the store into a version chain (bit-identical ids/deltas).

        The base file is decoded straight out of a memory map; the commit
        log (if any) is replayed on top.  With ``lazy=True`` (default)
        only the root snapshot is materialised -- every other version
        rebuilds through delta replay on first access, which is what makes
        cold boot O(root + deltas).
        """
        with self.base_path.open("rb") as handle:
            size = os.fstat(handle.fileno()).st_size
            if size == 0:
                raise WireFormatError(f"empty store base file: {self.base_path}")
            buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            view = memoryview(buffer)
            try:
                log = self.log_path.read_bytes() if self.log_path.is_file() else b""
                kb = decode_store_payload(view, log, on_recovery=self._recover_log)
            finally:
                view.release()
                try:
                    buffer.close()
                except BufferError:  # pragma: no cover - stray decode view
                    # Keep the handle: close() retries instead of leaving
                    # the map (and its fd) to the garbage collector.
                    self._pinned_maps.append((view, buffer))
        if not lazy:
            for version in kb:
                version.graph  # force materialisation
        # Any recovery above already truncated the file to its usable
        # prefix, so the on-disk record count is a plain frame scan.
        self._set_cursor(kb, log_records=self.log_stats()[0])
        return kb

    def bootstrap_payload(self) -> Tuple[bytes, bytes]:
        """The raw ``(base, log)`` bytes -- the shard bootstrap unit.

        Read verbatim from disk: the router process never decodes or
        re-encodes a tenant it only routes for.
        """
        log = self.log_path.read_bytes() if self.log_path.is_file() else b""
        return self.base_path.read_bytes(), log

    def describe(
        self, payload: Tuple[bytes, bytes] | None = None
    ) -> Tuple[str, List[str]]:
        """``(kb name, version ids on disk)`` from the headers alone.

        Decodes only the base header and the per-record log headers -- no
        term table, no key array.  Pass an already-read
        :meth:`bootstrap_payload` to avoid touching the files a second
        time (the sharded serve path reads the store exactly once).  Uses
        the same chain walk as the load path (:func:`_chained_prefix`),
        so torn tails, stale logs and interrupted-roll-up overlaps are
        invisible here too.
        """
        base, log = payload if payload is not None else self.bootstrap_payload()
        header = wire.read_kb_header(base)
        ids = [entry["version_id"] for entry in header.get("versions", [])]
        log_ids, _, _ = _chained_prefix(ids, header.get("n_terms"), log)
        return header.get("name", "kb"), ids + log_ids

    def log_stats(self) -> Tuple[int, int]:
        """``(intact record count, byte size)`` of the on-disk commit log."""
        if not self.log_path.is_file():
            return 0, 0
        log = self.log_path.read_bytes()
        records, _ = wire.scan_commit_log(log)
        return records, len(log)

    def _recover_log(self, reason: str, usable: bytes) -> None:
        """Persist a log recovery: truncate the file to its usable prefix.

        Called by :func:`decode_store_payload` during :meth:`load` when it
        dropped a torn tail or non-chaining records, so a later
        :meth:`append_commit` extends intact records instead of garbage.
        The usable bytes are by construction a prefix of the file's
        current content, so recovery is a single truncate -- there is no
        window where fsynced records exist only in memory: crashing
        before the truncate re-runs the same recovery next boot, crashing
        after it is a completed recovery.
        """
        with self.log_path.open("r+b") as handle:
            hooks.truncate(handle, len(usable))
            handle.flush()
            hooks.fsync(handle.fileno())
        _fsync_dir(self.directory)

    # -- appending -----------------------------------------------------------

    def append_commit(self, version: Version, dictionary) -> None:
        """Append one committed version's record to the log (flush + fsync).

        Torn-append safety: the record is fsynced before the cursor
        advances, so a record whose append *returned* is durable.  If the
        write or fsync raises instead, the log is truncated back to the
        pre-append offset before re-raising -- the next append lands on
        intact records, never behind a torn one.  If even that rewind
        fails, the handle poisons itself and every further append raises
        :class:`WireFormatError` until a roll-up (or a reload's recovery)
        rewrites the file.
        """
        if self._n_terms is None or self._version_ids is None:
            raise WireFormatError(
                "store has no disk-state cursor: save() or load() it first"
            )
        if self._poisoned is not None:
            raise WireFormatError(
                f"commit log of {self.directory} is poisoned ({self._poisoned}); "
                "rollup() or reload to repair"
            )
        record = wire.encode_commit(version, dictionary, self._n_terms)
        pre_size = self.log_path.stat().st_size if self.log_path.is_file() else 0
        try:
            with self.log_path.open("ab") as handle:
                hooks.write(handle, record)
                handle.flush()
                hooks.fsync(handle.fileno())
        except Exception as failure:
            # Live failure (not a crash): rewind so the torn record can
            # never end up *behind* a later, successful append -- which
            # recovery's prefix truncation would then silently drop.
            self._rewind_log(pre_size, failure)
            raise
        self._n_terms = len(dictionary)
        self._version_ids.append(version.version_id)
        self._log_records += 1

    def _rewind_log(self, size: int, cause: BaseException) -> None:
        """Truncate the log back to ``size`` after a failed append."""
        try:
            with self.log_path.open("r+b") as handle:
                hooks.truncate(handle, size)
                handle.flush()
                hooks.fsync(handle.fileno())
        except Exception as rewind_failure:
            self._poisoned = (
                f"torn append could not be rewound to byte {size}: "
                f"{rewind_failure} (original failure: {cause})"
            )

    def sync(self, kb: VersionedKnowledgeBase) -> int:
        """Append every version of ``kb`` not yet on disk; returns the count.

        The on-disk chain must be a prefix of ``kb``'s (same ids, same
        order) -- it is, for any chain this store saved or loaded and that
        only grew since.  Each appended record costs O(its delta); the
        base file is only rewritten when the log crosses the configured
        ``rollup_bytes`` / ``rollup_records`` threshold, in which case
        :meth:`rollup` runs here, under the same ``kb.write_lock`` the
        serving plane's commit hook already holds the tenant on.
        """
        if self._n_terms is None or self._version_ids is None:
            raise WireFormatError(
                "store has no disk-state cursor: save() or load() it first"
            )
        with kb.write_lock:
            ids = kb.version_ids()
            on_disk = self._version_ids
            if ids[: len(on_disk)] != on_disk:
                raise WireFormatError(
                    f"store {self.directory} is not a prefix of chain "
                    f"{kb.name!r}: have {on_disk}, chain has {ids}"
                )
            pending = ids[len(on_disk) :]
            if self._poisoned is not None:
                # A torn append that could not be rewound: appending after
                # the garbage would bury fsynced commits behind it.  A
                # roll-up is the repair -- full atomic base rewrite, fresh
                # empty log -- and it persists everything pending too.
                self.rollup(kb)
                return len(pending)
            if self._rollup_due():
                # The log can sit *at* the threshold on entry: a crash
                # mid-roll-up recovers the full triggering log, so the
                # next sync must absorb it before appending -- otherwise
                # the bound "commits.rpl never exceeds the threshold"
                # breaks by exactly the pending count.  The roll-up also
                # persists everything pending (the base is rewritten from
                # the live chain), so this sync is already done.
                self.rollup(kb)
                return len(pending)
            if not pending:
                return 0
            dictionary = kb.first().graph.dictionary
            for version_id in pending:
                self.append_commit(kb.version(version_id), dictionary)
                if self._rollup_due():
                    # Roll-up rewrites the base from the live chain, which
                    # already holds every pending version -- the rest of
                    # the batch is absorbed, not appended.
                    self.rollup(kb)
                    break
            return len(pending)

    # -- roll-up -------------------------------------------------------------

    def _rollup_due(self) -> bool:
        """True when the log is at/over a configured roll-up threshold."""
        if self.rollup_records is not None and self._log_records >= self.rollup_records:
            return True
        if self.rollup_bytes is not None:
            try:
                if self.log_path.stat().st_size >= self.rollup_bytes:
                    return True
            except OSError:  # pragma: no cover - log not created yet
                pass
        return False

    def rollup(self, kb: VersionedKnowledgeBase) -> int:
        """Absorb the commit log into a fresh base; returns records absorbed.

        Rewrites ``kb.rpw`` from the live chain through the same atomic
        tmp + ``os.replace`` + directory-fsync path as :meth:`save`, then
        truncates ``commits.rpl`` -- so a long-lived server's recovery
        time is bounded by the roll-up threshold, not by its uptime.  The
        crash window between the replace and the truncation is safe by
        construction: every log record's version is already inside the
        new base, so the next boot's chain walk (:func:`_chained_prefix`)
        discards the whole log as superseded.  Crashing *during* the base
        write is equally safe -- the old base plus the old log are intact
        until the atomic replace publishes the new one.

        Runs under ``kb.write_lock``.  Also the repair path for a
        poisoned log (see :meth:`append_commit`): the full rewrite
        discards the torn tail and clears the poison.
        """
        if self._n_terms is None or self._version_ids is None:
            raise WireFormatError(
                "store has no disk-state cursor: save() or load() it first"
            )
        with kb.write_lock:
            ids = kb.version_ids()
            on_disk = self._version_ids
            if ids[: len(on_disk)] != on_disk:
                raise WireFormatError(
                    f"store {self.directory} is not a prefix of chain "
                    f"{kb.name!r}: have {on_disk}, chain has {ids}"
                )
            absorbed = self._log_records
            self._write_base(kb)
            self._truncate_log()
            self._set_cursor(kb)
            return absorbed

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release any memory map a past :meth:`load` left pinned (idempotent).

        The lazy decode copies everything it returns out of the map, so
        :meth:`load` normally closes it before returning; this is the
        backstop for a map a stray exported view kept alive.  Called on
        tenant eviction and at server shutdown
        (:meth:`repro.service.registry.Tenant.close`), so the store's fd
        lifetime is bounded by serving lifetime, not garbage collection.
        """
        still_pinned: List[Tuple[memoryview, mmap.mmap]] = []
        for view, buffer in self._pinned_maps:
            view.release()  # idempotent
            try:
                buffer.close()
            except BufferError:  # pragma: no cover - view still exported
                still_pinned.append((view, buffer))
        self._pinned_maps = still_pinned

    def __enter__(self) -> "BinaryKBStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"BinaryKBStore({str(self.directory)!r})"
