"""Users and their interest profiles.

Section III puts "humans in the loop": curators, editors, or anyone
producing and consuming data.  A :class:`User` couples an identifier with an
:class:`InterestProfile` -- a non-negative weighting over knowledge-base
classes plus a preference over measure families -- which the relatedness
perspective scores against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.kb.terms import IRI
from repro.measures.base import MeasureFamily


@dataclass(frozen=True)
class InterestProfile:
    """What a human cares about.

    ``class_weights``
        Non-negative interest per class IRI.  Missing classes have weight 0.
    ``family_weights``
        Non-negative preference per measure family (how much the user values
        count-style vs. semantic-style views of evolution).  Missing families
        default to a neutral 1.0 so a profile that says nothing about
        families is family-agnostic.
    """

    class_weights: Mapping[IRI, float] = field(default_factory=dict)
    family_weights: Mapping[MeasureFamily, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for cls, weight in self.class_weights.items():
            if weight < 0:
                raise ValueError(f"negative interest weight for {cls}: {weight}")
        for family, weight in self.family_weights.items():
            if weight < 0:
                raise ValueError(f"negative family weight for {family}: {weight}")

    def interest_in(self, cls: IRI) -> float:
        """Interest weight for ``cls`` (0.0 when unknown)."""
        return self.class_weights.get(cls, 0.0)

    def family_preference(self, family: MeasureFamily) -> float:
        """Preference weight for a measure family (neutral 1.0 when unset)."""
        return self.family_weights.get(family, 1.0)

    def top_classes(self, k: int) -> list[IRI]:
        """The ``k`` classes of highest interest (deterministic tie-break)."""
        ranked = sorted(self.class_weights.items(), key=lambda kv: (-kv[1], kv[0].value))
        return [cls for cls, w in ranked[:k] if w > 0]

    def normalized(self) -> "InterestProfile":
        """Class weights rescaled to peak 1.0 (family weights untouched)."""
        peak = max(self.class_weights.values(), default=0.0)
        if peak <= 0:
            return self
        return InterestProfile(
            class_weights={c: w / peak for c, w in self.class_weights.items()},
            family_weights=dict(self.family_weights),
        )

    def blend(self, other: "InterestProfile", alpha: float = 0.5) -> "InterestProfile":
        """Convex combination: ``alpha * self + (1 - alpha) * other``."""
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        classes = set(self.class_weights) | set(other.class_weights)
        families = set(self.family_weights) | set(other.family_weights)
        return InterestProfile(
            class_weights={
                c: alpha * self.interest_in(c) + (1 - alpha) * other.interest_in(c)
                for c in classes
            },
            family_weights={
                f: alpha * self.family_preference(f)
                + (1 - alpha) * other.family_preference(f)
                for f in families
            },
        )

    def is_empty(self) -> bool:
        """True when the profile expresses no class interest at all."""
        return not any(w > 0 for w in self.class_weights.values())


@dataclass(frozen=True)
class User:
    """A human in the loop: an id, a display name and an interest profile."""

    user_id: str
    profile: InterestProfile = field(default_factory=InterestProfile)
    name: str = ""

    def __post_init__(self) -> None:
        if not self.user_id:
            raise ValueError("user_id must be non-empty")

    def display_name(self) -> str:
        """The name when set, else the id."""
        return self.name or self.user_id
