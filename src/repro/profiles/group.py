"""Groups of users, for the group-recommendation perspectives.

Section III.d: "assume that we would like to recommend evolution measures to
a group of humans, e.g., the curators' team of a knowledge base."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.profiles.user import InterestProfile, User


@dataclass(frozen=True)
class Group:
    """A non-empty, duplicate-free collection of users."""

    group_id: str
    members: Tuple[User, ...]

    def __post_init__(self) -> None:
        if not self.group_id:
            raise ValueError("group_id must be non-empty")
        if not self.members:
            raise ValueError("a group needs at least one member")
        ids = [u.user_id for u in self.members]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate members in group {self.group_id!r}")

    def member_ids(self) -> Tuple[str, ...]:
        """The member user ids, in group order."""
        return tuple(u.user_id for u in self.members)

    def merged_profile(self) -> InterestProfile:
        """The uniform average of all member profiles.

        This is the naive group profile; the fairness-aware selectors in
        :mod:`repro.recommender.fairness` deliberately avoid relying on it
        alone (averaging can bury a minority member's interests).
        """
        merged = self.members[0].profile
        for i, user in enumerate(self.members[1:], start=2):
            # Running average: after i members each contributes 1/i.
            merged = merged.blend(user.profile, alpha=(i - 1) / i)
        return merged

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self) -> Iterator[User]:
        return iter(self.members)

    def __contains__(self, user: object) -> bool:
        if isinstance(user, User):
            return user in self.members
        return any(u.user_id == user for u in self.members)
