"""Feedback: recorded interactions between users and recommendation items.

The collaborative half of the relatedness perspective learns from these
events; the synthetic generator (:mod:`repro.synthetic.users`) produces them
with known ground truth so rankings can be evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple


@dataclass(frozen=True)
class FeedbackEvent:
    """One interaction: ``user_id`` rated ``item_key`` with ``rating``.

    ``item_key`` is the stable string key of a recommendation item (see
    :meth:`repro.recommender.items.RecommendationItem.key`).  Ratings are
    in [0, 1]: 1.0 = strong positive signal, 0.0 = explicit negative.
    """

    user_id: str
    item_key: str
    rating: float

    def __post_init__(self) -> None:
        if not self.user_id:
            raise ValueError("user_id must be non-empty")
        if not self.item_key:
            raise ValueError("item_key must be non-empty")
        if not 0.0 <= self.rating <= 1.0:
            raise ValueError(f"rating must be in [0, 1], got {self.rating}")


class FeedbackStore:
    """An append-only store of feedback events with rating aggregation.

    Repeated events for the same (user, item) pair are averaged, which
    matches how implicit-feedback pipelines usually de-noise repeated
    impressions.
    """

    def __init__(self, events: Iterable[FeedbackEvent] = ()) -> None:
        self._events: List[FeedbackEvent] = []
        self._sums: Dict[Tuple[str, str], float] = {}
        self._counts: Dict[Tuple[str, str], int] = {}
        for event in events:
            self.add(event)

    def add(self, event: FeedbackEvent) -> None:
        """Record one event."""
        self._events.append(event)
        key = (event.user_id, event.item_key)
        self._sums[key] = self._sums.get(key, 0.0) + event.rating
        self._counts[key] = self._counts.get(key, 0) + 1

    def rating(self, user_id: str, item_key: str) -> float | None:
        """Mean rating of the pair, or None when never rated."""
        key = (user_id, item_key)
        if key not in self._counts:
            return None
        return self._sums[key] / self._counts[key]

    def ratings_by_user(self, user_id: str) -> Dict[str, float]:
        """Mean rating of every item the user interacted with."""
        result: Dict[str, float] = {}
        for (uid, item_key), count in self._counts.items():
            if uid == user_id:
                result[item_key] = self._sums[(uid, item_key)] / count
        return result

    def ratings_by_item(self, item_key: str) -> Dict[str, float]:
        """Mean rating of every user who interacted with the item."""
        result: Dict[str, float] = {}
        for (uid, key), count in self._counts.items():
            if key == item_key:
                result[uid] = self._sums[(uid, key)] / count
        return result

    def users(self) -> List[str]:
        """Distinct user ids with at least one event, sorted."""
        return sorted({uid for uid, _ in self._counts})

    def items(self) -> List[str]:
        """Distinct item keys with at least one event, sorted."""
        return sorted({key for _, key in self._counts})

    def popularity(self) -> Dict[str, float]:
        """Per-item sum of ratings (the popularity baseline's signal)."""
        totals: Dict[str, float] = {}
        for (_, item_key), total in self._sums.items():
            totals[item_key] = totals.get(item_key, 0.0) + total
        return totals

    def matrix(self) -> Tuple[List[str], List[str], "FeedbackMatrix"]:
        """Dense user x item mean-rating matrix (numpy) plus its labels."""
        import numpy as np

        users = self.users()
        items = self.items()
        data = np.zeros((len(users), len(items)), dtype=float)
        user_index = {u: i for i, u in enumerate(users)}
        item_index = {k: j for j, k in enumerate(items)}
        for (uid, key), count in self._counts.items():
            data[user_index[uid], item_index[key]] = self._sums[(uid, key)] / count
        return users, items, data

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FeedbackEvent]:
        return iter(self._events)


# Type alias for documentation purposes; the matrix is a plain numpy array.
FeedbackMatrix = "numpy.ndarray"
