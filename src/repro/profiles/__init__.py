"""The human model (system S11): users, interest profiles, groups, feedback."""

from repro.profiles.feedback import FeedbackEvent, FeedbackStore
from repro.profiles.group import Group
from repro.profiles.user import InterestProfile, User

__all__ = [
    "FeedbackEvent",
    "FeedbackStore",
    "Group",
    "InterestProfile",
    "User",
]
