"""Synthetic ontology generation.

Generates a class forest (subsumption hierarchy) plus properties with
domain/range declarations.  The substitution rationale (DESIGN.md section 5):
the paper's motivating knowledge bases (DBpedia, YAGO, ...) are schema
forests with typed links, and every downstream component consumes only the
schema/triple interface, so a parameterised random forest with the right
shape exercises identical code paths while providing planted ground truth.
"""

from __future__ import annotations

import random
from typing import List

from repro.kb.graph import Graph
from repro.kb.namespaces import (
    Namespace,
    RDF_PROPERTY,
    RDF_TYPE,
    RDFS_CLASS,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
)
from repro.kb.terms import IRI
from repro.kb.triples import Triple
from repro.synthetic.config import SchemaConfig
from repro.util.rng import make_rng

#: Namespace of every synthetic term.
SYN = Namespace("http://synthetic.repro.org/onto#")


def class_iri(index: int) -> IRI:
    """The IRI of synthetic class ``index``."""
    return SYN[f"C{index}"]


def property_iri(index: int) -> IRI:
    """The IRI of synthetic property ``index``."""
    return SYN[f"p{index}"]


def generate_schema(
    config: SchemaConfig | None = None, seed: int | random.Random | None = 0
) -> Graph:
    """Generate the schema layer of a synthetic knowledge base.

    The first class is always a root; each later class either starts a new
    tree (with ``new_root_probability``) or attaches beneath a uniformly
    random earlier class, yielding the broad-shallow forests typical of real
    knowledge bases.  Properties pick a domain (biased towards reusing
    earlier domains, creating hub classes) and a uniform range.
    """
    config = config or SchemaConfig()
    rng = make_rng(seed)
    graph = Graph()

    classes: List[IRI] = []
    for index in range(config.n_classes):
        cls = class_iri(index)
        classes.append(cls)
        graph.add(Triple(cls, RDF_TYPE, RDFS_CLASS))
        if index > 0 and rng.random() >= config.new_root_probability:
            parent = classes[rng.randrange(index)]
            graph.add(Triple(cls, RDFS_SUBCLASSOF, parent))

    recent_domains: List[IRI] = []
    for index in range(config.n_properties):
        prop = property_iri(index)
        if recent_domains and rng.random() < config.reuse_domain_bias:
            domain = rng.choice(recent_domains)
        else:
            domain = rng.choice(classes)
            recent_domains.append(domain)
        range_cls = rng.choice(classes)
        graph.add(Triple(prop, RDF_TYPE, RDF_PROPERTY))
        graph.add(Triple(prop, RDFS_DOMAIN, domain))
        graph.add(Triple(prop, RDFS_RANGE, range_cls))

    return graph
