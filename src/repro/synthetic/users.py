"""Synthetic humans: interest profiles and noisy feedback with ground truth.

The calibration note for this reproduction says the pipeline "needs
synthetic feedback data": real curator interest data for evolving knowledge
bases does not exist publicly.  We generate users whose *ground-truth*
interests are known by construction:

* each user picks ``n_focus_classes`` focus classes (drawn from the hotspot
  region for a ``hotspot_affinity`` fraction of users, else uniformly),
* interest spreads from the foci over the class graph with per-hop decay
  (``interest_decay ** distance``) up to ``interest_depth`` hops,
* each user gets a measure-family *persona* (topology-, data- or
  balance-oriented) determining family preferences.

Feedback events are then sampled against any item universe: the rating of an
item is its ground-truth relevance plus Gaussian noise, clipped to [0, 1].
Because ground truth is retained, rankings can be scored with nDCG/P@k.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence

from repro.graphtools.spread import spread_interest
from repro.kb.schema import SchemaView
from repro.kb.terms import IRI
from repro.measures.base import MeasureFamily
from repro.measures.structural import class_graph
from repro.profiles.feedback import FeedbackEvent, FeedbackStore
from repro.profiles.group import Group
from repro.profiles.user import InterestProfile, User
from repro.synthetic.config import UserConfig
from repro.util.rng import make_rng

#: Measure-family personas: a name and the family weights it implies.
PERSONAS: Dict[str, Dict[MeasureFamily, float]] = {
    "topologist": {
        MeasureFamily.STRUCTURAL: 1.0,
        MeasureFamily.NEIGHBORHOOD: 0.8,
        MeasureFamily.COUNT: 0.3,
        MeasureFamily.SEMANTIC: 0.3,
    },
    "data_centric": {
        MeasureFamily.SEMANTIC: 1.0,
        MeasureFamily.COUNT: 0.8,
        MeasureFamily.STRUCTURAL: 0.3,
        MeasureFamily.NEIGHBORHOOD: 0.3,
    },
    "balanced": {
        MeasureFamily.COUNT: 0.7,
        MeasureFamily.NEIGHBORHOOD: 0.7,
        MeasureFamily.STRUCTURAL: 0.7,
        MeasureFamily.SEMANTIC: 0.7,
    },
}


def generate_users(
    schema: SchemaView,
    config: UserConfig | None = None,
    hotspots: Sequence[IRI] = (),
    seed: int | random.Random | None = 0,
) -> List[User]:
    """Generate ``n_users`` users with ground-truth interest profiles."""
    config = config or UserConfig()
    rng = make_rng(seed)
    graph = class_graph(schema)
    classes = sorted(schema.classes(), key=lambda c: c.value)
    if not classes:
        raise ValueError("schema has no classes to be interested in")

    hotspot_region: List[IRI] = sorted(
        {h for h in hotspots if h in schema.classes()}
        | {n for h in hotspots if h in schema.classes() for n in schema.neighborhood(h)},
        key=lambda c: c.value,
    )

    persona_names = sorted(PERSONAS)
    users: List[User] = []
    for index in range(config.n_users):
        hotspot_user = bool(hotspot_region) and rng.random() < config.hotspot_affinity
        pool = hotspot_region if hotspot_user else classes
        n_focus = min(config.n_focus_classes, len(pool))
        foci = rng.sample(pool, n_focus)
        class_weights = spread_interest(
            graph, foci, config.interest_decay, config.interest_depth
        )
        persona = persona_names[index % len(persona_names)]
        profile = InterestProfile(
            class_weights=class_weights,
            family_weights=dict(PERSONAS[persona]),
        )
        users.append(
            User(user_id=f"u{index}", profile=profile, name=f"{persona}-{index}")
        )
    return users


def make_groups(users: Sequence[User], group_size: int, seed: int | random.Random | None = 0) -> List[Group]:
    """Partition ``users`` into groups of ``group_size`` (last may be smaller)."""
    if group_size <= 0:
        raise ValueError(f"group_size must be positive, got {group_size}")
    rng = make_rng(seed)
    shuffled = list(users)
    rng.shuffle(shuffled)
    groups: List[Group] = []
    for start in range(0, len(shuffled), group_size):
        chunk = tuple(shuffled[start : start + group_size])
        if chunk:
            groups.append(Group(group_id=f"g{len(groups)}", members=chunk))
    return groups


def simulate_feedback(
    users: Sequence[User],
    item_keys: Sequence[str],
    relevance: Callable[[User, str], float],
    config: UserConfig | None = None,
    seed: int | random.Random | None = 0,
) -> FeedbackStore:
    """Sample noisy feedback events against an item universe.

    ``relevance(user, item_key)`` must return the ground-truth relevance in
    [0, 1].  Each user rates ``events_per_user`` uniformly exposed items;
    the recorded rating is the ground truth plus Gaussian noise (stddev
    ``feedback_noise``), clipped to [0, 1].
    """
    config = config or UserConfig()
    rng = make_rng(seed)
    store = FeedbackStore()
    if not item_keys:
        return store
    for user in users:
        n_events = min(config.events_per_user, len(item_keys))
        exposed = rng.sample(list(item_keys), n_events)
        for item_key in exposed:
            truth = relevance(user, item_key)
            noisy = truth + rng.gauss(0.0, config.feedback_noise)
            store.add(
                FeedbackEvent(
                    user_id=user.user_id,
                    item_key=item_key,
                    rating=min(1.0, max(0.0, noisy)),
                )
            )
    return store
