"""Synthetic instance population.

Populates a generated schema with instances (Zipf-skewed class popularity,
as observed in real Linked Data class distributions), instance-level links
along the declared property edges, and literal attributes.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.kb.graph import Graph
from repro.kb.namespaces import RDF_TYPE
from repro.kb.schema import SchemaView
from repro.kb.terms import IRI, Literal
from repro.kb.triples import Triple
from repro.synthetic.config import InstanceConfig
from repro.synthetic.schema_gen import SYN
from repro.util.rng import make_rng

#: Attribute property used for synthetic literal values.
HAS_VALUE = SYN.hasValue


def instance_iri(cls: IRI, index: int) -> IRI:
    """The IRI of the ``index``-th instance of ``cls``."""
    return SYN[f"{cls.local_name}_i{index}"]


def populate_instances(
    schema_graph: Graph,
    config: InstanceConfig | None = None,
    seed: int | random.Random | None = 0,
) -> Graph:
    """Return a copy of ``schema_graph`` populated with instance data.

    Class popularity is Zipf-like: the class at popularity rank ``r`` (a
    random permutation of the classes) receives
    ``base_instances_per_class / (r + 1) ** zipf_skew`` instances.  Each
    schema property edge then receives ``link_density * min(|dom|, |rng|)``
    instance links between uniformly sampled endpoints, and each instance
    carries a literal attribute with ``attribute_probability``.
    """
    config = config or InstanceConfig()
    rng = make_rng(seed)
    graph = schema_graph.copy()
    schema = SchemaView(schema_graph)

    classes = sorted(schema.classes(), key=lambda c: c.value)
    popularity_rank = list(range(len(classes)))
    rng.shuffle(popularity_rank)

    instances: Dict[IRI, List[IRI]] = {}
    for cls, rank in zip(classes, popularity_rank):
        count = int(config.base_instances_per_class / (rank + 1) ** config.zipf_skew)
        members = [instance_iri(cls, i) for i in range(count)]
        instances[cls] = members
        for member in members:
            graph.add(Triple(member, RDF_TYPE, cls))
            if rng.random() < config.attribute_probability:
                graph.add(
                    Triple(member, HAS_VALUE, Literal(str(rng.randrange(1000))))
                )

    for edge in schema.property_edges():
        sources = instances.get(edge.source, [])
        targets = instances.get(edge.target, [])
        if not sources or not targets:
            continue
        n_links = int(config.link_density * min(len(sources), len(targets)))
        for _ in range(n_links):
            graph.add(
                Triple(rng.choice(sources), edge.prop, rng.choice(targets))
            )

    return graph
