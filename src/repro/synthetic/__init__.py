"""Synthetic data generation (systems S9-S10).

Substitutes the data the paper assumes but this reproduction cannot obtain
(real knowledge-base version dumps and real curator interest data) with
parameterised generators that *plant* the ground truth the evaluation needs.
See DESIGN.md section 5 for the substitution rationale.
"""

from repro.synthetic.config import (
    EvolutionConfig,
    InstanceConfig,
    SchemaConfig,
    UserConfig,
    WorldConfig,
    default_op_mix,
)
from repro.synthetic.evolution import (
    EvolutionOp,
    EvolutionSimulator,
    EvolutionTrace,
    simulate_evolution,
)
from repro.synthetic.instance_gen import HAS_VALUE, instance_iri, populate_instances
from repro.synthetic.schema_gen import SYN, class_iri, generate_schema, property_iri
from repro.synthetic.users import (
    PERSONAS,
    generate_users,
    make_groups,
    simulate_feedback,
    spread_interest,
)
from repro.synthetic.world import SyntheticWorld, generate_world

__all__ = [
    "EvolutionConfig",
    "InstanceConfig",
    "SchemaConfig",
    "UserConfig",
    "WorldConfig",
    "default_op_mix",
    "EvolutionOp",
    "EvolutionSimulator",
    "EvolutionTrace",
    "simulate_evolution",
    "HAS_VALUE",
    "instance_iri",
    "populate_instances",
    "SYN",
    "class_iri",
    "generate_schema",
    "property_iri",
    "PERSONAS",
    "generate_users",
    "make_groups",
    "simulate_feedback",
    "spread_interest",
    "SyntheticWorld",
    "generate_world",
]
