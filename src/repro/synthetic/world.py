"""The synthetic world: one call that builds everything the paper needs.

A :class:`SyntheticWorld` bundles the evolving knowledge base, its planted
evolution trace (ground truth), the synthetic user population and groups.
``generate_world`` derives independent child seeds per component, so e.g.
changing the number of users never perturbs the evolution stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.deltas.changelog import ChangeLog
from repro.kb.version import VersionedKnowledgeBase
from repro.measures.base import EvolutionContext
from repro.profiles.group import Group
from repro.profiles.user import User
from repro.synthetic.config import (
    EvolutionConfig,
    SchemaConfig,
    UserConfig,
    WorldConfig,
)
from repro.synthetic.evolution import EvolutionTrace, simulate_evolution
from repro.synthetic.instance_gen import populate_instances
from repro.synthetic.schema_gen import generate_schema
from repro.synthetic.users import generate_users, make_groups
from repro.util.rng import derive_seed


@dataclass
class SyntheticWorld:
    """Everything generated for one seed: KB, trace, users, groups."""

    seed: int
    config: WorldConfig
    kb: VersionedKnowledgeBase
    trace: EvolutionTrace
    users: List[User]
    groups: List[Group]
    _changelog: ChangeLog | None = field(default=None, repr=False)

    @property
    def changelog(self) -> ChangeLog:
        """Cached change log over the world's version chain."""
        if self._changelog is None:
            self._changelog = ChangeLog(self.kb)
        return self._changelog

    def latest_context(self) -> EvolutionContext:
        """The evolution context of the last version pair (most recent step)."""
        versions = list(self.kb)
        if len(versions) < 2:
            raise ValueError("world has fewer than two versions")
        return EvolutionContext(versions[-2], versions[-1])

    def full_context(self) -> EvolutionContext:
        """The evolution context from the first to the latest version."""
        return EvolutionContext(self.kb.first(), self.kb.latest())


def generate_world(
    seed: int = 0,
    n_classes: int | None = None,
    n_versions: int | None = None,
    n_users: int | None = None,
    config: WorldConfig | None = None,
    group_size: int = 4,
) -> SyntheticWorld:
    """Generate a complete synthetic world.

    ``config`` gives full control; the keyword shortcuts override the most
    commonly swept parameters on top of it.
    """
    config = config or WorldConfig()
    if n_classes is not None:
        config = WorldConfig(
            schema=SchemaConfig(
                n_classes=n_classes,
                n_properties=config.schema.n_properties,
                new_root_probability=config.schema.new_root_probability,
                reuse_domain_bias=config.schema.reuse_domain_bias,
            ),
            instances=config.instances,
            evolution=config.evolution,
            users=config.users,
        )
    if n_versions is not None:
        ev = config.evolution
        config = WorldConfig(
            schema=config.schema,
            instances=config.instances,
            evolution=EvolutionConfig(
                n_versions=n_versions,
                changes_per_version=ev.changes_per_version,
                n_hotspots=ev.n_hotspots,
                hotspot_concentration=ev.hotspot_concentration,
                op_mix=dict(ev.op_mix),
            ),
            users=config.users,
        )
    if n_users is not None:
        uc = config.users
        config = WorldConfig(
            schema=config.schema,
            instances=config.instances,
            evolution=config.evolution,
            users=UserConfig(
                n_users=n_users,
                n_focus_classes=uc.n_focus_classes,
                interest_decay=uc.interest_decay,
                interest_depth=uc.interest_depth,
                hotspot_affinity=uc.hotspot_affinity,
                events_per_user=uc.events_per_user,
                feedback_noise=uc.feedback_noise,
            ),
        )

    schema_graph = generate_schema(config.schema, derive_seed(seed, "schema"))
    initial = populate_instances(
        schema_graph, config.instances, derive_seed(seed, "instances")
    )
    kb, trace = simulate_evolution(
        initial, config.evolution, derive_seed(seed, "evolution")
    )
    users = generate_users(
        kb.latest().schema,
        config.users,
        hotspots=sorted(trace.hotspots, key=lambda c: c.value),
        seed=derive_seed(seed, "users"),
    )
    groups = make_groups(users, group_size, derive_seed(seed, "groups"))
    return SyntheticWorld(
        seed=seed, config=config, kb=kb, trace=trace, users=users, groups=groups
    )
