"""The evolution simulator: hotspot-localised change injection.

The paper's goal is to "identify the most changed parts of a knowledge
base".  Real version dumps provide no ground truth about *which* parts those
are, so the simulator plants it: a small set of *hotspot* classes is chosen,
and each change op targets the hotspot region with probability
``hotspot_concentration`` (otherwise a uniformly random class).  The
resulting :class:`EvolutionTrace` records every op and per-class effect
counts -- the labels that experiments E1-E3 evaluate measures against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.kb.graph import Graph
from repro.kb.namespaces import (
    RDF_PROPERTY,
    RDF_TYPE,
    RDFS_CLASS,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
)
from repro.kb.schema import SchemaView
from repro.kb.terms import IRI, Literal
from repro.kb.triples import Triple
from repro.kb.version import VersionedKnowledgeBase
from repro.synthetic.config import EvolutionConfig
from repro.synthetic.instance_gen import HAS_VALUE
from repro.synthetic.schema_gen import SYN
from repro.util.rng import make_rng


@dataclass(frozen=True)
class EvolutionOp:
    """One applied change: which op kind hit which class at which step."""

    step: int  # 1-based: the step producing version step+1
    kind: str
    target_class: IRI
    in_hotspot: bool


@dataclass
class EvolutionTrace:
    """Planted ground truth of a simulated evolution."""

    hotspots: FrozenSet[IRI] = frozenset()
    ops: List[EvolutionOp] = field(default_factory=list)

    def effect_counts(self, step: int | None = None) -> Dict[IRI, int]:
        """Number of ops per target class (for one step, or overall)."""
        counts: Dict[IRI, int] = {}
        for op in self.ops:
            if step is None or op.step == step:
                counts[op.target_class] = counts.get(op.target_class, 0) + 1
        return counts

    def hotspot_region(self, schema: SchemaView) -> FrozenSet[IRI]:
        """Hotspots plus their schema neighbourhood."""
        region: Set[IRI] = set(self.hotspots)
        for cls in self.hotspots:
            if cls in schema.classes():
                region |= schema.neighborhood(cls)
        return frozenset(region)

    def most_affected(self, k: int) -> List[IRI]:
        """The ``k`` classes with the most ops (ground-truth 'most changed')."""
        counts = self.effect_counts()
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0].value))
        return [cls for cls, _ in ranked[:k]]


class EvolutionSimulator:
    """Applies randomised, hotspot-concentrated change ops between versions.

    The simulator owns naming counters so generated entities never collide
    with the initial population or with each other, keeping every version
    graph internally consistent.
    """

    def __init__(
        self,
        initial: Graph,
        config: EvolutionConfig | None = None,
        seed: int | random.Random | None = 0,
    ) -> None:
        self._initial = initial
        self._config = config or EvolutionConfig()
        self._rng = make_rng(seed)
        self._fresh_instances = 0
        self._fresh_classes = 0
        self._fresh_properties = 0

    def run(self, kb_name: str = "synthetic") -> Tuple[VersionedKnowledgeBase, EvolutionTrace]:
        """Simulate the configured number of versions.

        Returns the versioned KB (version ids ``v1..vN``) and the trace.
        """
        config = self._config
        kb = VersionedKnowledgeBase(kb_name)
        kb.commit(self._initial, version_id="v1")

        initial_schema = SchemaView(self._initial)
        classes = sorted(initial_schema.classes(), key=lambda c: c.value)
        if not classes:
            raise ValueError("initial graph has no classes to evolve")
        n_hotspots = min(config.n_hotspots, len(classes))
        hotspots = frozenset(self._rng.sample(classes, n_hotspots))
        trace = EvolutionTrace(hotspots=hotspots)

        current = self._initial
        for step in range(1, config.n_versions):
            current = self._evolve_once(current, step, hotspots, trace)
            kb.commit(current, version_id=f"v{step + 1}", copy=False)
        return kb, trace

    # -- one evolution step ------------------------------------------------------

    def _evolve_once(
        self,
        graph: Graph,
        step: int,
        hotspots: FrozenSet[IRI],
        trace: EvolutionTrace,
    ) -> Graph:
        config = self._config
        next_graph = graph.copy()
        schema = SchemaView(graph)  # snapshot of the step's *starting* schema
        state = _MutableState.from_schema(schema, next_graph)

        region = sorted(
            trace.hotspot_region(schema) & schema.classes(), key=lambda c: c.value
        )
        all_classes = sorted(schema.classes(), key=lambda c: c.value)
        op_names = sorted(config.op_mix)
        op_weights = [config.op_mix[name] for name in op_names]

        for _ in range(config.changes_per_version):
            in_hotspot = bool(region) and self._rng.random() < config.hotspot_concentration
            pool = region if in_hotspot else all_classes
            target = self._rng.choice(pool)
            kind = self._rng.choices(op_names, weights=op_weights, k=1)[0]
            applied = self._apply_op(kind, target, next_graph, state, schema)
            if applied:
                trace.ops.append(EvolutionOp(step, applied, target, in_hotspot))
        return next_graph

    def _apply_op(
        self,
        kind: str,
        target: IRI,
        graph: Graph,
        state: "_MutableState",
        schema: SchemaView,
    ) -> str | None:
        """Apply one op; returns the kind actually applied or None.

        Ops that are impossible on the current state (e.g. removing an
        instance of an empty class) degrade to ``add_instance``, so a step
        always applies the configured number of changes.
        """
        handler = {
            "add_instance": self._op_add_instance,
            "remove_instance": self._op_remove_instance,
            "add_link": self._op_add_link,
            "remove_link": self._op_remove_link,
            "change_attribute": self._op_change_attribute,
            "add_subclass": self._op_add_subclass,
            "move_class": self._op_move_class,
            "add_property": self._op_add_property,
        }.get(kind)
        if handler is None:
            raise ValueError(f"unknown evolution op kind: {kind!r}")
        if handler(target, graph, state, schema):
            return kind
        # Degrade to the always-possible op.
        self._op_add_instance(target, graph, state, schema)
        return "add_instance"

    # -- individual ops ----------------------------------------------------------

    def _fresh_instance(self, cls: IRI) -> IRI:
        self._fresh_instances += 1
        return SYN[f"{cls.local_name}_n{self._fresh_instances}"]

    def _op_add_instance(self, target, graph, state, schema) -> bool:
        instance = self._fresh_instance(target)
        graph.add(Triple(instance, RDF_TYPE, target))
        state.instances.setdefault(target, []).append(instance)
        # Often the new instance immediately links along an incident edge.
        if self._rng.random() < 0.5:
            edges = schema.outgoing_properties(target)
            if edges:
                edge = self._rng.choice(edges)
                targets = state.instances.get(edge.target, [])
                if targets:
                    graph.add(Triple(instance, edge.prop, self._rng.choice(targets)))
        return True

    def _op_remove_instance(self, target, graph, state, schema) -> bool:
        members = state.instances.get(target, [])
        if not members:
            return False
        instance = members.pop(self._rng.randrange(len(members)))
        graph.remove_all(list(graph.triples_mentioning(instance)))
        return True

    def _op_add_link(self, target, graph, state, schema) -> bool:
        edges = schema.outgoing_properties(target) + schema.incoming_properties(target)
        self._rng.shuffle(edges := list(edges))
        for edge in edges:
            sources = state.instances.get(edge.source, [])
            targets = state.instances.get(edge.target, [])
            if sources and targets:
                graph.add(
                    Triple(self._rng.choice(sources), edge.prop, self._rng.choice(targets))
                )
                return True
        return False

    def _op_remove_link(self, target, graph, state, schema) -> bool:
        members = set(state.instances.get(target, []))
        if not members:
            return False
        candidates = [
            t
            for member in sorted(members, key=lambda m: m.value)
            for t in graph.match(member, None, None)
            if t.predicate not in (RDF_TYPE, RDFS_SUBCLASSOF)
            and not isinstance(t.object, Literal)
        ]
        if not candidates:
            return False
        graph.remove(self._rng.choice(candidates))
        return True

    def _op_change_attribute(self, target, graph, state, schema) -> bool:
        members = state.instances.get(target, [])
        if not members:
            return False
        instance = self._rng.choice(members)
        existing = list(graph.match(instance, HAS_VALUE, None))
        for triple in existing:
            graph.remove(triple)
        graph.add(Triple(instance, HAS_VALUE, Literal(str(self._rng.randrange(1000)))))
        return True

    def _op_add_subclass(self, target, graph, state, schema) -> bool:
        self._fresh_classes += 1
        new_cls = SYN[f"C_new{self._fresh_classes}"]
        graph.add(Triple(new_cls, RDF_TYPE, RDFS_CLASS))
        graph.add(Triple(new_cls, RDFS_SUBCLASSOF, target))
        state.instances.setdefault(new_cls, [])
        return True

    def _op_move_class(self, target, graph, state, schema) -> bool:
        # Move a direct subclass of the target under a different class.
        children = sorted(schema.subclasses(target), key=lambda c: c.value)
        if not children:
            return False
        child = self._rng.choice(children)
        others = sorted(schema.classes() - {child, target}, key=lambda c: c.value)
        if not others:
            return False
        new_parent = self._rng.choice(others)
        graph.remove(Triple(child, RDFS_SUBCLASSOF, target))
        graph.add(Triple(child, RDFS_SUBCLASSOF, new_parent))
        return True

    def _op_add_property(self, target, graph, state, schema) -> bool:
        classes = sorted(schema.classes(), key=lambda c: c.value)
        if not classes:
            return False
        self._fresh_properties += 1
        prop = SYN[f"p_new{self._fresh_properties}"]
        graph.add(Triple(prop, RDF_TYPE, RDF_PROPERTY))
        graph.add(Triple(prop, RDFS_DOMAIN, target))
        graph.add(Triple(prop, RDFS_RANGE, self._rng.choice(classes)))
        return True


@dataclass
class _MutableState:
    """Instance bookkeeping that stays valid while a step mutates the graph."""

    instances: Dict[IRI, List[IRI]]

    @classmethod
    def from_schema(cls, schema: SchemaView, graph: Graph) -> "_MutableState":
        instances = {
            c: sorted(schema.instances_of(c), key=lambda m: str(m))
            for c in schema.classes()
        }
        return cls(instances=instances)


def simulate_evolution(
    initial: Graph,
    config: EvolutionConfig | None = None,
    seed: int | random.Random | None = 0,
    kb_name: str = "synthetic",
) -> Tuple[VersionedKnowledgeBase, EvolutionTrace]:
    """Convenience wrapper around :class:`EvolutionSimulator`."""
    return EvolutionSimulator(initial, config, seed).run(kb_name)
