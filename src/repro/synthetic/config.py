"""Configuration dataclasses for the synthetic-world generators.

Every knob the experiments sweep lives here, with defaults tuned so that
``generate_world()`` produces a small but structurally interesting world in
well under a second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.util.validation import (
    require_non_negative,
    require_positive,
    require_probability,
)


@dataclass(frozen=True)
class SchemaConfig:
    """Shape of the generated ontology."""

    n_classes: int = 60
    n_properties: int = 40
    new_root_probability: float = 0.08  # chance a class starts a new tree
    reuse_domain_bias: float = 0.5  # chance a property reuses a previous domain

    def __post_init__(self) -> None:
        require_positive(self.n_classes, "n_classes")
        require_non_negative(self.n_properties, "n_properties")
        require_probability(self.new_root_probability, "new_root_probability")
        require_probability(self.reuse_domain_bias, "reuse_domain_bias")


@dataclass(frozen=True)
class InstanceConfig:
    """Shape of the generated instance data."""

    base_instances_per_class: int = 12  # population of the most popular class
    zipf_skew: float = 1.0  # instance counts follow rank^-skew
    link_density: float = 0.8  # links per property edge, relative to population
    attribute_probability: float = 0.4  # chance an instance gets an attribute

    def __post_init__(self) -> None:
        require_non_negative(self.base_instances_per_class, "base_instances_per_class")
        require_non_negative(self.zipf_skew, "zipf_skew")
        require_non_negative(self.link_density, "link_density")
        require_probability(self.attribute_probability, "attribute_probability")


def default_op_mix() -> Dict[str, float]:
    """The default evolution-operation mix (weights, not probabilities)."""
    return {
        "add_instance": 4.0,
        "remove_instance": 2.0,
        "add_link": 4.0,
        "remove_link": 2.0,
        "change_attribute": 2.0,
        "add_subclass": 1.0,
        "move_class": 0.5,
        "add_property": 0.5,
    }


@dataclass(frozen=True)
class EvolutionConfig:
    """Shape of the evolution process between versions.

    ``hotspot_concentration`` is the probability that any given change
    targets the hotspot region rather than a uniformly random class; 0.0
    yields uniform evolution, 1.0 fully localised evolution.  This is the
    planted ground truth the measures are evaluated against.
    """

    n_versions: int = 4  # total versions (>= 2 for any delta to exist)
    changes_per_version: int = 80
    n_hotspots: int = 3
    hotspot_concentration: float = 0.8
    op_mix: Dict[str, float] = field(default_factory=default_op_mix)

    def __post_init__(self) -> None:
        require_positive(self.n_versions, "n_versions")
        require_non_negative(self.changes_per_version, "changes_per_version")
        require_non_negative(self.n_hotspots, "n_hotspots")
        require_probability(self.hotspot_concentration, "hotspot_concentration")
        if not self.op_mix:
            raise ValueError("op_mix must not be empty")
        for name, weight in self.op_mix.items():
            require_non_negative(weight, f"op_mix[{name!r}]")
        if sum(self.op_mix.values()) <= 0:
            raise ValueError("op_mix weights must not all be zero")


@dataclass(frozen=True)
class UserConfig:
    """Shape of the synthetic user population and its feedback."""

    n_users: int = 12
    n_focus_classes: int = 3  # classes each user genuinely cares about
    interest_decay: float = 0.5  # per-hop decay of interest around a focus
    interest_depth: int = 2  # how many hops interest spreads
    hotspot_affinity: float = 0.5  # fraction of users whose foci sit in hotspots
    events_per_user: int = 30  # feedback events sampled per user
    feedback_noise: float = 0.15  # stddev of rating noise

    def __post_init__(self) -> None:
        require_positive(self.n_users, "n_users")
        require_positive(self.n_focus_classes, "n_focus_classes")
        require_probability(self.interest_decay, "interest_decay")
        require_non_negative(self.interest_depth, "interest_depth")
        require_probability(self.hotspot_affinity, "hotspot_affinity")
        require_non_negative(self.events_per_user, "events_per_user")
        require_non_negative(self.feedback_noise, "feedback_noise")


@dataclass(frozen=True)
class WorldConfig:
    """Bundle of all generator configurations."""

    schema: SchemaConfig = field(default_factory=SchemaConfig)
    instances: InstanceConfig = field(default_factory=InstanceConfig)
    evolution: EvolutionConfig = field(default_factory=EvolutionConfig)
    users: UserConfig = field(default_factory=UserConfig)
