"""Schema-level view over a triple graph.

The evolution measures of the paper (Section II) are defined over *classes*
and *properties* of a knowledge base, their subsumption hierarchy, the
properties connecting classes (via ``rdfs:domain`` / ``rdfs:range``) and the
instance data populating them.  :class:`SchemaView` derives all of that from
a plain :class:`~repro.kb.graph.Graph` once, with lazy caching, and exposes
the vocabulary the measures need:

* ``classes()`` / ``properties()`` -- the schema elements,
* ``subclasses`` / ``superclasses`` (direct and transitive),
* ``domain`` / ``range`` and per-class incoming/outgoing properties,
* ``instances_of`` / ``instance_count``,
* ``neighborhood(n)`` -- the classes related to ``n`` via subsumption or via
  a property, exactly the neighbourhood of Section II.b,
* ``class_edges()`` -- the class-level graph used by the structural measures
  of Section II.c.

A :class:`SchemaView` is a *snapshot*: it caches aggressively, pinned to the
graph's mutation counter -- if the underlying graph changes after the view is
taken, every cache (including the ``memo`` artefact store) self-invalidates
on next access, so stale derived values are never served.  Versioned KBs
hand out one view per version; a child view can additionally be hinted with
its parent's view plus the commit delta (:meth:`SchemaView.seed_from_parent`),
which lets the artefact layers above maintain expensive derived state
(betweenness, semantic centralities, relative cardinalities) incrementally
instead of recomputing it cold per version.

Views are safe to share across threads (the serving layer scores many
concurrent requests against the same immutable version snapshots): every
lazy fill that publishes more than one attribute runs under a per-view
reentrant lock, and :meth:`SchemaView.memoize` gives the artefact layers a
first-fill-once primitive for the ``memo`` store.  Single-attribute fills
stay lock-free double-checked -- under the GIL a racing thread can at worst
recompute the same deterministic value, never observe a torn cache.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from functools import lru_cache
from itertools import chain
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.kb.errors import SchemaError
from repro.kb.graph import Graph
from repro.kb.namespaces import (
    OWL,
    OWL_CLASS,
    OWL_OBJECT_PROPERTY,
    RDF,
    RDF_PROPERTY,
    RDF_TYPE,
    RDFS,
    RDFS_CLASS,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
    XSD,
)
from repro.kb.terms import IRI, Term

_BUILTIN_NAMESPACES = (RDF, RDFS, OWL, XSD)


# Builtin-ness is a pure function of the IRI string, and the schema/measure
# layers ask it for the same handful of vocabulary terms millions of times;
# a bounded memo turns the four-namespace prefix scan into a dict hit
# without growing for the life of a long-running process.
@lru_cache(maxsize=65536)
def _is_builtin_value(value: str) -> bool:
    return any(value.startswith(ns.base) for ns in _BUILTIN_NAMESPACES)


def _is_builtin(iri: IRI) -> bool:
    return _is_builtin_value(iri.value)


@dataclass(frozen=True)
class _LinkIndex:
    """One-pass index over instance-level links (see ``SchemaView._links``).

    ``connection_counts`` maps ``(property, source class, target class)`` to
    the number of instance links; ``subject_links`` / ``object_links`` map
    an instance to the ids of the links it can claim for a member set;
    ``class_links`` pre-unions those per class (every link id any member
    can claim), so the relative-cardinality denominator is a union of a
    few per-class sets instead of a walk over every member -- the semantic
    measures query it once per property edge, and the per-member walk used
    to dominate a cold first evaluation on instance-heavy versions.
    """

    connection_counts: Dict[Tuple[IRI, IRI, IRI], int]
    subject_links: Dict[Term, FrozenSet[int]]
    object_links: Dict[Term, FrozenSet[int]]
    class_links: Dict[IRI, FrozenSet[int]]


@dataclass(frozen=True)
class PropertyEdge:
    """A schema-level edge: property ``prop`` connecting ``source`` -> ``target``.

    ``source`` is a domain class of the property, ``target`` a range class.
    """

    source: IRI
    prop: IRI
    target: IRI


class SchemaView:
    """Derived schema view of a graph (see module docstring)."""

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        # Reentrant: artefact factories running under memoize() call back
        # into locked fills (e.g. betweenness -> class_edges), and the
        # revalidation path can trigger while the lock is already held.
        self._lock = threading.RLock()
        self._reset_caches()

    def _reset_caches(self) -> None:
        """(Re)initialise every lazy cache, pinned to the graph's revision."""
        self._revision = self._graph.revision
        self._classes: FrozenSet[IRI] | None = None
        self._classes_nonbuiltin: FrozenSet[IRI] | None = None
        self._properties: FrozenSet[IRI] | None = None
        self._properties_nonbuiltin: FrozenSet[IRI] | None = None
        self._direct_superclasses: Dict[IRI, Set[IRI]] | None = None
        self._direct_subclasses: Dict[IRI, Set[IRI]] | None = None
        self._domains: Dict[IRI, Set[IRI]] | None = None
        self._ranges: Dict[IRI, Set[IRI]] | None = None
        self._instances: Dict[IRI, Set[Term]] | None = None
        self._instance_classes: Dict[Term, FrozenSet[IRI]] | None = None
        self._property_edges: Tuple[PropertyEdge, ...] | None = None
        self._edges_by_source: Dict[IRI, Tuple[PropertyEdge, ...]] | None = None
        self._edges_by_target: Dict[IRI, Tuple[PropertyEdge, ...]] | None = None
        self._edges_by_prop: Dict[IRI, Tuple[PropertyEdge, ...]] | None = None
        self._link_index: "_LinkIndex | None" = None
        self._neighborhoods: Dict[IRI, FrozenSet[IRI]] = {}
        self._parent_hint: Optional[Tuple["SchemaView", FrozenSet, FrozenSet]] = None
        self._parent_revision: int | None = None
        self._affected: FrozenSet[IRI] | None = None
        self._affected_dilated: FrozenSet[IRI] | None = None
        self._memo: Dict[str, object] = {}

    def _revalidate(self) -> None:
        """Drop every cache if the graph mutated since it was filled.

        A SchemaView is meant to be a snapshot of an immutable graph, but
        nothing stops a caller from mutating the graph after taking a view.
        Comparing the graph's mutation counter on every cache access makes
        that safe: stale derived artefacts (betweenness, centralities,
        relative cardinalities...) are discarded instead of served.
        """
        if self._revision != self._graph.revision:
            with self._lock:
                if self._revision != self._graph.revision:
                    self._reset_caches()

    @property
    def memo(self) -> Dict[str, object]:
        """Scratch cache for derived artefacts computed by higher layers
        (class graphs, betweenness maps, centrality tables...).  Keys are
        namespaced strings; values are caller-defined.  Reading it checks
        the graph's revision, so a mutation after the view was taken can
        never serve stale artefacts.
        """
        self._revalidate()
        return self._memo

    def memoize(self, key: str, factory: Callable[[], object]) -> object:
        """``memo[key]``, filling it with ``factory()`` exactly once.

        The concurrent-first-fill primitive of the artefact layers: when
        many serving threads hit a cold version simultaneously, one thread
        computes the artefact under the view lock and the rest wait and
        reuse it, instead of all recomputing.  ``factory`` may itself write
        additional memo keys (the lock is reentrant).
        """
        memo = self.memo
        value = memo.get(key)
        if value is None:
            with self._lock:
                memo = self.memo  # a revision bump may have swapped the dict
                value = memo.get(key)
                if value is None:
                    value = factory()
                    memo[key] = value
        return value

    @property
    def graph(self) -> Graph:
        """The underlying triple graph."""
        return self._graph

    # -- incremental seeding (delta-aware derived artefacts) -----------------

    def seed_from_parent(
        self,
        parent: "SchemaView",
        added: Iterable,
        deleted: Iterable,
    ) -> None:
        """Declare that this view's graph is ``parent``'s graph plus a delta.

        ``added`` / ``deleted`` are the triples turning the parent graph
        into this view's graph.  The hint lets artefact layers (structural
        betweenness, semantic centralities) seed this view's caches from
        the parent's instead of recomputing from scratch;
        :meth:`delta_affected_classes` bounds which cached values may have
        changed.  The hint is advisory: with no parent artefacts computed,
        everything falls back to the cold path.
        """
        with self._lock:
            self._revalidate()
            self._parent_hint = (parent, frozenset(added), frozenset(deleted))
            self._parent_revision = parent.graph.revision
            self._affected = None
            self._affected_dilated = None

    def parent_hint(self) -> Optional[Tuple["SchemaView", FrozenSet, FrozenSet]]:
        """The ``(parent view, added, deleted)`` hint, or None.

        The hint is dropped if either graph mutated since seeding: the
        recorded delta then no longer describes the parent -> child
        difference, and carrying parent cache entries (refilled against the
        mutated parent graph) would smuggle stale values past the child's
        own revision guard.
        """
        self._revalidate()
        # Read once into a local: a concurrent thread may clear the hint
        # between a None-check and a re-read of the attribute.
        hint = self._parent_hint
        if hint is not None and hint[0].graph.revision != self._parent_revision:
            with self._lock:
                self._parent_hint = None
                self._parent_revision = None
                self._affected = None
                self._affected_dilated = None
            hint = None
        return hint

    def delta_affected_classes(self) -> FrozenSet[IRI] | None:
        """Classes whose derived per-class artefacts may differ from the parent.

        None without a parent hint.  The set is conservative (sound, not
        minimal): it contains every class that appears or vanishes, every
        class mentioned by a changed triple, every class of an instance
        touched by a changed triple (in either version), and -- for changed
        ``rdfs:domain``/``rdfs:range``/``rdfs:subPropertyOf`` declarations --
        the domain and range classes of the declared property in both
        versions.  A class outside this set has identical instance
        membership, identical instance links and an identical incident
        schema-edge set in both versions, so per-class values keyed on those
        (relative cardinalities in particular) carry over exactly.
        """
        hint = self.parent_hint()
        if hint is None:
            return None
        if self._affected is None:
            parent, added, deleted = hint
            views = (parent, self)
            known = parent.classes(include_builtin=True) | self.classes(
                include_builtin=True
            )
            affected: Set[IRI] = set(parent.classes() ^ self.classes())
            structural = (RDFS_DOMAIN, RDFS_RANGE, RDFS_SUBPROPERTYOF)
            for triple in chain(added, deleted):
                subject, predicate, obj = triple.subject, triple.predicate, triple.object
                for term in (subject, obj):
                    if isinstance(term, IRI) and term in known:
                        affected.add(term)
                    for view in views:
                        affected |= view.classes_of(term)
                if isinstance(predicate, IRI) and predicate in known:
                    affected.add(predicate)
                if predicate in structural and isinstance(subject, IRI):
                    for view in views:
                        affected |= view.domain(subject) | view.range(subject)
            self._affected = frozenset(affected)
        return self._affected

    def delta_affected_classes_dilated(self) -> FrozenSet[IRI] | None:
        """The affected set dilated one hop along schema property edges.

        A class's *aggregated* artefacts (semantic in/out-centrality sums)
        depend on the relative cardinality of every incident edge, and an
        edge changes when either endpoint is affected -- so aggregates are
        only safe to carry for classes with no affected edge neighbour in
        either version.
        """
        hint = self.parent_hint()
        affected = self.delta_affected_classes()
        if hint is None or affected is None:
            return None
        if self._affected_dilated is None:
            parent = hint[0]
            dilated: Set[IRI] = set(affected)
            for view in (parent, self):
                for cls in affected:
                    for edge in view.outgoing_properties(cls):
                        dilated.add(edge.target)
                    for edge in view.incoming_properties(cls):
                        dilated.add(edge.source)
            self._affected_dilated = frozenset(dilated)
        return self._affected_dilated

    # -- schema elements ----------------------------------------------------

    def classes(self, include_builtin: bool = False) -> FrozenSet[IRI]:
        """All classes of the knowledge base.

        A term counts as a class if it is explicitly typed as
        ``rdfs:Class``/``owl:Class``, appears as an endpoint of
        ``rdfs:subClassOf``, is the object of an ``rdfs:domain``/``rdfs:range``
        assertion, or is the object of any ``rdf:type`` assertion.  Builtin
        vocabulary terms (rdf/rdfs/owl/xsd) are excluded unless requested.
        """
        self._revalidate()
        if self._classes is None:
            found: Set[IRI] = set()
            g = self._graph
            for class_meta in (RDFS_CLASS, OWL_CLASS):
                for s in g.subjects(RDF_TYPE, class_meta):
                    if isinstance(s, IRI):
                        found.add(s)
            for triple in g.match(None, RDFS_SUBCLASSOF, None):
                if isinstance(triple.subject, IRI):
                    found.add(triple.subject)
                if isinstance(triple.object, IRI):
                    found.add(triple.object)
            for pred in (RDFS_DOMAIN, RDFS_RANGE):
                for triple in g.match(None, pred, None):
                    if isinstance(triple.object, IRI):
                        found.add(triple.object)
            for triple in g.match(None, RDF_TYPE, None):
                if isinstance(triple.object, IRI):
                    found.add(triple.object)
            self._classes = frozenset(found)
        if include_builtin:
            return self._classes
        if self._classes_nonbuiltin is None:
            self._classes_nonbuiltin = frozenset(
                c for c in self._classes if not _is_builtin(c)
            )
        return self._classes_nonbuiltin

    def properties(self, include_builtin: bool = False) -> FrozenSet[IRI]:
        """All properties of the knowledge base.

        A term counts as a property if it is typed ``rdf:Property`` /
        ``owl:ObjectProperty``, carries an ``rdfs:domain``/``rdfs:range``,
        appears as an endpoint of ``rdfs:subPropertyOf``, or is used as a
        predicate of a non-vocabulary triple.
        """
        self._revalidate()
        if self._properties is None:
            found: Set[IRI] = set()
            g = self._graph
            for prop_meta in (RDF_PROPERTY, OWL_OBJECT_PROPERTY):
                for s in g.subjects(RDF_TYPE, prop_meta):
                    if isinstance(s, IRI):
                        found.add(s)
            for pred in (RDFS_DOMAIN, RDFS_RANGE):
                for triple in g.match(None, pred, None):
                    if isinstance(triple.subject, IRI):
                        found.add(triple.subject)
            for triple in g.match(None, RDFS_SUBPROPERTYOF, None):
                if isinstance(triple.subject, IRI):
                    found.add(triple.subject)
                if isinstance(triple.object, IRI):
                    found.add(triple.object)
            for triple in g.match(None, None, None):
                if not _is_builtin(triple.predicate):
                    found.add(triple.predicate)
            self._properties = frozenset(found)
        if include_builtin:
            return self._properties
        if self._properties_nonbuiltin is None:
            self._properties_nonbuiltin = frozenset(
                p for p in self._properties if not _is_builtin(p)
            )
        return self._properties_nonbuiltin

    def is_class(self, term: Term) -> bool:
        """True if ``term`` is a (non-builtin) class of this KB."""
        return isinstance(term, IRI) and term in self.classes()

    def is_property(self, term: Term) -> bool:
        """True if ``term`` is a (non-builtin) property of this KB."""
        return isinstance(term, IRI) and term in self.properties()

    # -- subsumption ----------------------------------------------------------

    def _subsumption_maps(self) -> Tuple[Dict[IRI, Set[IRI]], Dict[IRI, Set[IRI]]]:
        # The two maps publish together under the lock: a lock-free reader
        # racing the fill could otherwise observe supers set but subs None.
        self._revalidate()
        if self._direct_superclasses is None:
            with self._lock:
                if self._direct_superclasses is None:
                    supers: Dict[IRI, Set[IRI]] = {}
                    subs: Dict[IRI, Set[IRI]] = {}
                    for triple in self._graph.match(None, RDFS_SUBCLASSOF, None):
                        if isinstance(triple.subject, IRI) and isinstance(
                            triple.object, IRI
                        ):
                            supers.setdefault(triple.subject, set()).add(triple.object)
                            subs.setdefault(triple.object, set()).add(triple.subject)
                    self._direct_subclasses = subs
                    self._direct_superclasses = supers
        assert self._direct_subclasses is not None
        return self._direct_superclasses, self._direct_subclasses

    def superclasses(self, cls: IRI, transitive: bool = False) -> FrozenSet[IRI]:
        """Direct (or transitive) superclasses of ``cls``."""
        supers, _ = self._subsumption_maps()
        if not transitive:
            return frozenset(supers.get(cls, ()))
        return self._closure(cls, supers)

    def subclasses(self, cls: IRI, transitive: bool = False) -> FrozenSet[IRI]:
        """Direct (or transitive) subclasses of ``cls``."""
        _, subs = self._subsumption_maps()
        if not transitive:
            return frozenset(subs.get(cls, ()))
        return self._closure(cls, subs)

    @staticmethod
    def _closure(start: IRI, step: Dict[IRI, Set[IRI]]) -> FrozenSet[IRI]:
        seen: Set[IRI] = set()
        frontier = deque(step.get(start, ()))
        while frontier:
            node = frontier.popleft()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(step.get(node, ()))
        return frozenset(seen)

    def roots(self) -> FrozenSet[IRI]:
        """Classes with no (non-builtin) superclass."""
        return frozenset(
            c for c in self.classes() if not any(not _is_builtin(s) for s in self.superclasses(c))
        )

    def depth(self, cls: IRI) -> int:
        """Length of the shortest superclass chain from ``cls`` to a root.

        Roots have depth 0.  Raises :class:`SchemaError` for unknown classes.
        """
        if cls not in self.classes(include_builtin=True):
            raise SchemaError(f"unknown class: {cls}")
        supers, _ = self._subsumption_maps()
        depth = 0
        frontier: Set[IRI] = {cls}
        seen: Set[IRI] = set(frontier)
        while frontier:
            parents: Set[IRI] = set()
            for node in frontier:
                parents |= {p for p in supers.get(node, ()) if not _is_builtin(p)}
            parents -= seen
            if not parents:
                return depth
            seen |= parents
            frontier = parents
            depth += 1
        return depth

    # -- property structure ---------------------------------------------------

    def _domain_range_maps(self) -> Tuple[Dict[IRI, Set[IRI]], Dict[IRI, Set[IRI]]]:
        self._revalidate()
        if self._domains is None:
            with self._lock:
                if self._domains is None:
                    domains: Dict[IRI, Set[IRI]] = {}
                    ranges: Dict[IRI, Set[IRI]] = {}
                    for triple in self._graph.match(None, RDFS_DOMAIN, None):
                        if isinstance(triple.subject, IRI) and isinstance(
                            triple.object, IRI
                        ):
                            domains.setdefault(triple.subject, set()).add(triple.object)
                    for triple in self._graph.match(None, RDFS_RANGE, None):
                        if isinstance(triple.subject, IRI) and isinstance(
                            triple.object, IRI
                        ):
                            ranges.setdefault(triple.subject, set()).add(triple.object)
                    # Ranges publish first: the fast path checks _domains.
                    self._ranges = ranges
                    self._domains = domains
        assert self._ranges is not None
        return self._domains, self._ranges

    def domain(self, prop: IRI) -> FrozenSet[IRI]:
        """Declared domain classes of ``prop`` (possibly empty)."""
        domains, _ = self._domain_range_maps()
        return frozenset(domains.get(prop, ()))

    def range(self, prop: IRI) -> FrozenSet[IRI]:
        """Declared range classes of ``prop`` (possibly empty)."""
        _, ranges = self._domain_range_maps()
        return frozenset(ranges.get(prop, ()))

    def property_edges(self) -> Tuple[PropertyEdge, ...]:
        """Every (domain class, property, range class) schema edge."""
        self._revalidate()
        if self._property_edges is None:
            edges: List[PropertyEdge] = []
            domains, ranges = self._domain_range_maps()
            for prop in sorted(set(domains) | set(ranges), key=lambda p: p.value):
                if _is_builtin(prop):
                    continue
                for src in sorted(domains.get(prop, ()), key=lambda c: c.value):
                    for dst in sorted(ranges.get(prop, ()), key=lambda c: c.value):
                        edges.append(PropertyEdge(src, prop, dst))
            self._property_edges = tuple(edges)
        return self._property_edges

    def _edge_maps(
        self,
    ) -> Tuple[
        Dict[IRI, Tuple[PropertyEdge, ...]],
        Dict[IRI, Tuple[PropertyEdge, ...]],
        Dict[IRI, Tuple[PropertyEdge, ...]],
    ]:
        """Per-class / per-property edge indexes (edge order preserved).

        The semantic measures ask for the edges of every class of both
        versions; indexing once replaces a full edge scan per query.
        """
        self._revalidate()
        if self._edges_by_source is None:
            with self._lock:
                if self._edges_by_source is None:
                    by_source: Dict[IRI, List[PropertyEdge]] = {}
                    by_target: Dict[IRI, List[PropertyEdge]] = {}
                    by_prop: Dict[IRI, List[PropertyEdge]] = {}
                    for edge in self.property_edges():
                        by_source.setdefault(edge.source, []).append(edge)
                        by_target.setdefault(edge.target, []).append(edge)
                        by_prop.setdefault(edge.prop, []).append(edge)
                    # by_source publishes last: it is the fast-path check.
                    self._edges_by_target = {c: tuple(e) for c, e in by_target.items()}
                    self._edges_by_prop = {p: tuple(e) for p, e in by_prop.items()}
                    self._edges_by_source = {c: tuple(e) for c, e in by_source.items()}
        assert self._edges_by_target is not None and self._edges_by_prop is not None
        return self._edges_by_source, self._edges_by_target, self._edges_by_prop

    def outgoing_properties(self, cls: IRI) -> Tuple[PropertyEdge, ...]:
        """Schema edges whose domain is ``cls``."""
        return self._edge_maps()[0].get(cls, ())

    def incoming_properties(self, cls: IRI) -> Tuple[PropertyEdge, ...]:
        """Schema edges whose range is ``cls``."""
        return self._edge_maps()[1].get(cls, ())

    def edges_of_property(self, prop: IRI) -> Tuple[PropertyEdge, ...]:
        """Schema edges carried by ``prop``."""
        return self._edge_maps()[2].get(prop, ())

    # -- instances --------------------------------------------------------------

    def _instance_map(self) -> Dict[IRI, Set[Term]]:
        self._revalidate()
        if self._instances is None:
            classes = self.classes(include_builtin=True)
            instances: Dict[IRI, Set[Term]] = {}
            for triple in self._graph.match(None, RDF_TYPE, None):
                obj = triple.object
                if isinstance(obj, IRI) and obj in classes and not _is_builtin(obj):
                    if triple.subject not in classes:
                        instances.setdefault(obj, set()).add(triple.subject)
            self._instances = instances
        return self._instances

    def instances_of(self, cls: IRI, transitive: bool = False) -> FrozenSet[Term]:
        """Instances typed ``cls`` (optionally including subclass instances)."""
        inst = self._instance_map()
        result: Set[Term] = set(inst.get(cls, ()))
        if transitive:
            for sub in self.subclasses(cls, transitive=True):
                result |= inst.get(sub, set())
        return frozenset(result)

    def instance_count(self, cls: IRI, transitive: bool = False) -> int:
        """``len(instances_of(cls, transitive))`` without building a frozenset copy."""
        if not transitive:
            return len(self._instance_map().get(cls, ()))
        return len(self.instances_of(cls, transitive=True))

    def total_instances(self) -> int:
        """Number of distinct instance terms across all classes."""
        all_instances: Set[Term] = set()
        for members in self._instance_map().values():
            all_instances |= members
        return len(all_instances)

    def classes_of(self, instance: Term) -> FrozenSet[IRI]:
        """The classes an instance is directly typed with."""
        self._revalidate()
        if self._instance_classes is None:
            reverse: Dict[Term, Set[IRI]] = {}
            for cls, members in self._instance_map().items():
                for member in members:
                    reverse.setdefault(member, set()).add(cls)
            self._instance_classes = {m: frozenset(c) for m, c in reverse.items()}
        return self._instance_classes.get(instance, frozenset())

    # -- neighbourhood (Section II.b) ------------------------------------------

    def neighborhood(self, cls: IRI) -> FrozenSet[IRI]:
        """Classes related to ``cls`` via subsumption or via a property.

        This is the single-version neighbourhood of Section II.b: the classes
        that are either sub/superclasses of ``cls`` or connected with ``cls``
        through some property's domain/range pair.  The union across two
        versions (the paper's ``N_{V1,V2}(n)``) is taken by the measure layer.

        Cached per view: the semantic relevance measure asks for the same
        neighbourhoods once per context, and a version's view serves many
        contexts.
        """
        self._revalidate()
        cached = self._neighborhoods.get(cls)
        if cached is not None:
            return cached
        related: Set[IRI] = set()
        related |= self.superclasses(cls)
        related |= self.subclasses(cls)
        by_source, by_target, _ = self._edge_maps()
        for edge in by_source.get(cls, ()):
            related.add(edge.target)
        for edge in by_target.get(cls, ()):
            if edge.source != cls:
                related.add(edge.source)
        related.discard(cls)
        result = frozenset(c for c in related if not _is_builtin(c))
        self._neighborhoods[cls] = result
        return result

    # -- class-level graph (Section II.c substrate) ------------------------------

    def class_edges(self, include_subsumption: bool = True) -> Set[Tuple[IRI, IRI]]:
        """Undirected class-graph edges used by the structural measures.

        Each subsumption pair and each property (domain, range) pair
        contributes one undirected edge ``(a, b)`` with ``a < b`` by IRI value.
        Self-loops are dropped.
        """
        edges: Set[Tuple[IRI, IRI]] = set()

        def _undirected(a: IRI, b: IRI) -> None:
            if a == b or _is_builtin(a) or _is_builtin(b):
                return
            edges.add((a, b) if a.value <= b.value else (b, a))

        if include_subsumption:
            supers, _ = self._subsumption_maps()
            for cls, parents in supers.items():
                for parent in parents:
                    _undirected(cls, parent)
        for edge in self.property_edges():
            _undirected(edge.source, edge.target)
        return edges

    # -- instance-level connections (Section II.d substrate) ---------------------
    #
    # The semantic measures call these once per (property edge, class) pair;
    # a naive implementation rescans the graph each time and dominated the
    # whole pipeline (experiment E10).  A single pass builds the link index
    # below, after which both queries are dictionary lookups / small unions.

    def _links(self) -> "_LinkIndex":
        self._revalidate()
        if self._link_index is None:
            with self._lock:
                if self._link_index is not None:
                    return self._link_index
                instance_classes: Dict[Term, Tuple[IRI, ...]] = {}
                for cls, members in self._instance_map().items():
                    for member in members:
                        instance_classes[member] = instance_classes.get(member, ()) + (cls,)

                connection_counts: Dict[Tuple[IRI, IRI, IRI], int] = {}
                subject_links: Dict[Term, List[int]] = {}
                object_links: Dict[Term, List[int]] = {}
                link_id = 0
                for triple in self._graph.match(None, None, None):
                    if _is_builtin(triple.predicate):
                        continue
                    obj = triple.object
                    is_instance_object = obj in instance_classes
                    if not isinstance(obj, IRI) and not is_instance_object:
                        continue  # literal attributes / anonymous non-instances
                    # A link counts for a member set when its subject is a member
                    # (IRI objects only, matching the historical semantics) or
                    # its object is a member.
                    if isinstance(obj, IRI):
                        subject_links.setdefault(triple.subject, []).append(link_id)
                    if is_instance_object:
                        object_links.setdefault(obj, []).append(link_id)
                    for src_cls in instance_classes.get(triple.subject, ()):
                        for tgt_cls in instance_classes.get(obj, ()):
                            key = (triple.predicate, src_cls, tgt_cls)
                            connection_counts[key] = connection_counts.get(key, 0) + 1
                    link_id += 1
                subject_sets = {k: frozenset(v) for k, v in subject_links.items()}
                object_sets = {k: frozenset(v) for k, v in object_links.items()}
                empty: FrozenSet[int] = frozenset()
                class_links: Dict[IRI, FrozenSet[int]] = {}
                for cls, members in self._instance_map().items():
                    bucket: Set[int] = set()
                    for member in members:
                        bucket |= subject_sets.get(member, empty)
                        bucket |= object_sets.get(member, empty)
                    class_links[cls] = frozenset(bucket)
                self._link_index = _LinkIndex(
                    connection_counts=connection_counts,
                    subject_links=subject_sets,
                    object_links=object_sets,
                    class_links=class_links,
                )
        return self._link_index

    def instance_connections(self, prop: IRI, source_cls: IRI, target_cls: IRI) -> int:
        """Number of instance-level links ``(x, prop, y)`` with ``x`` an instance
        of ``source_cls`` and ``y`` an instance of ``target_cls``."""
        return self._links().connection_counts.get((prop, source_cls, target_cls), 0)

    def instance_link_count(self, classes: Iterable[IRI]) -> int:
        """Total instance-to-instance property assertions touching instances of
        any class in ``classes`` (used as the relative-cardinality denominator).

        Resolved through the index's pre-unioned per-class link sets --
        identical semantics to walking every member (the per-class sets
        are exactly those unions), at a fraction of the set operations.
        """
        index = self._links()
        class_links = index.class_links
        empty: FrozenSet[int] = frozenset()
        sets = [class_links.get(cls, empty) for cls in classes]
        if not sets:
            return 0
        if len(sets) == 1:
            return len(sets[0])
        return len(sets[0].union(*sets[1:]))
