"""N-Triples parsing and serialisation.

A hand-written, line-oriented parser for the N-Triples subset the substrate
emits: IRIs, blank nodes, plain / typed / language-tagged literals, ``#``
comments and blank lines.  Round-trips with :func:`serialize`:

>>> from repro.kb.namespaces import EX, RDF_TYPE, RDFS_CLASS
>>> doc = serialize([Triple(EX.Person, RDF_TYPE, RDFS_CLASS)])
>>> list(parse(doc))[0].subject
IRI('http://example.org/Person')
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.kb.errors import ParseError
from repro.kb.graph import Graph
from repro.kb.interning import TermDictionary
from repro.kb.terms import BNode, IRI, Literal, Term
from repro.kb.triples import Triple

_ESCAPES = {"n": "\n", "r": "\r", "t": "\t", '"': '"', "\\": "\\"}


def serialize(triples: Iterable[Triple], sort: bool = True) -> str:
    """Serialise ``triples`` as an N-Triples document (canonical order by default)."""
    lines = [t.n3() for t in triples]
    if sort:
        lines.sort()
    return "\n".join(lines) + ("\n" if lines else "")


def parse(document: str) -> Iterator[Triple]:
    """Parse an N-Triples document, yielding triples.

    Raises :class:`~repro.kb.errors.ParseError` with the offending line
    number on malformed input.
    """
    # Split on LF/CRLF only: unicode line separators (NEL, LS, PS) are legal
    # *inside* literals, so str.splitlines() would corrupt them.
    for line_no, raw_line in enumerate(document.split("\n"), start=1):
        line = raw_line.strip(" \t\r")
        if not line or line.startswith("#"):
            continue
        yield _parse_line(line, line_no)


def parse_graph(document: str, dictionary: "TermDictionary | None" = None) -> Graph:
    """Parse an N-Triples document into a fresh :class:`Graph`.

    Pass ``dictionary`` to intern the parsed terms into an existing
    :class:`~repro.kb.interning.TermDictionary` (e.g. a version chain's), so
    the loaded graph participates in the chain's integer fast paths.
    """
    return Graph(parse(document), dictionary=dictionary)


def _parse_line(line: str, line_no: int) -> Triple:
    cursor = _Cursor(line, line_no)
    subject = cursor.read_term()
    if isinstance(subject, Literal):
        raise ParseError("subject must not be a literal", line_no)
    cursor.skip_ws()
    predicate = cursor.read_term()
    if not isinstance(predicate, IRI):
        raise ParseError("predicate must be an IRI", line_no)
    cursor.skip_ws()
    obj = cursor.read_term()
    cursor.skip_ws()
    cursor.expect(".")
    cursor.skip_ws()
    if not cursor.at_end():
        raise ParseError(f"trailing content after '.': {cursor.rest()!r}", line_no)
    return Triple(subject, predicate, obj)


class _Cursor:
    """Character cursor over one N-Triples line."""

    def __init__(self, line: str, line_no: int) -> None:
        self._line = line
        self._pos = 0
        self._line_no = line_no

    def at_end(self) -> bool:
        return self._pos >= len(self._line)

    def rest(self) -> str:
        return self._line[self._pos :]

    def peek(self) -> str:
        if self.at_end():
            raise ParseError("unexpected end of line", self._line_no)
        return self._line[self._pos]

    def advance(self) -> str:
        ch = self.peek()
        self._pos += 1
        return ch

    def skip_ws(self) -> None:
        while not self.at_end() and self._line[self._pos] in " \t":
            self._pos += 1

    def expect(self, ch: str) -> None:
        if self.at_end() or self._line[self._pos] != ch:
            found = "end of line" if self.at_end() else repr(self._line[self._pos])
            raise ParseError(f"expected {ch!r}, found {found}", self._line_no)
        self._pos += 1

    def read_term(self) -> Term:
        ch = self.peek()
        if ch == "<":
            return self._read_iri()
        if ch == "_":
            return self._read_bnode()
        if ch == '"':
            return self._read_literal()
        raise ParseError(f"cannot start a term with {ch!r}", self._line_no)

    def _read_iri(self) -> IRI:
        self.expect("<")
        chars: List[str] = []
        while True:
            ch = self.advance()
            if ch == ">":
                break
            chars.append(ch)
        value = "".join(chars)
        if not value:
            raise ParseError("empty IRI", self._line_no)
        return IRI(value)

    def _read_bnode(self) -> BNode:
        self.expect("_")
        self.expect(":")
        chars: List[str] = []
        while not self.at_end() and (self.peek().isalnum() or self.peek() in "_-"):
            chars.append(self.advance())
        if not chars:
            raise ParseError("empty blank node label", self._line_no)
        return BNode("".join(chars))

    def _read_literal(self) -> Literal:
        self.expect('"')
        chars: List[str] = []
        while True:
            ch = self.advance()
            if ch == "\\":
                esc = self.advance()
                if esc == "u":
                    chars.append(self._read_unicode(4))
                elif esc == "U":
                    chars.append(self._read_unicode(8))
                elif esc in _ESCAPES:
                    chars.append(_ESCAPES[esc])
                else:
                    raise ParseError(f"unknown escape \\{esc}", self._line_no)
            elif ch == '"':
                break
            else:
                chars.append(ch)
        lexical = "".join(chars)
        if not self.at_end() and self.peek() == "@":
            self.advance()
            tag: List[str] = []
            while not self.at_end() and (self.peek().isalnum() or self.peek() == "-"):
                tag.append(self.advance())
            if not tag:
                raise ParseError("empty language tag", self._line_no)
            return Literal(lexical, language="".join(tag))
        if not self.at_end() and self.peek() == "^":
            self.expect("^")
            self.expect("^")
            datatype = self._read_iri()
            return Literal(lexical, datatype=datatype)
        return Literal(lexical)

    def _read_unicode(self, width: int) -> str:
        digits: List[str] = []
        for _ in range(width):
            digits.append(self.advance())
        try:
            return chr(int("".join(digits), 16))
        except ValueError:
            raise ParseError(f"bad unicode escape {''.join(digits)!r}", self._line_no) from None
