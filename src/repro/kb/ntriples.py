"""N-Triples parsing and serialisation (bulk, dictionary-encoded).

The codec is a **bulk single-pass pipeline** built for the cold-start path
(loading `.nt` snapshots, HTTP ``/commit`` bodies): one compiled-regex scan
classifies every line of the document at C speed, term tokens are
deduplicated *as strings*, each distinct token is decoded and unescaped
once, and the whole batch is interned straight into dense integer ids
(:meth:`~repro.kb.interning.TermDictionary.intern_many`).  The result of
:func:`parse_interned` is an ``(n, 3)`` integer ndarray of id-triples that
:meth:`~repro.kb.graph.Graph.from_interned_keys` bulk-loads without
re-validating a single term.  :func:`serialize` has the matching bulk fast
path for graphs: one cached ``n3()`` string per term id, composed per row
-- no intermediate :class:`~repro.kb.triples.Triple` churn.

Lines the bulk grammar does not accept (malformed input, but also a few
legal-but-exotic forms such as non-ASCII language tags) fall back to the
original character-cursor parser, which produces byte-for-byte identical
terms and exact :class:`~repro.kb.errors.ParseError` line numbers.  The
grammar is therefore *sound* (it never mis-parses a line) without having
to be complete.

The supported subset is unchanged: IRIs, blank nodes, plain / typed /
language-tagged literals, ``#`` comments and blank lines.  Round-trips
with :func:`serialize`:

>>> from repro.kb.namespaces import EX, RDF_TYPE, RDFS_CLASS
>>> doc = serialize([Triple(EX.Person, RDF_TYPE, RDFS_CLASS)])
>>> list(parse(doc))[0].subject
IRI('http://example.org/Person')
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Tuple

import numpy as np

from repro.kb.errors import ParseError, TermError
from repro.kb.graph import Graph
from repro.kb.interning import TermDictionary
from repro.kb.terms import BNode, IRI, Literal, Term
from repro.kb.triples import Triple

_ESCAPES = {"n": "\n", "r": "\r", "t": "\t", '"': '"', "\\": "\\"}

# -- the bulk grammar --------------------------------------------------------------
#
# One MULTILINE pattern that matches every *well-formed* line in full --
# blank, comment or triple -- anchored ``^...$`` so a malformed line simply
# yields no match (Python's MULTILINE anchors only recognise ``\n``, so
# unicode line separators inside literals never split a line).  Character
# classes mirror the term model's own validation exactly: the IRI class is
# the complement of the characters :class:`~repro.kb.terms.IRI` rejects,
# and the literal escapes are exactly the ``_ESCAPES`` table plus
# ``\uXXXX`` / ``\UXXXXXXXX``.  All alternations are first-character
# disjoint, so matching is strictly linear (no backtracking blow-ups).

_IRI_PAT = r'<[^\x00-\x20<>"{}|^`\\]+>'
_BNODE_PAT = r"_:[A-Za-z0-9_\-]+"
_LITERAL_PAT = (
    r'"(?:[^"\\\n]|\\[tnr"\\]|\\u[0-9A-Fa-f]{4}|\\U[0-9A-Fa-f]{8})*"'
    r"(?:@[A-Za-z0-9\-]+|\^\^" + _IRI_PAT + r")?"
)
_LINE_RE = re.compile(
    r"^[ \t\r]*(?:#[^\n]*"
    r"|(?P<s>" + _IRI_PAT + r"|" + _BNODE_PAT + r")[ \t]+"
    r"(?P<p>" + _IRI_PAT + r")[ \t]+"
    r"(?P<o>" + _IRI_PAT + r"|" + _BNODE_PAT + r"|" + _LITERAL_PAT + r")"
    r"[ \t]*\."
    r")?[ \t\r]*$",
    re.MULTILINE,
)

_UNESCAPE_RE = re.compile(r"\\(u[0-9A-Fa-f]{4}|U[0-9A-Fa-f]{8}|.)", re.DOTALL)


def _unescape_group(match: "re.Match[str]") -> str:
    group = match.group(1)
    head = group[0]
    if head == "u" or head == "U":
        return chr(int(group[1:], 16))
    return _ESCAPES[group]


def _decode_token(token: str) -> Term:
    """One regex-validated term token -> Term (unescaping literals)."""
    head = token[0]
    if head == "<":
        return IRI(token[1:-1])
    if head == "_":
        return BNode(token[2:])
    # Literal: the closing quote is the *last* quote in the token (language
    # tags and datatype IRIs cannot contain one).
    end = token.rfind('"')
    body = token[1:end]
    if "\\" in body:
        body = _UNESCAPE_RE.sub(_unescape_group, body)
    suffix = token[end + 1 :]
    if not suffix:
        return Literal(body)
    if suffix[0] == "@":
        return Literal(body, language=suffix[1:])
    return Literal(body, datatype=IRI(suffix[3:-1]))


def _scan_document(document: str) -> "List[Tuple[str, str, str]] | None":
    """Single-pass line classification; ``None`` when any line failed.

    Every well-formed line (blank, comment or triple) produces exactly one
    anchored match, so a match count below the line count means at least
    one line the bulk grammar cannot handle -- the caller falls back to the
    exact cursor parser for correct errors (or for the rare legal forms
    outside the bulk grammar).
    """
    matches = 0
    rows: List[Tuple[str, str, str]] = []
    append = rows.append
    for match in _LINE_RE.finditer(document):
        matches += 1
        subject = match["s"]
        if subject is not None:
            append((subject, match["p"], match["o"]))
    if matches != document.count("\n") + 1:
        return None
    return rows


# -- public API --------------------------------------------------------------------


def serialize(triples: Iterable[Triple], sort: bool = True) -> str:
    """Serialise ``triples`` as an N-Triples document (canonical order by default).

    Passing a :class:`~repro.kb.graph.Graph` takes the bulk path: each
    term's ``n3()`` string is rendered once per dictionary id (and cached
    on the dictionary), and rows are composed from those strings without
    materialising per-triple objects.  Output is byte-identical to the
    per-triple path.
    """
    if isinstance(triples, Graph):
        return serialize_interned(triples.triple_keys, triples.dictionary, sort=sort)
    lines = [t.n3() for t in triples]
    if sort:
        lines.sort()
    return "\n".join(lines) + ("\n" if lines else "")


def serialize_interned(
    keys: Iterable[Tuple[int, int, int]], dictionary: TermDictionary, sort: bool = True
) -> str:
    """Bulk serializer over interned id-triples (canonical order by default).

    ``keys`` are ``(s, p, o)`` id-triples interned in ``dictionary``; the
    canonical form sorts the composed lines exactly like :func:`serialize`
    sorts per-triple ``n3()`` lines, so both paths emit identical bytes.
    """
    n3 = dictionary.n3_of
    lines = [f"{n3(s)} {n3(p)} {n3(o)} ." for s, p, o in keys]
    if not lines:
        return ""
    if sort:
        lines.sort()
    return "\n".join(lines) + "\n"


def parse_interned(document: str, dictionary: TermDictionary) -> np.ndarray:
    """Parse a document straight into dense term ids: ``(n, 3)`` int64 array.

    The bulk pipeline: one regex scan over the whole document, string-level
    deduplication of term tokens, one decode + unescape per *distinct*
    token, one :meth:`~repro.kb.interning.TermDictionary.intern_many` batch
    for all fresh terms, and a vectorised token-index -> term-id gather for
    the triple rows.  Rows keep document order (duplicates included).

    Raises :class:`~repro.kb.errors.ParseError` with the offending line
    number on malformed input (via the exact fallback parser).
    """
    rows = _scan_document(document)
    if rows is None:
        # At least one line is outside the bulk grammar: re-parse with the
        # cursor parser, which raises ParseError with the exact line number
        # -- or succeeds, for rare legal forms (e.g. unicode language tags).
        keys = [dictionary.intern_triple(t) for t in _parse_slow(document)]
        return np.asarray(keys, dtype=np.int64).reshape(len(keys), 3)
    if not rows:
        return np.empty((0, 3), dtype=np.int64)
    index_of: Dict[str, int] = {}
    flat: List[int] = []
    append = flat.append
    get = index_of.get
    for s, p, o in rows:
        i = get(s)
        if i is None:
            index_of[s] = i = len(index_of)
        append(i)
        i = get(p)
        if i is None:
            index_of[p] = i = len(index_of)
        append(i)
        i = get(o)
        if i is None:
            index_of[o] = i = len(index_of)
        append(i)
    try:
        terms = [_decode_token(token) for token in index_of]
    except (TermError, KeyError, ValueError):
        # A token the grammar accepted but the term model rejects should be
        # impossible; if it ever happens, the cursor parser owns the error.
        keys = [dictionary.intern_triple(t) for t in _parse_slow(document)]
        return np.asarray(keys, dtype=np.int64).reshape(len(keys), 3)
    ids = np.asarray(dictionary.intern_many(terms), dtype=np.int64)
    return ids[np.asarray(flat, dtype=np.intp)].reshape(len(rows), 3)


def parse(document: str) -> Iterator[Triple]:
    """Parse an N-Triples document, yielding triples in document order.

    Runs the bulk pipeline eagerly (the whole document is scanned on the
    first ``next()``), then yields pooled triples.  Raises
    :class:`~repro.kb.errors.ParseError` with the offending line number on
    malformed input.
    """
    private = TermDictionary()
    keys = parse_interned(document, private)
    materialize = private.materialize
    for row in keys.tolist():
        yield materialize((row[0], row[1], row[2]))


def parse_graph(document: str, dictionary: "TermDictionary | None" = None) -> Graph:
    """Parse an N-Triples document into a fresh :class:`Graph` (bulk path).

    Pass ``dictionary`` to intern the parsed terms into an existing
    :class:`~repro.kb.interning.TermDictionary` (e.g. a version chain's), so
    the loaded graph participates in the chain's integer fast paths.
    """
    if dictionary is None:
        dictionary = TermDictionary()
    keys = parse_interned(document, dictionary)
    return Graph.from_interned_keys(dictionary, keys)


# -- the exact cursor parser -------------------------------------------------------
#
# The original character-level parser, kept as (a) the source of exact
# ParseError line numbers, (b) the completeness fallback for legal forms
# outside the bulk grammar, and (c) the reference implementation the bulk
# codec is differential-tested against.


def _parse_slow(document: str) -> Iterator[Triple]:
    """Reference parser: per-line character cursor (exact error positions)."""
    # Split on LF/CRLF only: unicode line separators (NEL, LS, PS) are legal
    # *inside* literals, so str.splitlines() would corrupt them.
    for line_no, raw_line in enumerate(document.split("\n"), start=1):
        line = raw_line.strip(" \t\r")
        if not line or line.startswith("#"):
            continue
        yield _parse_line(line, line_no)


def _parse_line(line: str, line_no: int) -> Triple:
    cursor = _Cursor(line, line_no)
    subject = cursor.read_term()
    if isinstance(subject, Literal):
        raise ParseError("subject must not be a literal", line_no)
    cursor.skip_ws()
    predicate = cursor.read_term()
    if not isinstance(predicate, IRI):
        raise ParseError("predicate must be an IRI", line_no)
    cursor.skip_ws()
    obj = cursor.read_term()
    cursor.skip_ws()
    cursor.expect(".")
    cursor.skip_ws()
    if not cursor.at_end():
        raise ParseError(f"trailing content after '.': {cursor.rest()!r}", line_no)
    return Triple(subject, predicate, obj)


class _Cursor:
    """Character cursor over one N-Triples line."""

    def __init__(self, line: str, line_no: int) -> None:
        self._line = line
        self._pos = 0
        self._line_no = line_no

    def at_end(self) -> bool:
        return self._pos >= len(self._line)

    def rest(self) -> str:
        return self._line[self._pos :]

    def peek(self) -> str:
        if self.at_end():
            raise ParseError("unexpected end of line", self._line_no)
        return self._line[self._pos]

    def advance(self) -> str:
        ch = self.peek()
        self._pos += 1
        return ch

    def skip_ws(self) -> None:
        while not self.at_end() and self._line[self._pos] in " \t":
            self._pos += 1

    def expect(self, ch: str) -> None:
        if self.at_end() or self._line[self._pos] != ch:
            found = "end of line" if self.at_end() else repr(self._line[self._pos])
            raise ParseError(f"expected {ch!r}, found {found}", self._line_no)
        self._pos += 1

    def read_term(self) -> Term:
        ch = self.peek()
        if ch == "<":
            return self._read_iri()
        if ch == "_":
            return self._read_bnode()
        if ch == '"':
            return self._read_literal()
        raise ParseError(f"cannot start a term with {ch!r}", self._line_no)

    def _read_iri(self) -> IRI:
        self.expect("<")
        chars: List[str] = []
        while True:
            ch = self.advance()
            if ch == ">":
                break
            chars.append(ch)
        value = "".join(chars)
        if not value:
            raise ParseError("empty IRI", self._line_no)
        return IRI(value)

    def _read_bnode(self) -> BNode:
        self.expect("_")
        self.expect(":")
        chars: List[str] = []
        while not self.at_end() and (self.peek().isalnum() or self.peek() in "_-"):
            chars.append(self.advance())
        if not chars:
            raise ParseError("empty blank node label", self._line_no)
        return BNode("".join(chars))

    def _read_literal(self) -> Literal:
        self.expect('"')
        chars: List[str] = []
        while True:
            ch = self.advance()
            if ch == "\\":
                esc = self.advance()
                if esc == "u":
                    chars.append(self._read_unicode(4))
                elif esc == "U":
                    chars.append(self._read_unicode(8))
                elif esc in _ESCAPES:
                    chars.append(_ESCAPES[esc])
                else:
                    raise ParseError(f"unknown escape \\{esc}", self._line_no)
            elif ch == '"':
                break
            else:
                chars.append(ch)
        lexical = "".join(chars)
        if not self.at_end() and self.peek() == "@":
            self.advance()
            tag: List[str] = []
            while not self.at_end() and (self.peek().isalnum() or self.peek() == "-"):
                tag.append(self.advance())
            if not tag:
                raise ParseError("empty language tag", self._line_no)
            return Literal(lexical, language="".join(tag))
        if not self.at_end() and self.peek() == "^":
            self.expect("^")
            self.expect("^")
            datatype = self._read_iri()
            return Literal(lexical, datatype=datatype)
        return Literal(lexical)

    def _read_unicode(self, width: int) -> str:
        digits: List[str] = []
        for _ in range(width):
            digits.append(self.advance())
        try:
            return chr(int("".join(digits), 16))
        except ValueError:
            raise ParseError(f"bad unicode escape {''.join(digits)!r}", self._line_no) from None
