"""An in-memory indexed triple store over interned integer ids.

:class:`Graph` dictionary-encodes every term through a shared
:class:`~repro.kb.interning.TermDictionary` and keeps its three hash indexes
(SPO, POS, OSP) plus a flat triple set entirely in dense integer ids.  Public
queries still speak :class:`~repro.kb.triples.Triple`: matches are
materialised lazily at the API boundary from the dictionary's triple pool, so
yielding a match is a dict lookup, not a dataclass construction.

The columnar layout buys three fast paths that the measure/delta/recommender
layers lean on:

* **set algebra** -- :meth:`difference`, :meth:`__eq__` and bulk
  :meth:`add_all` between graphs sharing a dictionary are C-speed integer-set
  operations (this is what makes low-level delta computation cheap);
* **copy** -- :meth:`copy` duplicates the id indexes without re-hashing a
  single term, which the version chain exploits;
* **counting** -- every pattern shape of :meth:`count`, including
  ``(subject, None, object)``, resolves through an index without
  materialising triples.

Pattern matching follows the usual convention: ``None`` is a wildcard.

>>> from repro.kb.namespaces import EX, RDF_TYPE, RDFS_CLASS
>>> g = Graph()
>>> _ = g.add(Triple(EX.Person, RDF_TYPE, RDFS_CLASS))
>>> sum(1 for _ in g.match(None, RDF_TYPE, None))
1
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Set, Tuple

import numpy as np

from repro.kb.interning import TermDictionary, TripleKey
from repro.kb.terms import IRI, Term
from repro.kb.triples import Triple

_IntIndex = Dict[int, Dict[int, Set[int]]]


class Graph:
    """A set of triples with interned SPO/POS/OSP indexes.

    The container API (``len``, ``in``, iteration) treats the graph as a set
    of :class:`~repro.kb.triples.Triple`.  Iteration order is unspecified;
    use :meth:`sorted_triples` for canonical order.

    ``dictionary`` is the term-interning dictionary to encode against; by
    default each root graph gets its own, and every graph derived from it
    (:meth:`copy`, :meth:`union`, the version chain) shares it, keeping term
    ids stable across the whole family.
    """

    def __init__(
        self,
        triples: Iterable[Triple] = (),
        dictionary: TermDictionary | None = None,
    ) -> None:
        self._dict = dictionary if dictionary is not None else TermDictionary()
        self._triples: Set[TripleKey] = set()
        self._spo: _IntIndex = {}
        self._pos: _IntIndex = {}
        self._osp: _IntIndex = {}
        # Pattern scans memoised as lists until the next mutation (see
        # match()).
        self._scan_cache: Dict[Tuple[int | None, int | None, int | None], list] = {}
        # Bumped on every effective mutation; snapshot consumers (e.g.
        # SchemaView) compare revisions to detect that their caches went
        # stale because the graph changed underneath them.
        self._revision = 0
        if triples:
            self.add_all(triples)

    @property
    def revision(self) -> int:
        """Monotonic mutation counter (changes iff the triple set changed)."""
        return self._revision

    @property
    def dictionary(self) -> TermDictionary:
        """The term-interning dictionary this graph encodes against."""
        return self._dict

    @property
    def triple_keys(self) -> Set[TripleKey]:
        """The live set of interned ``(s, p, o)`` id-triples.

        Read-only by convention: the bulk serializer and the wire/store
        layers iterate it directly instead of materialising triples.
        """
        return self._triples

    # -- mutation ---------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Add ``triple``; return True if it was not already present."""
        if not isinstance(triple, Triple):
            raise TypeError(f"expected Triple, got {type(triple).__name__}")
        key = self._dict.intern_triple(triple)
        if key in self._triples:
            return False
        self._add_key(key)
        return True

    def _add_key(self, key: TripleKey) -> None:
        """Index an id-triple known to be absent."""
        if self._scan_cache:
            self._scan_cache.clear()
        self._revision += 1
        self._triples.add(key)
        s, p, o = key
        self._spo.setdefault(s, {}).setdefault(p, set()).add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add every triple in ``triples``; return how many were new.

        When ``triples`` is a :class:`Graph` on the same dictionary, the new
        keys are found with one integer-set difference and indexed directly,
        skipping per-triple interning entirely.
        """
        if isinstance(triples, Graph) and triples._dict is self._dict:
            fresh = triples._triples - self._triples
            for key in fresh:
                self._add_key(key)
            return len(fresh)
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Triple) -> bool:
        """Remove ``triple``; return True if it was present."""
        key = self._dict.key_of(triple)
        if key is None or key not in self._triples:
            return False
        if self._scan_cache:
            self._scan_cache.clear()
        self._revision += 1
        self._triples.discard(key)
        s, p, o = key
        self._drop(self._spo, s, p, o)
        self._drop(self._pos, p, o, s)
        self._drop(self._osp, o, s, p)
        return True

    def remove_all(self, triples: Iterable[Triple]) -> int:
        """Remove every triple in ``triples``; return how many were present."""
        return sum(1 for t in triples if self.remove(t))

    @staticmethod
    def _drop(index: _IntIndex, a: int, b: int, c: int) -> None:
        leaf = index[a][b]
        leaf.discard(c)
        if not leaf:
            del index[a][b]
            if not index[a]:
                del index[a]

    # -- queries ----------------------------------------------------------

    def match(
        self,
        subject: Term | None = None,
        predicate: IRI | None = None,
        object: Term | None = None,
    ) -> Iterator[Triple]:
        """Yield every triple matching the pattern (``None`` = wildcard).

        Each pattern shape uses the index that binds the most terms, so no
        shape degrades to a full scan unless all three positions are
        wildcards.  Yielded triples come from the dictionary's pool -- the
        same :class:`Triple` object every time a given triple matches.

        Scans are memoised per id-pattern until the graph next mutates, so
        repeated scans (schema construction, measure sweeps) iterate a
        materialised list instead of re-walking the indexes.  Consequently a
        match always iterates a *snapshot*: mutating the graph while
        consuming the iterator is safe and does not affect the triples
        already being yielded (only later scans see the mutation).
        """
        id_of = self._dict.id_of
        s = p = o = None
        if subject is not None:
            s = id_of(subject)
            if s is None:
                return
        if predicate is not None:
            p = id_of(predicate)
            if p is None:
                return
        if object is not None:
            o = id_of(object)
            if o is None:
                return
        pattern = (s, p, o)
        cached = self._scan_cache.get(pattern)
        if cached is None:
            cached = list(self._scan(s, p, o))
            # The size cap bounds memory on query-diverse workloads.
            if len(self._scan_cache) < 512:
                self._scan_cache[pattern] = cached
        yield from cached

    def _scan(self, s: int | None, p: int | None, o: int | None) -> Iterator[Triple]:
        """Walk the best index for an id-pattern, yielding pooled triples."""
        cache = self._dict.triple_cache
        if s is not None:
            by_pred = self._spo.get(s, {})
            if p is not None:
                objects = by_pred.get(p, ())
                if o is not None:
                    if o in objects:
                        yield cache[(s, p, o)]
                else:
                    for obj in objects:
                        yield cache[(s, p, obj)]
            elif o is not None:
                for pred in self._osp.get(o, {}).get(s, ()):
                    yield cache[(s, pred, o)]
            else:
                for pred, objects in by_pred.items():
                    for obj in objects:
                        yield cache[(s, pred, obj)]
        elif p is not None:
            by_obj = self._pos.get(p, {})
            if o is not None:
                for subj in by_obj.get(o, ()):
                    yield cache[(subj, p, o)]
            else:
                for obj, subjects in by_obj.items():
                    for subj in subjects:
                        yield cache[(subj, p, obj)]
        elif o is not None:
            for subj, preds in self._osp.get(o, {}).items():
                for pred in preds:
                    yield cache[(subj, pred, o)]
        else:
            for key in self._triples:
                yield cache[key]

    def count(
        self,
        subject: Term | None = None,
        predicate: IRI | None = None,
        object: Term | None = None,
    ) -> int:
        """Number of triples matching the pattern, without materialising them.

        Every shape with at least two bound terms (and the single-bound
        shapes below) is a pure index lookup; only single-wildcard scans over
        one bound term fall through to iteration, and even those never
        materialise a :class:`Triple`.
        """
        id_of = self._dict.id_of
        s = p = o = None
        if subject is not None:
            s = id_of(subject)
            if s is None:
                return 0
        if predicate is not None:
            p = id_of(predicate)
            if p is None:
                return 0
        if object is not None:
            o = id_of(object)
            if o is None:
                return 0
        if s is not None:
            if p is not None:
                leaf = self._spo.get(s, {}).get(p, ())
                if o is not None:
                    return 1 if o in leaf else 0
                return len(leaf)
            if o is not None:
                return len(self._osp.get(o, {}).get(s, ()))
            return sum(len(objs) for objs in self._spo.get(s, {}).values())
        if p is not None:
            if o is not None:
                return len(self._pos.get(p, {}).get(o, ()))
            return sum(len(subjs) for subjs in self._pos.get(p, {}).values())
        if o is not None:
            return sum(len(preds) for preds in self._osp.get(o, {}).values())
        return len(self._triples)

    def subjects(self, predicate: IRI | None = None, object: Term | None = None) -> Iterator[Term]:
        """Distinct subjects of triples matching ``(?, predicate, object)``."""
        if predicate is not None and object is not None:
            p = self._dict.id_of(predicate)
            o = self._dict.id_of(object)
            if p is None or o is None:
                return
            term = self._dict.term
            for s in self._pos.get(p, {}).get(o, ()):
                yield term(s)
        else:
            seen: Set[Term] = set()
            for triple in self.match(None, predicate, object):
                if triple.subject not in seen:
                    seen.add(triple.subject)
                    yield triple.subject

    def objects(self, subject: Term | None = None, predicate: IRI | None = None) -> Iterator[Term]:
        """Distinct objects of triples matching ``(subject, predicate, ?)``."""
        if subject is not None and predicate is not None:
            s = self._dict.id_of(subject)
            p = self._dict.id_of(predicate)
            if s is None or p is None:
                return
            term = self._dict.term
            for o in self._spo.get(s, {}).get(p, ()):
                yield term(o)
        else:
            seen: Set[Term] = set()
            for triple in self.match(subject, predicate, None):
                if triple.object not in seen:
                    seen.add(triple.object)
                    yield triple.object

    def predicates(self, subject: Term | None = None, object: Term | None = None) -> Iterator[IRI]:
        """Distinct predicates of triples matching ``(subject, ?, object)``."""
        if subject is not None and object is not None:
            s = self._dict.id_of(subject)
            o = self._dict.id_of(object)
            if s is None or o is None:
                return
            term = self._dict.term
            for p in self._osp.get(o, {}).get(s, ()):
                yield term(p)  # type: ignore[misc]
        else:
            seen: Set[Term] = set()
            for triple in self.match(subject, None, object):
                if triple.predicate not in seen:
                    seen.add(triple.predicate)
                    yield triple.predicate

    def value(self, subject: Term, predicate: IRI) -> Term | None:
        """The single object of ``(subject, predicate, ?)`` or None.

        Convenience for functional properties; if several objects exist an
        arbitrary one is returned.
        """
        for obj in self.objects(subject, predicate):
            return obj
        return None

    def triples_mentioning(self, term: Term) -> Iterator[Triple]:
        """Every triple with ``term`` in any position (deduplicated)."""
        seen: Set[Triple] = set()
        for pattern in ((term, None, None), (None, term, None), (None, None, term)):
            subj, pred, obj = pattern
            if pred is not None and not isinstance(pred, IRI):
                continue
            for triple in self.match(subj, pred, obj):  # type: ignore[arg-type]
                if triple not in seen:
                    seen.add(triple)
                    yield triple

    # -- set semantics ------------------------------------------------------

    @classmethod
    def from_interned_keys(
        cls, dictionary: TermDictionary, keys: "Iterable[TripleKey] | np.ndarray"
    ) -> "Graph":
        """Build a graph directly from id-triples already interned in ``dictionary``.

        The bulk-load fast path of the binary wire format
        (:mod:`repro.kb.wire`) and the bulk N-Triples codec
        (:func:`repro.kb.ntriples.parse_interned`, which hands over an
        ``(n, 3)`` integer ndarray): every key's three ids must already
        exist in ``dictionary`` (ids out of range raise ``IndexError``).
        Skips per-triple validation and interning entirely -- the terms
        were validated when they first entered the dictionary on the
        encoding side.
        """
        if isinstance(keys, np.ndarray):
            # tolist() materialises plain Python ints: numpy scalars must
            # never leak into the integer indexes (they hash equal but cost
            # more and pickle bigger).
            keys = map(tuple, keys.tolist())
        graph = cls(dictionary=dictionary)
        materialize = dictionary.materialize
        # Inlined _add_key: one tight loop over the three indexes, no
        # per-key method dispatch / scan-cache check (the graph is fresh).
        triples = graph._triples
        spo, pos, osp = graph._spo, graph._pos, graph._osp
        added = 0
        for key in keys:
            # Materialise into the shared pool so match()/iteration can yield
            # this triple with a plain dict index later.
            materialize(key)
            if key in triples:
                continue
            added += 1
            triples.add(key)
            s, p, o = key
            spo.setdefault(s, {}).setdefault(p, set()).add(o)
            pos.setdefault(p, {}).setdefault(o, set()).add(s)
            osp.setdefault(o, {}).setdefault(s, set()).add(p)
        graph._revision = added
        return graph

    def copy(self) -> "Graph":
        """An independent copy of this graph (sharing the term dictionary).

        Only the id indexes are duplicated; no term is re-hashed and no
        triple re-validated, so copying is proportional to the index size
        alone.
        """
        clone = Graph(dictionary=self._dict)
        clone._triples = set(self._triples)
        clone._spo = {s: {p: set(o) for p, o in by_p.items()} for s, by_p in self._spo.items()}
        clone._pos = {p: {o: set(s) for o, s in by_o.items()} for p, by_o in self._pos.items()}
        clone._osp = {o: {s: set(p) for s, p in by_s.items()} for o, by_s in self._osp.items()}
        return clone

    def union(self, other: "Graph") -> "Graph":
        """A new graph holding the triples of both graphs."""
        result = self.copy()
        result.add_all(other)
        return result

    def difference(self, other: "Graph") -> Set[Triple]:
        """The set of triples in ``self`` but not in ``other``.

        Graphs on one shared dictionary diff by a single integer-set
        difference; unrelated graphs fall back to per-triple membership.
        """
        if isinstance(other, Graph) and other._dict is self._dict:
            cache = self._dict.triple_cache
            return {cache[key] for key in self._triples - other._triples}
        return {t for t in self if t not in other}

    def sorted_triples(self) -> list[Triple]:
        """All triples in canonical (term-order) sort."""
        return sorted(self, key=lambda t: t._sort_key())

    # -- container protocol -------------------------------------------------

    def __contains__(self, triple: object) -> bool:
        if not isinstance(triple, Triple):
            return False
        key = self._dict.key_of(triple)
        return key is not None and key in self._triples

    def __iter__(self) -> Iterator[Triple]:
        cache = self._dict.triple_cache
        for key in self._triples:
            yield cache[key]

    def __len__(self) -> int:
        return len(self._triples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if other._dict is self._dict:
            return self._triples == other._triples
        return len(self._triples) == len(other._triples) and all(t in other for t in self)

    def __repr__(self) -> str:
        return f"Graph(<{len(self._triples)} triples>)"
