"""An in-memory indexed triple store.

:class:`Graph` keeps three hash indexes (SPO, POS, OSP) so that every
triple-pattern shape resolves through at most two dictionary lookups before
iteration.  The store is the substrate everything else in the library is
built on: schema views, deltas, evolution measures and the synthetic
generators all consume this interface.

Pattern matching follows the usual convention: ``None`` is a wildcard.

>>> from repro.kb.namespaces import EX, RDF_TYPE, RDFS_CLASS
>>> g = Graph()
>>> _ = g.add(Triple(EX.Person, RDF_TYPE, RDFS_CLASS))
>>> sum(1 for _ in g.match(None, RDF_TYPE, None))
1
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Set

from repro.kb.terms import IRI, Term
from repro.kb.triples import Triple

_Index = Dict[Term, Dict[Term, Set[Term]]]


class Graph:
    """A set of triples with SPO/POS/OSP indexes.

    The container API (``len``, ``in``, iteration) treats the graph as a set
    of :class:`~repro.kb.triples.Triple`.  Iteration order is unspecified;
    use :meth:`sorted_triples` for canonical order.
    """

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._spo: _Index = {}
        self._pos: _Index = {}
        self._osp: _Index = {}
        self._size = 0
        for triple in triples:
            self.add(triple)

    # -- mutation ---------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Add ``triple``; return True if it was not already present."""
        if not isinstance(triple, Triple):
            raise TypeError(f"expected Triple, got {type(triple).__name__}")
        s, p, o = triple.subject, triple.predicate, triple.object
        objects = self._spo.setdefault(s, {}).setdefault(p, set())
        if o in objects:
            return False
        objects.add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self._size += 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add every triple in ``triples``; return how many were new."""
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Triple) -> bool:
        """Remove ``triple``; return True if it was present."""
        s, p, o = triple.subject, triple.predicate, triple.object
        by_pred = self._spo.get(s)
        if by_pred is None or p not in by_pred or o not in by_pred[p]:
            return False
        self._drop(self._spo, s, p, o)
        self._drop(self._pos, p, o, s)
        self._drop(self._osp, o, s, p)
        self._size -= 1
        return True

    def remove_all(self, triples: Iterable[Triple]) -> int:
        """Remove every triple in ``triples``; return how many were present."""
        return sum(1 for t in triples if self.remove(t))

    @staticmethod
    def _drop(index: _Index, a: Term, b: Term, c: Term) -> None:
        leaf = index[a][b]
        leaf.discard(c)
        if not leaf:
            del index[a][b]
            if not index[a]:
                del index[a]

    # -- queries ----------------------------------------------------------

    def match(
        self,
        subject: Term | None = None,
        predicate: IRI | None = None,
        object: Term | None = None,
    ) -> Iterator[Triple]:
        """Yield every triple matching the pattern (``None`` = wildcard).

        Each pattern shape uses the index that binds the most terms, so no
        shape degrades to a full scan unless all three positions are
        wildcards.
        """
        s, p, o = subject, predicate, object
        if s is not None:
            by_pred = self._spo.get(s, {})
            if p is not None:
                objects = by_pred.get(p, ())
                if o is not None:
                    if o in objects:
                        yield Triple(s, p, o)
                else:
                    for obj in objects:
                        yield Triple(s, p, obj)
            elif o is not None:
                for pred in self._osp.get(o, {}).get(s, ()):
                    yield Triple(s, pred, o)
            else:
                for pred, objects in by_pred.items():
                    for obj in objects:
                        yield Triple(s, pred, obj)
        elif p is not None:
            by_obj = self._pos.get(p, {})
            if o is not None:
                for subj in by_obj.get(o, ()):
                    yield Triple(subj, p, o)
            else:
                for obj, subjects in by_obj.items():
                    for subj in subjects:
                        yield Triple(subj, p, obj)
        elif o is not None:
            for subj, preds in self._osp.get(o, {}).items():
                for pred in preds:
                    yield Triple(subj, pred, o)
        else:
            yield from iter(self)

    def count(
        self,
        subject: Term | None = None,
        predicate: IRI | None = None,
        object: Term | None = None,
    ) -> int:
        """Number of triples matching the pattern, without materialising them."""
        if subject is None and predicate is None and object is None:
            return self._size
        if subject is not None and predicate is not None and object is None:
            return len(self._spo.get(subject, {}).get(predicate, ()))
        if predicate is not None and object is not None and subject is None:
            return len(self._pos.get(predicate, {}).get(object, ()))
        return sum(1 for _ in self.match(subject, predicate, object))

    def subjects(self, predicate: IRI | None = None, object: Term | None = None) -> Iterator[Term]:
        """Distinct subjects of triples matching ``(?, predicate, object)``."""
        if predicate is not None and object is not None:
            yield from self._pos.get(predicate, {}).get(object, ())
        else:
            seen: Set[Term] = set()
            for triple in self.match(None, predicate, object):
                if triple.subject not in seen:
                    seen.add(triple.subject)
                    yield triple.subject

    def objects(self, subject: Term | None = None, predicate: IRI | None = None) -> Iterator[Term]:
        """Distinct objects of triples matching ``(subject, predicate, ?)``."""
        if subject is not None and predicate is not None:
            yield from self._spo.get(subject, {}).get(predicate, ())
        else:
            seen: Set[Term] = set()
            for triple in self.match(subject, predicate, None):
                if triple.object not in seen:
                    seen.add(triple.object)
                    yield triple.object

    def predicates(self, subject: Term | None = None, object: Term | None = None) -> Iterator[IRI]:
        """Distinct predicates of triples matching ``(subject, ?, object)``."""
        if subject is not None and object is not None:
            yield from self._osp.get(object, {}).get(subject, ())  # type: ignore[misc]
        else:
            seen: Set[Term] = set()
            for triple in self.match(subject, None, object):
                if triple.predicate not in seen:
                    seen.add(triple.predicate)
                    yield triple.predicate

    def value(self, subject: Term, predicate: IRI) -> Term | None:
        """The single object of ``(subject, predicate, ?)`` or None.

        Convenience for functional properties; if several objects exist an
        arbitrary one is returned.
        """
        for obj in self.objects(subject, predicate):
            return obj
        return None

    def triples_mentioning(self, term: Term) -> Iterator[Triple]:
        """Every triple with ``term`` in any position (deduplicated)."""
        seen: Set[Triple] = set()
        for pattern in ((term, None, None), (None, term, None), (None, None, term)):
            subj, pred, obj = pattern
            if pred is not None and not isinstance(pred, IRI):
                continue
            for triple in self.match(subj, pred, obj):  # type: ignore[arg-type]
                if triple not in seen:
                    seen.add(triple)
                    yield triple

    # -- set semantics ------------------------------------------------------

    def copy(self) -> "Graph":
        """An independent copy of this graph."""
        return Graph(iter(self))

    def union(self, other: "Graph") -> "Graph":
        """A new graph holding the triples of both graphs."""
        result = self.copy()
        result.add_all(iter(other))
        return result

    def difference(self, other: "Graph") -> Set[Triple]:
        """The set of triples in ``self`` but not in ``other``."""
        return {t for t in self if t not in other}

    def sorted_triples(self) -> list[Triple]:
        """All triples in canonical (term-order) sort."""
        return sorted(self, key=lambda t: t._sort_key())

    # -- container protocol -------------------------------------------------

    def __contains__(self, triple: object) -> bool:
        if not isinstance(triple, Triple):
            return False
        return triple.object in self._spo.get(triple.subject, {}).get(triple.predicate, ())

    def __iter__(self) -> Iterator[Triple]:
        for s, by_pred in self._spo.items():
            for p, objects in by_pred.items():
                for o in objects:
                    yield Triple(s, p, o)

    def __len__(self) -> int:
        return self._size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._size == other._size and all(t in other for t in self)

    def __repr__(self) -> str:
        return f"Graph(<{self._size} triples>)"
