"""Term interning: the dictionary-encoding layer under :class:`~repro.kb.graph.Graph`.

Columnar triple stores dictionary-encode their terms: every distinct IRI,
blank node or literal is assigned a dense integer id once, and all indexes,
set operations and joins run over machine integers instead of composite
Python objects.  :class:`TermDictionary` is that layer for this library.

Two further caches ride on the dictionary:

* a **triple cache** mapping each interned ``(s, p, o)`` id-triple to its
  materialised :class:`~repro.kb.triples.Triple` object, so pattern matching
  yields pooled triples with a dictionary lookup instead of constructing
  (and re-validating) a fresh dataclass per match;
* the id maps themselves, which make graph-to-graph set algebra
  (:meth:`Graph.difference`, delta computation, equality) pure C-speed
  integer-set operations whenever both graphs share one dictionary.

Sharing is the point: :meth:`Graph.copy` and the version chain of
:class:`~repro.kb.version.VersionedKnowledgeBase` propagate one dictionary
across all derived graphs, so ids are stable across versions -- the id of a
term in ``v1`` is its id in ``v47``.  Dictionaries only ever grow (interning
is append-only); memory is bounded by the distinct terms and triples ever
seen by the chain, which the synthetic workloads keep well in hand.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.kb.terms import Term
from repro.kb.triples import Triple

#: An interned triple: three dense term ids ``(subject, predicate, object)``.
TripleKey = Tuple[int, int, int]


class TermDictionary:
    """Append-only bijection between RDF terms and dense integer ids.

    >>> from repro.kb.namespaces import EX
    >>> d = TermDictionary()
    >>> d.intern(EX.Person)
    0
    >>> d.intern(EX.Person)  # stable: interning is idempotent
    0
    >>> d.term(0)
    IRI('http://example.org/Person')
    """

    __slots__ = ("_ids", "_terms", "_triples", "_n3")

    def __init__(self) -> None:
        self._ids: Dict[Term, int] = {}
        self._terms: List[Term] = []
        self._triples: Dict[TripleKey, Triple] = {}
        # id -> n3() string, grown lazily; the bulk serializer's per-term
        # render-once cache (see repro.kb.ntriples.serialize_interned).
        self._n3: List[Optional[str]] = []

    # -- term interning -----------------------------------------------------

    def intern(self, term: Term) -> int:
        """The id of ``term``, assigning the next dense id on first sight."""
        ids = self._ids
        tid = ids.get(term)
        if tid is None:
            tid = len(self._terms)
            ids[term] = tid
            self._terms.append(term)
        return tid

    def intern_many(self, terms: Iterable[Term]) -> List[int]:
        """Intern a whole batch of terms; returns their ids in input order.

        The bulk-codec primitive (:func:`repro.kb.ntriples.parse_interned`
        deduplicates tokens first, so every element here is typically a
        *distinct* term): one tight loop over the id map, no per-call
        method dispatch.
        """
        ids = self._ids
        table = self._terms
        out: List[int] = []
        append = out.append
        get = ids.get
        for term in terms:
            tid = get(term)
            if tid is None:
                tid = len(table)
                ids[term] = tid
                table.append(term)
            append(tid)
        return out

    def n3_of(self, tid: int) -> str:
        """The cached N-Triples rendering of term ``tid`` (rendered once).

        Interning is append-only, so a rendered string can never go stale;
        the cache list grows lazily to the dictionary's current size.
        """
        cache = self._n3
        if tid >= len(cache):
            cache.extend([None] * (len(self._terms) - len(cache)))
        value = cache[tid]
        if value is None:
            value = cache[tid] = self._terms[tid].n3()
        return value

    def id_of(self, term: Term) -> Optional[int]:
        """The id of ``term``, or None if it was never interned."""
        return self._ids.get(term)

    def term(self, tid: int) -> Term:
        """The term with id ``tid`` (raises ``IndexError`` for unknown ids)."""
        return self._terms[tid]

    # -- triple interning ----------------------------------------------------

    def intern_triple(self, triple: Triple) -> TripleKey:
        """Intern all three terms of ``triple``; returns its id-triple.

        The triple object itself is pooled so later materialisations of the
        same key return it without constructing a new :class:`Triple`.
        """
        key = (
            self.intern(triple.subject),
            self.intern(triple.predicate),
            self.intern(triple.object),
        )
        if key not in self._triples:
            self._triples[key] = triple
        return key

    def key_of(self, triple: Triple) -> Optional[TripleKey]:
        """The id-triple of ``triple`` without interning; None if any term is unknown."""
        ids = self._ids
        s = ids.get(triple.subject)
        if s is None:
            return None
        p = ids.get(triple.predicate)
        if p is None:
            return None
        o = ids.get(triple.object)
        if o is None:
            return None
        return (s, p, o)

    def materialize(self, key: TripleKey) -> Triple:
        """The pooled :class:`Triple` for ``key``, constructing it at most once.

        Construction uses the unchecked fast path -- terms coming out of the
        dictionary were validated when their triple was first interned.
        """
        triple = self._triples.get(key)
        if triple is None:
            terms = self._terms
            triple = Triple._interned(terms[key[0]], terms[key[1]], terms[key[2]])
            self._triples[key] = triple
        return triple

    @property
    def triple_cache(self) -> Dict[TripleKey, Triple]:
        """The live key -> Triple pool (read-only by convention).

        Exposed so :class:`~repro.kb.graph.Graph` hot loops can yield pooled
        triples with a plain dict index; every key held by a graph on this
        dictionary is guaranteed present (graphs only add keys through
        :meth:`intern_triple`).
        """
        return self._triples

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: object) -> bool:
        return term in self._ids

    def __repr__(self) -> str:
        return f"TermDictionary(<{len(self._terms)} terms, {len(self._triples)} triples>)"
