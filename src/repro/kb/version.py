"""Versioned knowledge bases.

The paper studies the evolution of a knowledge base "from a version V1 to a
version V2" (Section II.a).  :class:`VersionedKnowledgeBase` models a linear
chain of named versions.  Each version stores a full snapshot
:class:`~repro.kb.graph.Graph` plus a lazily constructed
:class:`~repro.kb.schema.SchemaView`; the delta layer
(:mod:`repro.deltas`) computes changes between any two versions of the chain.

Snapshots (rather than delta-chains) keep the substrate simple and make every
version directly queryable, which the measures need; memory is bounded by the
synthetic workloads this library targets (10^4..10^6 triples).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.kb.errors import VersionError
from repro.kb.graph import Graph
from repro.kb.schema import SchemaView
from repro.kb.triples import Triple


@dataclass
class Version:
    """One version of a knowledge base: an id, a snapshot and metadata."""

    version_id: str
    graph: Graph
    metadata: Dict[str, str] = field(default_factory=dict)
    _schema: SchemaView | None = field(default=None, repr=False, compare=False)

    @property
    def schema(self) -> SchemaView:
        """Schema view of this version's snapshot (cached)."""
        if self._schema is None:
            self._schema = SchemaView(self.graph)
        return self._schema

    def __len__(self) -> int:
        return len(self.graph)


class VersionedKnowledgeBase:
    """A linear chain of knowledge-base versions.

    >>> kb = VersionedKnowledgeBase("demo")
    >>> v1 = kb.commit(Graph(), version_id="v1")
    >>> kb.latest().version_id
    'v1'
    """

    def __init__(self, name: str = "kb") -> None:
        if not name:
            raise ValueError("knowledge base name must be non-empty")
        self.name = name
        self._versions: List[Version] = []
        self._by_id: Dict[str, Version] = {}

    # -- committing -----------------------------------------------------------

    def commit(
        self,
        graph: Graph,
        version_id: str | None = None,
        metadata: Dict[str, str] | None = None,
        copy: bool = True,
    ) -> Version:
        """Append ``graph`` as the next version and return it.

        ``graph`` is copied by default so later caller-side mutation cannot
        corrupt the chain; pass ``copy=False`` to adopt the graph when the
        caller hands over ownership (the synthetic generators do this).
        """
        if version_id is None:
            version_id = f"v{len(self._versions) + 1}"
        if version_id in self._by_id:
            raise VersionError(f"duplicate version id: {version_id!r}")
        snapshot = graph.copy() if copy else graph
        version = Version(version_id, snapshot, dict(metadata or {}))
        self._versions.append(version)
        self._by_id[version_id] = version
        return version

    def commit_changes(
        self,
        added: Iterable[Triple] = (),
        deleted: Iterable[Triple] = (),
        version_id: str | None = None,
        metadata: Dict[str, str] | None = None,
    ) -> Version:
        """Derive the next version from the latest one by applying changes."""
        base = self.latest().graph.copy() if self._versions else Graph()
        base.remove_all(deleted)
        base.add_all(added)
        return self.commit(base, version_id=version_id, metadata=metadata, copy=False)

    # -- access ---------------------------------------------------------------

    def version(self, version_id: str) -> Version:
        """The version named ``version_id`` (raises :class:`VersionError`)."""
        try:
            return self._by_id[version_id]
        except KeyError:
            raise VersionError(
                f"unknown version {version_id!r} (have: {', '.join(self.version_ids()) or 'none'})"
            ) from None

    def latest(self) -> Version:
        """The most recent version (raises on an empty chain)."""
        if not self._versions:
            raise VersionError("knowledge base has no versions yet")
        return self._versions[-1]

    def first(self) -> Version:
        """The oldest version (raises on an empty chain)."""
        if not self._versions:
            raise VersionError("knowledge base has no versions yet")
        return self._versions[0]

    def version_ids(self) -> List[str]:
        """Version ids in chain order."""
        return [v.version_id for v in self._versions]

    def pairs(self) -> Iterator[Tuple[Version, Version]]:
        """Consecutive ``(V_i, V_{i+1})`` version pairs in chain order."""
        for older, newer in zip(self._versions, self._versions[1:]):
            yield older, newer

    def __len__(self) -> int:
        return len(self._versions)

    def __iter__(self) -> Iterator[Version]:
        return iter(self._versions)

    def __contains__(self, version_id: object) -> bool:
        return version_id in self._by_id

    def __repr__(self) -> str:
        return f"VersionedKnowledgeBase({self.name!r}, versions={self.version_ids()})"
