"""Versioned knowledge bases: a delta-chained linear version history.

The paper studies the evolution of a knowledge base "from a version V1 to a
version V2" (Section II.a).  :class:`VersionedKnowledgeBase` models a linear
chain of named versions sharing one term-interning dictionary
(:class:`~repro.kb.interning.TermDictionary`), so term ids are stable across
the whole chain and version-to-version set algebra runs over integers.

Storage is **delta-chained with a materialised-graph cache**: every non-root
:class:`Version` records the low-level changes (added / deleted triples)
against its parent, computed at commit time with the graph layer's
integer-set fast path.  Each version also keeps its full snapshot
:class:`~repro.kb.graph.Graph` so it stays directly queryable -- but that
snapshot is a *cache*: :meth:`VersionedKnowledgeBase.compact` drops the
cached graphs of middle versions, and a compacted version transparently
rematerialises by replaying the delta chain from its nearest cached
ancestor.  The delta layer (:mod:`repro.deltas`) reads
:meth:`Version.delta_from_parent` for free adjacent-pair deltas instead of
re-diffing snapshots.
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Iterator, List, Tuple

from repro.kb.errors import VersionError
from repro.kb.graph import Graph
from repro.kb.schema import SchemaView
from repro.kb.triples import Triple

if TYPE_CHECKING:  # deltas sits above kb; imported lazily at runtime.
    from repro.deltas.lowlevel import LowLevelDelta

_Changes = Tuple[FrozenSet[Triple], FrozenSet[Triple]]

#: When True (the default), a version's schema view is hinted with its
#: parent's view plus the recorded commit delta, letting derived artefacts
#: (betweenness, semantic centralities, relative cardinalities) update
#: incrementally instead of recomputing cold per version.  Settable for
#: A/B benchmarking, or via the ``REPRO_DISABLE_INCREMENTAL`` environment
#: variable (conventional falsy spellings -- unset, "", "0", "false", "no"
#: -- keep seeding on); results are identical either way (the differential
#: evolution test harness asserts bit-for-bit equality).
INCREMENTAL_SCHEMA_SEEDING = os.environ.get(
    "REPRO_DISABLE_INCREMENTAL", ""
).strip().lower() in ("", "0", "false", "no")


class Version:
    """One version of a knowledge base: an id, a snapshot and metadata.

    Constructed either with a concrete ``graph`` (root versions, ad-hoc
    snapshots) or -- by the version chain -- additionally with a ``parent``
    and the ``changes`` ``(added, deleted)`` against it, which makes the
    snapshot droppable and rebuildable.  A version may even be *born*
    without its snapshot (``graph=None`` plus an explicit ``size``): the
    on-disk store's lazy decode appends versions from their recorded
    deltas alone, and the snapshot rematerialises through the same
    delta-replay path a compacted version uses.
    """

    def __init__(
        self,
        version_id: str,
        graph: Graph | None,
        metadata: Dict[str, str] | None = None,
        *,
        parent: "Version | None" = None,
        changes: _Changes | None = None,
        size: int | None = None,
    ) -> None:
        self.version_id = version_id
        self.metadata: Dict[str, str] = metadata if metadata is not None else {}
        self._graph: Graph | None = graph
        if graph is None:
            if parent is None or changes is None or size is None:
                raise VersionError(
                    "a version without a snapshot needs a parent, recorded "
                    "changes and an explicit size"
                )
            self._size = size
        else:
            self._size = len(graph)
        self._schema: SchemaView | None = None
        self._parent = parent
        self._changes = changes
        # Serialises lazy rematerialisation and schema-view construction so
        # concurrent readers of a cold version share one build instead of
        # racing to publish near-identical copies.
        self._build_lock = threading.RLock()

    @property
    def graph(self) -> Graph:
        """This version's snapshot graph (rematerialised if compacted away)."""
        # Single read into a local: a concurrent compact() may null the
        # attribute between a lock-free check and the return.
        graph = self._graph
        if graph is None:
            with self._build_lock:
                graph = self._graph
                if graph is None:
                    graph = self._materialize()
                    self._graph = graph
        return graph

    @property
    def parent(self) -> "Version | None":
        """The previous version in the chain (None for the root)."""
        return self._parent

    def delta_from_parent(self) -> "LowLevelDelta | None":
        """The low-level delta turning the parent into this version.

        None for root versions.  Recorded at commit time, so reading it never
        re-diffs the snapshots.
        """
        if self._changes is None:
            return None
        from repro.deltas.lowlevel import LowLevelDelta

        return LowLevelDelta.from_changes(added=self._changes[0], deleted=self._changes[1])

    def _materialize(self) -> Graph:
        """Rebuild the snapshot by replaying deltas from a cached ancestor."""
        pending: List[Version] = []
        node: Version | None = self
        base: Graph | None = None
        while node is not None:
            base = node._graph  # read once: a concurrent compact() may drop it
            if base is not None:
                break
            if node._changes is None or node._parent is None:
                raise VersionError(
                    f"version {node.version_id!r} has neither a cached graph nor a delta chain"
                )
            pending.append(node)
            node = node._parent
        assert base is not None  # the chain root always keeps its graph
        graph = base.copy()
        for version in reversed(pending):
            added, deleted = version._changes  # type: ignore[misc]
            graph.remove_all(deleted)
            graph.add_all(added)
        return graph

    def drop_graph_cache(self) -> bool:
        """Drop the cached snapshot (and schema view) if rebuildable.

        Returns True when the cache was dropped; root versions and versions
        committed without a recorded delta keep their graph and return False.
        """
        with self._build_lock:
            if self._parent is None or self._changes is None or self._graph is None:
                return False
            self._graph = None
            self._schema = None
            return True

    @property
    def is_materialized(self) -> bool:
        """True when the snapshot graph is currently cached in memory."""
        return self._graph is not None

    @property
    def schema_if_built(self) -> "SchemaView | None":
        """The cached schema view, or None -- never builds or materialises.

        The warm-handoff path (:mod:`repro.service.replica`) harvests
        derived artefacts only from views a request already paid for;
        probing through :attr:`schema` instead would force compacted
        versions to rematerialise just to report an empty memo.
        """
        return self._schema

    @property
    def schema(self) -> SchemaView:
        """Schema view of this version's snapshot (cached).

        When the parent version's view has already been built (the common
        case: evaluation sweeps walk the chain in order), the fresh view is
        seeded with the parent view plus the recorded commit delta, so the
        expensive derived artefacts memoised on it update in O(delta)
        instead of O(graph).  Versions without a parent, without a recorded
        delta, or with a not-yet-built parent view fall back to the cold
        path -- never recursively forcing ancestor views.
        """
        schema = self._schema
        if schema is None:
            with self._build_lock:
                schema = self._schema
                if schema is None:
                    schema = SchemaView(self.graph)
                    parent_schema = (
                        self._parent._schema if self._parent is not None else None
                    )
                    if (
                        INCREMENTAL_SCHEMA_SEEDING
                        and self._changes is not None
                        and parent_schema is not None
                    ):
                        schema.seed_from_parent(parent_schema, *self._changes)
                    self._schema = schema
        return schema

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return (
            f"Version(version_id={self.version_id!r}, graph={self._graph!r}, "
            f"metadata={self.metadata!r})"
        )


class VersionedKnowledgeBase:
    """A linear chain of knowledge-base versions with shared interning.

    >>> kb = VersionedKnowledgeBase("demo")
    >>> v1 = kb.commit(Graph(), version_id="v1")
    >>> kb.latest().version_id
    'v1'
    """

    def __init__(self, name: str = "kb") -> None:
        if not name:
            raise ValueError("knowledge base name must be non-empty")
        self.name = name
        self._versions: List[Version] = []
        self._by_id: Dict[str, Version] = {}
        # Writer lock: commits / compaction are single-writer.  Readers never
        # take it -- committed Version objects are immutable, and the chain
        # only ever grows (list append / dict insert are atomic under the
        # GIL), so concurrent version() / latest() / iteration against a
        # committing writer observe either the old or the new chain head.
        self._write_lock = threading.RLock()

    # -- committing -----------------------------------------------------------

    def commit(
        self,
        graph: Graph,
        version_id: str | None = None,
        metadata: Dict[str, str] | None = None,
        copy: bool = True,
    ) -> Version:
        """Append ``graph`` as the next version and return it.

        ``graph`` is copied by default so later caller-side mutation cannot
        corrupt the chain; pass ``copy=False`` to adopt the graph when the
        caller hands over ownership (the synthetic generators do this).

        The chain's term dictionary is the one of the first committed graph;
        a later graph interned against a *different* dictionary is re-encoded
        onto the chain's (a full copy), so every version always shares one
        dictionary and delta computation stays on the integer fast path.
        """
        with self._write_lock:
            if version_id is None:
                version_id = f"v{len(self._versions) + 1}"
            if version_id in self._by_id:
                raise VersionError(f"duplicate version id: {version_id!r}")
            parent = self._versions[-1] if self._versions else None
            if parent is None:
                snapshot = graph.copy() if copy else graph
                version = Version(version_id, snapshot, dict(metadata or {}))
            else:
                chain_dict = parent.graph.dictionary
                if graph.dictionary is not chain_dict:
                    snapshot = Graph(iter(graph), dictionary=chain_dict)
                elif copy:
                    snapshot = graph.copy()
                else:
                    snapshot = graph
                changes = (
                    frozenset(snapshot.difference(parent.graph)),
                    frozenset(parent.graph.difference(snapshot)),
                )
                version = Version(
                    version_id,
                    snapshot,
                    dict(metadata or {}),
                    parent=parent,
                    changes=changes,
                )
            # The version publishes fully built: the _by_id insert lands
            # before the list append, so an id visible through iteration is
            # always resolvable.
            self._by_id[version_id] = version
            self._versions.append(version)
            return version

    def commit_changes(
        self,
        added: Iterable[Triple] = (),
        deleted: Iterable[Triple] = (),
        version_id: str | None = None,
        metadata: Dict[str, str] | None = None,
    ) -> Version:
        """Derive the next version from the latest one by applying changes."""
        with self._write_lock:
            base = self.latest().graph.copy() if self._versions else Graph()
            base.remove_all(deleted)
            base.add_all(added)
            return self.commit(base, version_id=version_id, metadata=metadata, copy=False)

    def commit_recorded(
        self,
        added: Iterable[Triple] = (),
        deleted: Iterable[Triple] = (),
        version_id: str | None = None,
        metadata: Dict[str, str] | None = None,
        snapshot: Graph | None = None,
    ) -> Version:
        """Append the next version from an *exact* recorded delta, lazily.

        Unlike :meth:`commit_changes` this never diffs and -- by default --
        never materialises the child snapshot: the new version is born
        compacted (delta-only) and rebuilds transparently through the
        delta-replay path on first :attr:`Version.graph` access.  This is
        the O(delta) append the binary store's commit-log replay and the
        wire format's lazy decode ride -- the chain root must already
        exist.  A decoder that has the child's triple set in hand anyway
        may pass ``snapshot`` (trusted to equal parent minus ``deleted``
        plus ``added``, on the chain's dictionary) to adopt it as the
        cached graph -- the wire format does this for the head pair, so a
        freshly booted chain serves its first request without any replay.

        The delta must be exact -- ``deleted`` a subset of the parent,
        ``added`` disjoint from it -- which holds for every delta this
        library records at commit time.  Triples must already be interned
        in the chain's dictionary (deltas decoded from the wire are).
        """
        with self._write_lock:
            if not self._versions:
                raise VersionError(
                    "commit_recorded needs an existing root version "
                    "(commit the root snapshot first)"
                )
            if version_id is None:
                version_id = f"v{len(self._versions) + 1}"
            if version_id in self._by_id:
                raise VersionError(f"duplicate version id: {version_id!r}")
            parent = self._versions[-1]
            changes = (frozenset(added), frozenset(deleted))
            version = Version(
                version_id,
                snapshot,
                dict(metadata or {}),
                parent=parent,
                changes=changes,
                size=len(parent) + len(changes[0]) - len(changes[1]),
            )
            self._by_id[version_id] = version
            self._versions.append(version)
            return version

    def compact(self) -> int:
        """Drop the cached snapshots of all middle versions; returns how many.

        The root and the latest version stay materialised (the root anchors
        the delta chain, the latest is what most queries hit).  Compacted
        versions rebuild transparently -- and cache again -- on next access.
        """
        with self._write_lock:
            dropped = 0
            for version in self._versions[1:-1]:
                if version.drop_graph_cache():
                    dropped += 1
            return dropped

    @property
    def write_lock(self) -> threading.RLock:
        """The chain's writer lock (reentrant).

        Commits and compaction take it internally; the serving layer also
        holds it as the per-tenant write lock around compound
        read-modify-commit sequences.  Readers never need it.
        """
        return self._write_lock

    # -- access ---------------------------------------------------------------

    def version(self, version_id: str) -> Version:
        """The version named ``version_id`` (raises :class:`VersionError`)."""
        try:
            return self._by_id[version_id]
        except KeyError:
            raise VersionError(
                f"unknown version {version_id!r} (have: {', '.join(self.version_ids()) or 'none'})"
            ) from None

    def latest(self) -> Version:
        """The most recent version (raises on an empty chain)."""
        if not self._versions:
            raise VersionError("knowledge base has no versions yet")
        return self._versions[-1]

    def first(self) -> Version:
        """The oldest version (raises on an empty chain)."""
        if not self._versions:
            raise VersionError("knowledge base has no versions yet")
        return self._versions[0]

    def version_ids(self) -> List[str]:
        """Version ids in chain order."""
        return [v.version_id for v in self._versions]

    def pairs(self) -> Iterator[Tuple[Version, Version]]:
        """Consecutive ``(V_i, V_{i+1})`` version pairs in chain order."""
        for older, newer in zip(self._versions, self._versions[1:]):
            yield older, newer

    def __len__(self) -> int:
        return len(self._versions)

    def __iter__(self) -> Iterator[Version]:
        return iter(self._versions)

    def __contains__(self, version_id: object) -> bool:
        return version_id in self._by_id

    def __repr__(self) -> str:
        return f"VersionedKnowledgeBase({self.name!r}, versions={self.version_ids()})"
