"""A basic-graph-pattern (BGP) query engine over graphs and version chains.

The paper motivates delta management with "the need for accessing previous
versions of a dataset to support historical or cross-snapshot queries".
This module provides the minimal query capability those use cases need:

* :class:`Var` -- a named query variable,
* :class:`Pattern` -- a triple pattern mixing terms and variables,
* :func:`select` -- evaluate a conjunctive BGP against one graph, with
  optional post-filters, yielding variable bindings,
* :class:`SnapshotQuery` -- the same query run across a whole version
  chain: per-version answers, answers holding in *every* version, answers
  *gained*/*lost* between two versions (the cross-snapshot queries).

Evaluation is the classic left-deep join with greedy pattern reordering
(most selective first), which is plenty for the library's graph sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Sequence, Tuple, Union

from repro.kb.graph import Graph
from repro.kb.terms import IRI, Term
from repro.kb.version import VersionedKnowledgeBase


@dataclass(frozen=True)
class Var:
    """A query variable, e.g. ``Var("cls")``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __repr__(self) -> str:
        return f"?{self.name}"


PatternTerm = Union[Term, Var]
Binding = Dict[str, Term]


@dataclass(frozen=True)
class Pattern:
    """One triple pattern; any position may be a term or a variable."""

    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm

    def variables(self) -> List[str]:
        """Names of the variables this pattern mentions."""
        return [p.name for p in (self.subject, self.predicate, self.object) if isinstance(p, Var)]

    def _resolve(self, position: PatternTerm, binding: Binding) -> Term | None:
        if isinstance(position, Var):
            return binding.get(position.name)
        return position

    def match(self, graph: Graph, binding: Binding) -> Iterator[Binding]:
        """Bindings extending ``binding`` that satisfy this pattern."""
        subject = self._resolve(self.subject, binding)
        predicate = self._resolve(self.predicate, binding)
        obj = self._resolve(self.object, binding)
        if predicate is not None and not isinstance(predicate, IRI):
            return  # a non-IRI bound in predicate position can never match
        for triple in graph.match(subject, predicate, obj):
            extended = dict(binding)
            consistent = True
            for position, value in (
                (self.subject, triple.subject),
                (self.predicate, triple.predicate),
                (self.object, triple.object),
            ):
                if isinstance(position, Var):
                    bound = extended.get(position.name)
                    if bound is None:
                        extended[position.name] = value
                    elif bound != value:
                        consistent = False
                        break
            if consistent:
                yield extended

    def selectivity(self, graph: Graph, binding: Binding) -> int:
        """Estimated number of matches given the current binding (lower = better)."""
        subject = self._resolve(self.subject, binding)
        predicate = self._resolve(self.predicate, binding)
        obj = self._resolve(self.object, binding)
        if predicate is not None and not isinstance(predicate, IRI):
            return 0
        return graph.count(subject, predicate, obj)


Filter = Callable[[Binding], bool]


def select(
    graph: Graph,
    patterns: Sequence[Pattern],
    filters: Sequence[Filter] = (),
) -> List[Binding]:
    """All variable bindings satisfying every pattern and filter.

    Patterns are greedily reordered by selectivity at each join step.
    Duplicate bindings (possible when patterns repeat) are removed; the
    result order is deterministic (sorted by the bindings' term order).
    """
    if not patterns:
        return []
    solutions: List[Binding] = [{}]
    remaining = list(patterns)
    while remaining:
        # Pick the pattern with the fewest estimated matches under the
        # first current solution (a cheap but effective heuristic).
        probe = solutions[0] if solutions else {}
        remaining.sort(key=lambda p: p.selectivity(graph, probe))
        pattern = remaining.pop(0)
        next_solutions: List[Binding] = []
        for binding in solutions:
            next_solutions.extend(pattern.match(graph, binding))
        solutions = next_solutions
        if not solutions:
            return []
    for check in filters:
        solutions = [binding for binding in solutions if check(binding)]
    unique = {tuple(sorted((k, v) for k, v in b.items())): b for b in solutions}
    return [unique[key] for key in sorted(unique, key=str)]


def ask(graph: Graph, patterns: Sequence[Pattern], filters: Sequence[Filter] = ()) -> bool:
    """True when at least one binding satisfies the query."""
    return bool(select(graph, patterns, filters))


class SnapshotQuery:
    """One BGP query evaluated across a whole version chain."""

    def __init__(
        self,
        patterns: Sequence[Pattern],
        filters: Sequence[Filter] = (),
    ) -> None:
        if not patterns:
            raise ValueError("a query needs at least one pattern")
        self._patterns = list(patterns)
        self._filters = list(filters)

    def on_version(self, kb: VersionedKnowledgeBase, version_id: str) -> List[Binding]:
        """Answers in one historical version."""
        return select(kb.version(version_id).graph, self._patterns, self._filters)

    def per_version(self, kb: VersionedKnowledgeBase) -> Dict[str, List[Binding]]:
        """Answers per version id, in chain order."""
        return {
            version.version_id: select(version.graph, self._patterns, self._filters)
            for version in kb
        }

    def holds_throughout(self, kb: VersionedKnowledgeBase) -> List[Binding]:
        """Answers present in *every* version of the chain."""
        per_version = self.per_version(kb)
        if not per_version:
            return []
        keysets = [
            {self._key(b) for b in bindings} for bindings in per_version.values()
        ]
        stable = set.intersection(*keysets)
        first = next(iter(per_version.values()))
        return [b for b in first if self._key(b) in stable]

    def gained(self, kb: VersionedKnowledgeBase, old_id: str, new_id: str) -> List[Binding]:
        """Answers in ``new_id`` that were absent in ``old_id``."""
        old_keys = {self._key(b) for b in self.on_version(kb, old_id)}
        return [
            b for b in self.on_version(kb, new_id) if self._key(b) not in old_keys
        ]

    def lost(self, kb: VersionedKnowledgeBase, old_id: str, new_id: str) -> List[Binding]:
        """Answers in ``old_id`` that disappeared by ``new_id``."""
        new_keys = {self._key(b) for b in self.on_version(kb, new_id)}
        return [
            b for b in self.on_version(kb, old_id) if self._key(b) not in new_keys
        ]

    @staticmethod
    def _key(binding: Binding) -> Tuple:
        return tuple(sorted((name, value) for name, value in binding.items()))
