"""The triple: the atomic statement of the knowledge base."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.kb.errors import TermError
from repro.kb.terms import BNode, IRI, Literal, Term, is_resource


@dataclass(frozen=True, order=False)
class Triple:
    """An RDF triple ``(subject, predicate, object)``.

    Subjects must be IRIs or blank nodes, predicates must be IRIs, objects may
    be any term.  Triples are immutable, hashable and ordered by the term
    order, so sets of triples have a canonical sorted serialisation.

    >>> from repro.kb.namespaces import EX, RDF_TYPE, RDFS_CLASS
    >>> Triple(EX.Person, RDF_TYPE, RDFS_CLASS).n3()
    '<http://example.org/Person> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2000/01/rdf-schema#Class> .'
    """

    subject: Term
    predicate: IRI
    object: Term

    def __hash__(self) -> int:
        cached = getattr(self, "_cached_hash", None)
        if cached is None:
            cached = hash((self.subject, self.predicate, self.object))
            object.__setattr__(self, "_cached_hash", cached)
        return cached

    def __post_init__(self) -> None:
        if not is_resource(self.subject):
            raise TermError(
                f"triple subject must be an IRI or blank node, got {type(self.subject).__name__}"
            )
        if not isinstance(self.predicate, IRI):
            raise TermError(
                f"triple predicate must be an IRI, got {type(self.predicate).__name__}"
            )
        if not isinstance(self.object, (IRI, BNode, Literal)):
            raise TermError(
                f"triple object must be an RDF term, got {type(self.object).__name__}"
            )

    def n3(self) -> str:
        """One N-Triples line (with trailing ``.``)."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def terms(self) -> Iterator[Term]:
        """Iterate subject, predicate, object."""
        yield self.subject
        yield self.predicate
        yield self.object

    def mentions(self, term: Term) -> bool:
        """True if ``term`` appears in any position of this triple."""
        return term == self.subject or term == self.predicate or term == self.object

    def _sort_key(self) -> tuple:
        return (
            self.subject._sort_key(),
            self.predicate._sort_key(),
            self.object._sort_key(),
        )

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, Triple):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def __repr__(self) -> str:
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r})"
