"""The triple: the atomic statement of the knowledge base."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.kb.errors import TermError
from repro.kb.terms import BNode, IRI, Literal, Term, is_resource

# Captured once so the unchecked constructor can bypass the frozen-dataclass
# __setattr__ even though the class has a field literally named ``object``.
_OBJECT_NEW = object.__new__
_OBJECT_SETATTR = object.__setattr__


@dataclass(frozen=True, order=False)
class Triple:
    """An RDF triple ``(subject, predicate, object)``.

    Subjects must be IRIs or blank nodes, predicates must be IRIs, objects may
    be any term.  Triples are immutable, hashable and ordered by the term
    order, so sets of triples have a canonical sorted serialisation.

    >>> from repro.kb.namespaces import EX, RDF_TYPE, RDFS_CLASS
    >>> Triple(EX.Person, RDF_TYPE, RDFS_CLASS).n3()
    '<http://example.org/Person> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2000/01/rdf-schema#Class> .'
    """

    subject: Term
    predicate: IRI
    object: Term

    def __hash__(self) -> int:
        return self._cached_hash  # type: ignore[attr-defined]

    def __post_init__(self) -> None:
        if not is_resource(self.subject):
            raise TermError(
                f"triple subject must be an IRI or blank node, got {type(self.subject).__name__}"
            )
        if not isinstance(self.predicate, IRI):
            raise TermError(
                f"triple predicate must be an IRI, got {type(self.predicate).__name__}"
            )
        if not isinstance(self.object, (IRI, BNode, Literal)):
            raise TermError(
                f"triple object must be an RDF term, got {type(self.object).__name__}"
            )
        # Triples live in graph-difference sets and delta frozensets that are
        # hashed wholesale; the term hashes are already cached, so the tuple
        # hash is cheap enough to precompute eagerly (as IRI does).
        _OBJECT_SETATTR(
            self, "_cached_hash", hash((self.subject, self.predicate, self.object))
        )

    @classmethod
    def _interned(cls, subject: Term, predicate: IRI, obj: Term) -> "Triple":
        """Unchecked construction for terms already validated by interning.

        :class:`~repro.kb.interning.TermDictionary` only hands back terms
        that entered through a validated ``Triple``, so materialisation can
        skip ``__init__``/``__post_init__`` entirely.
        """
        triple = _OBJECT_NEW(cls)
        _OBJECT_SETATTR(triple, "subject", subject)
        _OBJECT_SETATTR(triple, "predicate", predicate)
        _OBJECT_SETATTR(triple, "object", obj)
        _OBJECT_SETATTR(triple, "_cached_hash", hash((subject, predicate, obj)))
        return triple

    def n3(self) -> str:
        """One N-Triples line (with trailing ``.``)."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def terms(self) -> Iterator[Term]:
        """Iterate subject, predicate, object."""
        yield self.subject
        yield self.predicate
        yield self.object

    def mentions(self, term: Term) -> bool:
        """True if ``term`` appears in any position of this triple."""
        return term == self.subject or term == self.predicate or term == self.object

    def _sort_key(self) -> tuple:
        return (
            self.subject._sort_key(),
            self.predicate._sort_key(),
            self.object._sort_key(),
        )

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, Triple):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def __repr__(self) -> str:
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r})"
