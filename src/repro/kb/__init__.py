"""Knowledge-base substrate: terms, triples, graphs, schema views, versions.

This subpackage is S1-S4 of the system inventory in DESIGN.md: an RDF-style
triple store with pattern indexes, a schema view exposing classes /
properties / subsumption / instances, a linear version chain, and N-Triples
round-tripping.
"""

from repro.kb.archive import (
    ArchivingPolicy,
    ChangeThreshold,
    ExponentialThinning,
    KeepAll,
    KeepLastN,
)
from repro.kb.errors import (
    KnowledgeBaseError,
    ParseError,
    SchemaError,
    TermError,
    VersionError,
    WireFormatError,
)
from repro.kb.graph import Graph
from repro.kb.interning import TermDictionary
from repro.kb.namespaces import (
    EX,
    Namespace,
    OWL,
    RDF,
    RDF_PROPERTY,
    RDF_TYPE,
    RDFS,
    RDFS_CLASS,
    RDFS_DOMAIN,
    RDFS_LABEL,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    XSD,
)
from repro.kb.inference import entails, rdfs_closure
from repro.kb.ntriples import parse, parse_graph, serialize
from repro.kb.query import Pattern, SnapshotQuery, Var, ask, select
from repro.kb.schema import PropertyEdge, SchemaView
from repro.kb.terms import BNode, IRI, Literal, Term, is_resource
from repro.kb.triples import Triple
from repro.kb.version import Version, VersionedKnowledgeBase

__all__ = [
    "ArchivingPolicy",
    "ChangeThreshold",
    "ExponentialThinning",
    "KeepAll",
    "KeepLastN",
    "KnowledgeBaseError",
    "ParseError",
    "SchemaError",
    "TermError",
    "VersionError",
    "WireFormatError",
    "Graph",
    "TermDictionary",
    "EX",
    "Namespace",
    "OWL",
    "RDF",
    "RDF_PROPERTY",
    "RDF_TYPE",
    "RDFS",
    "RDFS_CLASS",
    "RDFS_DOMAIN",
    "RDFS_LABEL",
    "RDFS_RANGE",
    "RDFS_SUBCLASSOF",
    "XSD",
    "entails",
    "rdfs_closure",
    "parse",
    "parse_graph",
    "serialize",
    "Pattern",
    "SnapshotQuery",
    "Var",
    "ask",
    "select",
    "PropertyEdge",
    "SchemaView",
    "BNode",
    "IRI",
    "Literal",
    "Term",
    "is_resource",
    "Triple",
    "Version",
    "VersionedKnowledgeBase",
]
