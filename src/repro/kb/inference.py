"""RDFS-lite materialisation (forward-chaining closure).

Knowledge bases like the paper's motivating examples (DBpedia, YAGO) are
usually consumed with some RDFS entailment applied: an instance of
``Student`` *is* a ``Person``, a triple using a property with a declared
domain types its subject, and so on.  The measures in this library work on
whatever graph they are given; materialising the closure first makes the
instance-sensitive measures (Section II.d) see inherited membership.

Supported rules (the RDFS subset that affects this library's semantics):

====== =====================================================================
rdfs5  (p subPropertyOf q), (q subPropertyOf r)  ->  (p subPropertyOf r)
rdfs7  (x p y), (p subPropertyOf q)              ->  (x q y)
rdfs11 (C subClassOf D), (D subClassOf E)        ->  (C subClassOf E)
rdfs9  (x type C), (C subClassOf D)              ->  (x type D)
rdfs2  (x p y), (p domain C)                     ->  (x type C)
rdfs3  (x p y), (p range C), y is a resource     ->  (y type C)
====== =====================================================================

:func:`rdfs_closure` returns a *new* graph containing the input plus every
entailed triple; the computation is a fixpoint loop and terminates because
each round only adds triples over the finite vocabulary of the input.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.kb.graph import Graph
from repro.kb.namespaces import (
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
)
from repro.kb.terms import IRI, Literal, Term
from repro.kb.triples import Triple


def _transitive_closure(pairs: Set[Tuple[Term, Term]]) -> Set[Tuple[Term, Term]]:
    """Transitive closure of a binary relation (simple semi-naive loop)."""
    closure = set(pairs)
    by_source: Dict[Term, Set[Term]] = {}
    for a, b in closure:
        by_source.setdefault(a, set()).add(b)
    changed = True
    while changed:
        changed = False
        new_pairs: List[Tuple[Term, Term]] = []
        for a, bs in list(by_source.items()):
            for b in list(bs):
                for c in by_source.get(b, ()):
                    if (a, c) not in closure and a != c:
                        new_pairs.append((a, c))
        for a, c in new_pairs:
            closure.add((a, c))
            by_source.setdefault(a, set()).add(c)
            changed = True
    return closure


def rdfs_closure(graph: Graph) -> Graph:
    """The RDFS-lite closure of ``graph`` (input graph is not mutated)."""
    result = graph.copy()

    # rdfs11 / rdfs5: transitive subclass and subproperty hierarchies.
    subclass_pairs = {
        (t.subject, t.object) for t in graph.match(None, RDFS_SUBCLASSOF, None)
    }
    for a, b in _transitive_closure(subclass_pairs):
        if isinstance(b, (IRI,)) or not isinstance(b, Literal):
            result.add(Triple(a, RDFS_SUBCLASSOF, b))
    subproperty_pairs = {
        (t.subject, t.object) for t in graph.match(None, RDFS_SUBPROPERTYOF, None)
    }
    subproperty_closure = _transitive_closure(subproperty_pairs)
    for a, b in subproperty_closure:
        result.add(Triple(a, RDFS_SUBPROPERTYOF, b))

    # Fixpoint over the instance-level rules (each can feed the others).
    changed = True
    while changed:
        changed = False

        # rdfs7: property inheritance.
        for p, q in subproperty_closure:
            if not isinstance(q, IRI) or not isinstance(p, IRI):
                continue
            for triple in list(result.match(None, p, None)):
                if result.add(Triple(triple.subject, q, triple.object)):
                    changed = True

        # rdfs2 / rdfs3: domain and range typing.
        for decl, position in ((RDFS_DOMAIN, "subject"), (RDFS_RANGE, "object")):
            for declaration in list(result.match(None, decl, None)):
                prop, cls = declaration.subject, declaration.object
                if not isinstance(prop, IRI) or not isinstance(cls, IRI):
                    continue
                if prop in (RDF_TYPE, RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF):
                    continue
                for triple in list(result.match(None, prop, None)):
                    node = triple.subject if position == "subject" else triple.object
                    if isinstance(node, Literal):
                        continue
                    if result.add(Triple(node, RDF_TYPE, cls)):
                        changed = True

        # rdfs9: type inheritance along (closed) subclass links.
        subclass_of: Dict[Term, Set[Term]] = {}
        for triple in result.match(None, RDFS_SUBCLASSOF, None):
            subclass_of.setdefault(triple.subject, set()).add(triple.object)
        for typing in list(result.match(None, RDF_TYPE, None)):
            for super_cls in subclass_of.get(typing.object, ()):
                if isinstance(super_cls, Literal):
                    continue
                if result.add(Triple(typing.subject, RDF_TYPE, super_cls)):
                    changed = True

    return result


def entails(graph: Graph, triple: Triple) -> bool:
    """True when ``triple`` is in the RDFS-lite closure of ``graph``."""
    if triple in graph:
        return True
    return triple in rdfs_closure(graph)
