"""Compact binary wire format for graphs, deltas and version chains.

Cross-process sharding (:mod:`repro.service.sharding`) needs to hand a full
tenant -- its term dictionary, root snapshot and delta-chained commit log --
to a worker process without re-parsing N-Triples and without pickling the
object graph.  This module is that wire format: the columnar substrate's
integer-id triples are packed as numpy arrays (``tobytes`` / ``frombuffer``)
inside length-prefixed frames, and the term dictionary travels as one
UTF-8 blob plus offset/kind arrays in *id order*.

The defining property is **bit-identity**: decoding is not merely
semantically equivalent, it reproduces the exact interned state --

* every term keeps its dense integer id (``decode(encode(kb))`` interns
  term ``t`` to the same id the source chain did, including terms the
  chain interned but no longer uses),
* every version's triple set, recorded ``(added, deleted)`` commit delta
  and metadata round-trip exactly,
* hence every downstream artefact (measure results, recommendations) is
  bit-for-bit identical between the source and a decoded replica --
  which is what lets a shard answer for its tenants as if it held the
  original objects.

Payload layouts (all integers little-endian)::

    frame      := u64 length | payload
    strings    := u64 n_strings | frame(offsets: u64[n]) | frame(utf-8 blob)
    dictionary := u64 n_terms  | frame(kinds: u8[n_terms]) | strings
    keys       := u8 dtype(4|8) | u64 n_triples | frame(ids: u{32,64}[n*3])
    graph      := magic 'RPWG' u8 version | frame(dictionary) | frame(keys)
    triples    := magic 'RPWD' u8 version | frame(dictionary) | frame(keys)
    kb         := magic 'RPWK' u8 version | frame(header JSON)
                  | frame(dictionary) | frame(root keys)
                  | per non-root version: frame(added keys) frame(deleted keys)
    commit     := magic 'RPWC' u8 version | frame(header JSON)
                  | frame(dictionary growth) | frame(added keys) | frame(deleted keys)
    artefacts  := magic 'RPWA' u8 version | frame(header JSON)
                  | per version: u8 flags | per flagged cache:
                    frame(term ids) frame(float64 values)

Key arrays are sorted, so equal graphs encode to equal bytes (canonical
form).  ``encode_kb`` reads the *recorded* commit deltas -- it never diffs
or rematerialises compacted snapshots, so encoding a compacted chain stays
O(root + deltas).

``commit`` records are the unit of the on-disk **append-only commit log**
(:mod:`repro.io.store`): one self-delimiting record per committed version,
carrying the *growth* of the term dictionary since the previous record
(ids ``[terms_before, terms_after)`` in id order) plus the recorded delta
-- so persisting a service commit is O(delta), never O(chain).  Records
concatenate; :func:`decode_commit_log` replays a whole log against the
dictionary the base payload decoded to, reproducing identical term ids.

Every ``decode_*`` function accepts any bytes-like buffer (``bytes``,
``memoryview``, ``mmap.mmap``), so on-disk payloads decode straight out of
a memory map without an intermediate copy of the file.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.kb.errors import WireFormatError
from repro.kb.graph import Graph
from repro.kb.interning import TermDictionary, TripleKey
from repro.kb.terms import BNode, IRI, Literal, Term
from repro.kb.triples import Triple
from repro.kb.version import VersionedKnowledgeBase

#: Format version; bump on any layout change.
WIRE_VERSION = 1

_MAGIC_GRAPH = b"RPWG"
_MAGIC_KB = b"RPWK"
_MAGIC_TRIPLES = b"RPWD"
_MAGIC_COMMIT = b"RPWC"
_MAGIC_STORE = b"RPWS"
_MAGIC_ARTEFACTS = b"RPWA"

_U64 = struct.Struct("<Q")

# Term kind tags (order is part of the format).
_KIND_IRI = 0
_KIND_BNODE = 1
_KIND_PLAIN = 2  # literal, no datatype / language
_KIND_TYPED = 3  # literal with datatype IRI
_KIND_TAGGED = 4  # literal with language tag


# -- frame plumbing ---------------------------------------------------------------


def _pack_frame(payload: bytes) -> bytes:
    return _U64.pack(len(payload)) + payload


def _frombuffer(data: bytes, dtype) -> np.ndarray:
    """``np.frombuffer`` upholding the module's WireFormatError contract."""
    try:
        return np.frombuffer(data, dtype=dtype)
    except ValueError as exc:  # length not a multiple of the element size
        raise WireFormatError(f"malformed integer frame: {exc}") from None


class _Reader:
    """Sequential reader over length-prefixed frames (any bytes-like buffer)."""

    def __init__(self, data) -> None:
        self._data = data
        self._pos = 0

    def take(self, n: int) -> bytes:
        end = self._pos + n
        if end > len(self._data):
            raise WireFormatError(
                f"truncated payload: wanted {n} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        chunk = self._data[self._pos : end]
        self._pos = end
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]

    def frame(self) -> bytes:
        return self.take(self.u64())

    def expect_magic(self, magic: bytes) -> None:
        found = bytes(self.take(len(magic)))
        if found != magic:
            raise WireFormatError(f"bad magic: expected {magic!r}, found {found!r}")
        version = self.u8()
        if version != WIRE_VERSION:
            raise WireFormatError(
                f"unsupported wire version {version} (supported: {WIRE_VERSION})"
            )

    def at_end(self) -> bool:
        return self._pos >= len(self._data)


# -- strings / dictionary ---------------------------------------------------------


def _pack_strings(strings: Sequence[str]) -> bytes:
    encoded = [s.encode("utf-8") for s in strings]
    offsets = np.cumsum([len(b) for b in encoded], dtype=np.uint64)
    blob = b"".join(encoded)
    return (
        _U64.pack(len(encoded))
        + _pack_frame(offsets.tobytes())
        + _pack_frame(blob)
    )


def _unpack_strings(reader: _Reader) -> List[str]:
    count = reader.u64()
    offsets = _frombuffer(reader.frame(), np.uint64)
    if len(offsets) != count:
        raise WireFormatError(
            f"string table: {count} strings but {len(offsets)} offsets"
        )
    blob = reader.frame()
    if count and int(offsets[-1]) != len(blob):
        raise WireFormatError(
            f"string table: blob is {len(blob)} bytes, offsets end at {int(offsets[-1])}"
        )
    strings: List[str] = []
    start = 0
    for end in offsets.tolist():
        if end < start or end > len(blob):
            raise WireFormatError(
                f"string table: offset {end} out of order (previous {start}, "
                f"blob {len(blob)} bytes)"
            )
        try:
            strings.append(str(blob[start:end], "utf-8"))
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"string table: invalid UTF-8 ({exc})") from None
        start = end
    return strings


def _pack_term_range(dictionary: TermDictionary, start: int, end: int) -> bytes:
    """The term table slice ``[start, end)`` in id order: kinds + strings.

    ``start=0, end=len(dictionary)`` is the full-dictionary payload; commit
    records pack only the *growth* since the previous record.
    """
    n = end - start
    kinds = np.empty(n, dtype=np.uint8)
    strings: List[str] = []
    for index, tid in enumerate(range(start, end)):
        term = dictionary.term(tid)
        if isinstance(term, IRI):
            kinds[index] = _KIND_IRI
            strings.append(term.value)
        elif isinstance(term, BNode):
            kinds[index] = _KIND_BNODE
            strings.append(term.label)
        elif isinstance(term, Literal):
            if term.language is not None:
                kinds[index] = _KIND_TAGGED
                strings.append(term.lexical)
                strings.append(term.language)
            elif term.datatype is not None:
                kinds[index] = _KIND_TYPED
                strings.append(term.lexical)
                strings.append(term.datatype.value)
            else:
                kinds[index] = _KIND_PLAIN
                strings.append(term.lexical)
        else:  # pragma: no cover - the dictionary only interns Terms
            raise WireFormatError(f"cannot encode term of type {type(term).__name__}")
    return _U64.pack(n) + _pack_frame(kinds.tobytes()) + _pack_strings(strings)


def _pack_dictionary(dictionary: TermDictionary) -> bytes:
    """The whole term table in id order: kinds array + string table."""
    return _pack_term_range(dictionary, 0, len(dictionary))


def _unpack_term_range(reader: _Reader, dictionary: TermDictionary, start: int) -> int:
    """Append a packed term-range to ``dictionary``; returns the new size.

    The range must assign ids ``[start, start + n)``: interning the table
    in order can only disagree if the table holds a duplicate term or the
    dictionary already grew past ``start`` -- corrupt or out-of-sync input.
    """
    n = reader.u64()
    kinds = _frombuffer(reader.frame(), np.uint8)
    if len(kinds) != n:
        raise WireFormatError(f"term table: {n} terms but {len(kinds)} kind tags")
    strings = iter(_unpack_strings(reader))
    intern = dictionary.intern
    try:
        for tid, kind in enumerate(kinds.tolist(), start=start):
            if kind == _KIND_IRI:
                term: Term = IRI(next(strings))
            elif kind == _KIND_BNODE:
                term = BNode(next(strings))
            elif kind == _KIND_PLAIN:
                term = Literal(next(strings))
            elif kind == _KIND_TYPED:
                lexical = next(strings)
                term = Literal(lexical, datatype=IRI(next(strings)))
            elif kind == _KIND_TAGGED:
                lexical = next(strings)
                term = Literal(lexical, language=next(strings))
            else:
                raise WireFormatError(f"unknown term kind tag {kind} at id {tid}")
            if intern(term) != tid:
                raise WireFormatError(f"duplicate term in term table at id {tid}")
    except StopIteration:
        raise WireFormatError("term table string table exhausted early") from None
    return len(dictionary)


def _unpack_dictionary(reader: _Reader) -> TermDictionary:
    """Rebuild a dictionary with identical term -> id assignments."""
    dictionary = TermDictionary()
    _unpack_term_range(reader, dictionary, 0)
    return dictionary


def encode_dictionary(dictionary: TermDictionary) -> bytes:
    """Standalone term-table payload (id order, bit-identical on decode)."""
    return _pack_dictionary(dictionary)


def decode_dictionary(data: bytes) -> TermDictionary:
    """Inverse of :func:`encode_dictionary`."""
    return _unpack_dictionary(_Reader(data))


# -- key arrays -------------------------------------------------------------------


def _pack_keys(keys: Iterable[TripleKey], n_terms: int) -> bytes:
    """Sorted id-triples as one packed integer array (canonical form)."""
    rows = sorted(keys)
    dtype = np.uint32 if n_terms <= 0xFFFFFFFF else np.uint64
    array = np.asarray(rows, dtype=dtype).reshape(len(rows), 3) if rows else np.empty(
        (0, 3), dtype=dtype
    )
    return (
        bytes([array.dtype.itemsize])
        + _U64.pack(len(rows))
        + _pack_frame(array.tobytes(order="C"))
    )


def _unpack_keys(reader: _Reader, n_terms: int) -> List[TripleKey]:
    itemsize = reader.u8()
    if itemsize == 4:
        dtype = np.uint32
    elif itemsize == 8:
        dtype = np.uint64
    else:
        raise WireFormatError(f"unsupported key itemsize {itemsize}")
    count = reader.u64()
    flat = _frombuffer(reader.frame(), dtype)
    if len(flat) != count * 3:
        raise WireFormatError(
            f"key array: {count} triples but {len(flat)} ids"
        )
    if count and int(flat.max(initial=0)) >= n_terms:
        raise WireFormatError(
            f"key array references term id {int(flat.max())} "
            f"beyond dictionary size {n_terms}"
        )
    return [tuple(row) for row in flat.reshape(count, 3).tolist()]


def _keys_of(triples: Iterable[Triple], dictionary: TermDictionary) -> List[TripleKey]:
    key_of = dictionary.key_of
    keys: List[TripleKey] = []
    for triple in triples:
        key = key_of(triple)
        if key is None:  # pragma: no cover - chain triples are always interned
            raise WireFormatError(f"triple not interned in chain dictionary: {triple!r}")
        keys.append(key)
    return keys


# -- graphs -----------------------------------------------------------------------


def encode_graph(graph: Graph) -> bytes:
    """Self-contained graph payload: its dictionary plus its sorted keys.

    The *whole* dictionary travels, not just the ids the graph touches, so
    a decoded graph's interned ids equal the source's -- the invariant the
    sharded serving plane relies on.
    """
    dictionary = graph.dictionary
    keys = (dictionary.key_of(t) for t in graph)
    return (
        _MAGIC_GRAPH
        + bytes([WIRE_VERSION])
        + _pack_frame(_pack_dictionary(dictionary))
        + _pack_frame(_pack_keys(keys, len(dictionary)))
    )


def decode_graph(data: bytes) -> Graph:
    """Inverse of :func:`encode_graph` (fresh dictionary, identical ids)."""
    reader = _Reader(data)
    reader.expect_magic(_MAGIC_GRAPH)
    dictionary = _unpack_dictionary(_Reader(reader.frame()))
    keys = _unpack_keys(_Reader(reader.frame()), len(dictionary))
    return Graph.from_interned_keys(dictionary, keys)


# -- standalone triple payloads (commit deltas on the wire) ------------------------


def encode_triples(triples: Sequence[Triple]) -> bytes:
    """A self-contained payload for a batch of triples (e.g. one commit delta).

    Unlike :func:`encode_graph` this builds a *minimal* private dictionary
    holding only the batch's own terms -- the decoding side re-interns them
    into whatever chain receives the commit, exactly as an N-Triples body
    would, just without the text round-trip.
    """
    private = TermDictionary()
    keys = [private.intern_triple(t) for t in triples]
    return (
        _MAGIC_TRIPLES
        + bytes([WIRE_VERSION])
        + _pack_frame(_pack_dictionary(private))
        + _pack_frame(_pack_keys(keys, len(private)))
    )


def decode_triples(data: bytes) -> List[Triple]:
    """Inverse of :func:`encode_triples` (order-insensitive, deduplicated)."""
    reader = _Reader(data)
    reader.expect_magic(_MAGIC_TRIPLES)
    dictionary = _unpack_dictionary(_Reader(reader.frame()))
    keys = _unpack_keys(_Reader(reader.frame()), len(dictionary))
    return [dictionary.materialize(key) for key in keys]


# -- version chains ---------------------------------------------------------------


def encode_kb(kb: VersionedKnowledgeBase) -> bytes:
    """A whole version chain: header, dictionary, root keys, per-commit deltas.

    Reads the deltas *recorded at commit time* -- compacted middle versions
    are never rematerialised.  Decoding replays the chain commit by commit,
    so the replica records the same deltas, shares one dictionary with the
    same ids, and serves bit-identical artefacts.
    """
    versions = list(kb)
    header = {
        "name": kb.name,
        # Dictionary size, duplicated into the header so chain checks
        # against the commit log (is its first record's ``terms_before``
        # this base's?) stay header-only -- no term table decode.
        "n_terms": len(kb.first().graph.dictionary) if versions else 0,
        "versions": [
            {"version_id": v.version_id, "metadata": dict(v.metadata)}
            for v in versions
        ],
    }
    parts = [
        _MAGIC_KB,
        bytes([WIRE_VERSION]),
        _pack_frame(json.dumps(header, sort_keys=True).encode("utf-8")),
    ]
    if not versions:
        parts.append(_pack_frame(_pack_dictionary(TermDictionary())))
        return b"".join(parts)
    dictionary = kb.first().graph.dictionary
    n_terms = len(dictionary)
    parts.append(_pack_frame(_pack_dictionary(dictionary)))
    root_keys = (dictionary.key_of(t) for t in kb.first().graph)
    parts.append(_pack_frame(_pack_keys(root_keys, n_terms)))
    for version in versions[1:]:
        delta = version.delta_from_parent()
        if delta is None:
            raise WireFormatError(
                f"version {version.version_id!r} has no recorded commit delta"
            )
        parts.append(_pack_frame(_pack_keys(_keys_of(delta.added, dictionary), n_terms)))
        parts.append(
            _pack_frame(_pack_keys(_keys_of(delta.deleted, dictionary), n_terms))
        )
    return b"".join(parts)


def decode_kb(data, lazy: bool = False) -> VersionedKnowledgeBase:
    """Inverse of :func:`encode_kb`.

    With ``lazy=False`` every version of the replica is materialised (the
    replay builds each snapshot); call
    :meth:`~repro.kb.version.VersionedKnowledgeBase.compact` afterwards to
    drop middle snapshots again if the source was compacted.

    With ``lazy=True`` only the root snapshot is built eagerly: every
    later version is appended from its recorded delta
    (:meth:`~repro.kb.version.VersionedKnowledgeBase.commit_recorded`) and
    rematerialises transparently through the existing delta-replay path on
    first access -- the cold-start mode of the on-disk store, O(root +
    deltas) instead of O(versions x graph).  As the decoder already holds
    the running key set, the chain's *head pair* (the two newest versions,
    exactly what a cold-started service scores first) additionally gets
    its snapshots bulk-built and adopted, so the first request after boot
    replays nothing.  Either way the replica is bit-identical: same term
    ids, same recorded deltas, same downstream artefacts.
    """
    if lazy:
        return decode_kb_lazy(data)[0]
    reader = _Reader(data)
    reader.expect_magic(_MAGIC_KB)
    header = json.loads(bytes(reader.frame()))
    kb = VersionedKnowledgeBase(header.get("name", "kb"))
    entries = header.get("versions", [])
    dictionary = _unpack_dictionary(_Reader(reader.frame()))
    if not entries:
        return kb
    n_terms = len(dictionary)
    root_keys = _unpack_keys(_Reader(reader.frame()), n_terms)
    root = Graph.from_interned_keys(dictionary, root_keys)
    kb.commit(
        root,
        version_id=entries[0]["version_id"],
        metadata=entries[0].get("metadata", {}),
        copy=False,
    )
    materialize = dictionary.materialize
    for entry in entries[1:]:
        added = _unpack_keys(_Reader(reader.frame()), n_terms)
        deleted = _unpack_keys(_Reader(reader.frame()), n_terms)
        graph = kb.latest().graph.copy()
        # Same application order as delta replay: deletions, then additions.
        graph.remove_all(materialize(key) for key in deleted)
        graph.add_all(materialize(key) for key in added)
        kb.commit(
            graph,
            version_id=entry["version_id"],
            metadata=entry.get("metadata", {}),
            copy=False,
        )
    if not reader.at_end():
        raise WireFormatError("trailing bytes after the last version delta")
    return kb


def decode_kb_lazy(
    data, trailing_records: int = 0
) -> "Tuple[VersionedKnowledgeBase, set]":
    """Lazy decode returning also the head's running key set.

    The on-disk store's building block (:mod:`repro.io.store` replays a
    commit log of ``trailing_records`` further versions on top): the
    *chain-wide* head pair -- position ``n_versions + trailing_records -
    2`` onward -- gets its snapshots bulk-built from the running key set,
    so warming skips base versions a log will supersede, and the returned
    set seeds the log replay without a second delta walk.
    """
    reader = _Reader(data)
    reader.expect_magic(_MAGIC_KB)
    header = json.loads(bytes(reader.frame()))
    kb = VersionedKnowledgeBase(header.get("name", "kb"))
    entries = header.get("versions", [])
    dictionary = _unpack_dictionary(_Reader(reader.frame()))
    if not entries:
        return kb, set()
    n_terms = len(dictionary)
    root_keys = _unpack_keys(_Reader(reader.frame()), n_terms)
    root = Graph.from_interned_keys(dictionary, root_keys)
    kb.commit(
        root,
        version_id=entries[0]["version_id"],
        metadata=entries[0].get("metadata", {}),
        copy=False,
    )
    materialize = dictionary.materialize
    running = set(root_keys)
    warm_from = len(entries) + trailing_records - 2
    for index, entry in enumerate(entries[1:], start=1):
        added = _unpack_keys(_Reader(reader.frame()), n_terms)
        deleted = _unpack_keys(_Reader(reader.frame()), n_terms)
        running.difference_update(deleted)
        running.update(added)
        kb.commit_recorded(
            added=[materialize(key) for key in added],
            deleted=[materialize(key) for key in deleted],
            version_id=entry["version_id"],
            metadata=entry.get("metadata", {}),
            snapshot=(
                Graph.from_interned_keys(dictionary, running)
                if index >= warm_from
                else None
            ),
        )
    if not reader.at_end():
        raise WireFormatError("trailing bytes after the last version delta")
    return kb, running


def read_kb_header(data) -> dict:
    """The header JSON of a kb payload (name + version entries), nothing else.

    Lets the store / router answer "which versions are on disk?" without
    decoding a single term.
    """
    reader = _Reader(data)
    reader.expect_magic(_MAGIC_KB)
    header = json.loads(bytes(reader.frame()))
    if not isinstance(header, dict):
        raise WireFormatError("kb header is not a JSON object")
    return header


# -- store payload container (shared-memory replica bootstrap) ---------------------
#
# A store's bootstrap unit is the ``(base, log)`` byte pair of
# repro.io.store.BinaryKBStore.  To publish it through one
# ``multiprocessing.shared_memory`` segment -- the replica plane's
# zero-copy bootstrap channel -- the pair travels as a single framed
# container::
#
#     store := magic 'RPWS' u8 version | frame(base) | frame(log)
#              [ | frame(artefacts) ]
#
# Every frame is length-prefixed, so a segment the kernel rounded up to
# a page boundary decodes cleanly: trailing slack past the last frame
# is simply never read.  The optional third frame carries a warm
# replica handoff's :func:`encode_artefacts` payload; it is appended
# only when non-empty, and readers that predate it
# (:func:`unpack_store_payload`) skip it as trailing slack -- zero-filled
# slack after the log frame reads as a zero-length prefix, which
# :func:`unpack_store_payload_full` treats as "no artefacts".


def store_payload_size(base_len: int, log_len: int, artefacts_len: int = 0) -> int:
    """Exact byte size of :func:`pack_store_payload` for the given part sizes."""
    size = len(_MAGIC_STORE) + 1 + 8 + base_len + 8 + log_len
    if artefacts_len:
        size += 8 + artefacts_len
    return size


def pack_store_payload(base, log=b"", artefacts=b"") -> bytes:
    """One buffer carrying a store's ``(base, log[, artefacts])`` parts (framed)."""
    parts = [
        _MAGIC_STORE,
        bytes([WIRE_VERSION]),
        _pack_frame(bytes(base)),
        _pack_frame(bytes(log)),
    ]
    if artefacts:
        parts.append(_pack_frame(bytes(artefacts)))
    return b"".join(parts)


def pack_store_payload_into(buffer, base, log=b"", artefacts=b"") -> int:
    """Write the packed store container straight into ``buffer``.

    ``buffer`` is any writable bytes-like (typically a shared-memory
    segment's ``.buf``) of at least :func:`store_payload_size` bytes; the
    parts are copied in place with no intermediate concatenation.
    Returns the number of bytes written.
    """
    view = memoryview(buffer)
    pos = len(_MAGIC_STORE) + 1
    if store_payload_size(len(base), len(log), len(artefacts)) > len(view):
        raise WireFormatError(
            f"buffer of {len(view)} bytes cannot hold a "
            f"{store_payload_size(len(base), len(log), len(artefacts))}-byte "
            "store payload"
        )
    view[: len(_MAGIC_STORE)] = _MAGIC_STORE
    view[len(_MAGIC_STORE)] = WIRE_VERSION
    frames = (base, log, artefacts) if artefacts else (base, log)
    for part in frames:
        view[pos : pos + 8] = _U64.pack(len(part))
        pos += 8
        view[pos : pos + len(part)] = part
        pos += len(part)
    return pos


def unpack_store_payload(data) -> "Tuple[bytes, bytes]":
    """Inverse of :func:`pack_store_payload`: the ``(base, log)`` pair.

    For a ``memoryview`` input (e.g. ``SharedMemory.buf``) the returned
    parts are sub-views of it -- zero-copy; the lazy kb decode then reads
    terms and key arrays straight out of the underlying segment.
    Trailing bytes after the log frame are ignored (shared-memory
    segments may be larger than what was packed into them, and a warm
    handoff appends its artefacts frame there).
    """
    reader = _Reader(data)
    reader.expect_magic(_MAGIC_STORE)
    base = reader.frame()
    log = reader.frame()
    return base, log


def unpack_store_payload_full(data) -> "Tuple[bytes, bytes, Optional[bytes]]":
    """``(base, log, artefacts-or-None)`` of a packed store container.

    Like :func:`unpack_store_payload` but artefact-aware: when a third
    frame follows the log, its payload is returned (a sub-view for
    ``memoryview`` input).  A container packed without artefacts -- or a
    shared-memory segment whose zero-filled slack begins right after the
    log frame -- returns ``None``: slack shorter than a length prefix, or
    a zero length prefix, both mean "nothing was packed here".
    """
    reader = _Reader(data)
    reader.expect_magic(_MAGIC_STORE)
    base = reader.frame()
    log = reader.frame()
    artefacts = None
    if len(data) - reader._pos >= 8:
        length = reader.u64()
        if length:
            artefacts = reader.take(length)
    return base, log, artefacts


# -- derived-artefact frames (warm replica handoff) --------------------------------
#
# A serving process accumulates per-version derived artefacts: the raw
# class-graph betweenness map plus the semantic relative-cardinality and
# centrality caches, all memoised on each version's SchemaView.  When a
# replica joins a *running* tenant, shipping those caches next to the
# chain payload lets the joiner skip the cold first-request price (a full
# Brandes pass plus the semantic sweep).  The frame is canonical: entries
# are keyed by chain term ids and sorted by id, values travel as raw
# float64 bits, so equal caches encode to equal bytes regardless of the
# dict order the serving process accumulated them in -- and a decoded
# artefact is bit-identical to what a cold recompute would produce::
#
#     artefacts := magic 'RPWA' u8 version | frame(header JSON)
#                  | per version entry (header order, version ids sorted):
#                      u8 flags (1 betweenness, 2 rc, 4 centrality)
#                      per set flag: frame(term ids u64) | frame(values f64)
#
# Betweenness / centrality ids are one class term id per value; relative
# cardinality ids are (property, source, target) id triples, row-major.

_ARTEFACT_BETWEENNESS = 1
_ARTEFACT_RC = 2
_ARTEFACT_CENTRALITY = 4


def _artefact_id(dictionary: TermDictionary, term) -> int:
    tid = dictionary.id_of(term)
    if tid is None:
        raise WireFormatError(
            f"artefact term not interned in chain dictionary: {term!r}"
        )
    return tid


def _pack_scored_ids(rows: "List[Tuple]") -> bytes:
    """Sorted ``(id-or-id-tuple, value)`` rows as an ids frame + values frame."""
    ids = np.asarray(
        [row[0] for row in rows], dtype=np.uint64
    ) if rows else np.empty(0, dtype=np.uint64)
    values = np.asarray(
        [row[1] for row in rows], dtype=np.float64
    ) if rows else np.empty(0, dtype=np.float64)
    return _pack_frame(ids.tobytes(order="C")) + _pack_frame(values.tobytes())


def encode_artefacts(artefacts: Mapping, dictionary: TermDictionary) -> bytes:
    """Canonical payload of per-version derived-artefact caches.

    ``artefacts`` maps version id -> an entry with any of the keys
    ``betweenness`` (class IRI -> raw betweenness score), ``rc`` ((prop,
    source, target) IRI triple -> relative cardinality) and ``centrality``
    (class IRI -> semantic centrality).  Terms are encoded as ids of the
    chain ``dictionary`` and every array is sorted by id, so two processes
    holding equal caches produce equal bytes; float64 values round-trip
    bit-exactly.
    """
    entries = sorted(artefacts.items())
    header = {"versions": [version_id for version_id, _entry in entries]}
    parts = [
        _MAGIC_ARTEFACTS,
        bytes([WIRE_VERSION]),
        _pack_frame(json.dumps(header, sort_keys=True).encode("utf-8")),
    ]
    for _version_id, entry in entries:
        betweenness = entry.get("betweenness")
        rc = entry.get("rc")
        centrality = entry.get("centrality")
        flags = (
            (_ARTEFACT_BETWEENNESS if betweenness is not None else 0)
            | (_ARTEFACT_RC if rc is not None else 0)
            | (_ARTEFACT_CENTRALITY if centrality is not None else 0)
        )
        parts.append(bytes([flags]))
        if betweenness is not None:
            parts.append(
                _pack_scored_ids(
                    sorted(
                        (_artefact_id(dictionary, term), value)
                        for term, value in betweenness.items()
                    )
                )
            )
        if rc is not None:
            parts.append(
                _pack_scored_ids(
                    sorted(
                        (
                            (
                                _artefact_id(dictionary, prop),
                                _artefact_id(dictionary, source),
                                _artefact_id(dictionary, target),
                            ),
                            value,
                        )
                        for (prop, source, target), value in rc.items()
                    )
                )
            )
        if centrality is not None:
            parts.append(
                _pack_scored_ids(
                    sorted(
                        (_artefact_id(dictionary, term), value)
                        for term, value in centrality.items()
                    )
                )
            )
    return b"".join(parts)


def decode_artefacts(data, dictionary: TermDictionary) -> "Dict[str, Dict]":
    """Inverse of :func:`encode_artefacts` against the decoded chain's dictionary.

    Returns ``{version_id: {"betweenness": {...}, "rc": {...},
    "centrality": {...}}}`` with exactly the keys each entry was encoded
    with; term ids materialise through ``dictionary`` back to the same
    interned terms, values back to the same doubles.
    """
    reader = _Reader(data)
    reader.expect_magic(_MAGIC_ARTEFACTS)
    header = json.loads(bytes(reader.frame()))
    n_terms = len(dictionary)
    term = dictionary.term

    def _ids_and_values(width: int):
        ids = _frombuffer(reader.frame(), np.uint64)
        values = _frombuffer(reader.frame(), np.float64)
        if len(ids) != len(values) * width:
            raise WireFormatError(
                f"artefact frame: {len(values)} values but {len(ids)} ids "
                f"(want {width} per value)"
            )
        if len(ids) and int(ids.max(initial=0)) >= n_terms:
            raise WireFormatError(
                f"artefact frame references term id {int(ids.max())} "
                f"beyond dictionary size {n_terms}"
            )
        return ids.tolist(), values.tolist()

    artefacts: Dict[str, Dict] = {}
    for version_id in header.get("versions", []):
        flags = reader.u8()
        entry: Dict[str, Dict] = {}
        if flags & _ARTEFACT_BETWEENNESS:
            ids, values = _ids_and_values(1)
            entry["betweenness"] = dict(zip(map(term, ids), values))
        if flags & _ARTEFACT_RC:
            ids, values = _ids_and_values(3)
            entry["rc"] = {
                (term(ids[i * 3]), term(ids[i * 3 + 1]), term(ids[i * 3 + 2])): value
                for i, value in enumerate(values)
            }
        if flags & _ARTEFACT_CENTRALITY:
            ids, values = _ids_and_values(1)
            entry["centrality"] = dict(zip(map(term, ids), values))
        artefacts[version_id] = entry
    if not reader.at_end():
        raise WireFormatError("trailing bytes after the last artefact entry")
    return artefacts


# -- commit records (the append-only commit log) -----------------------------------


def encode_commit(version, dictionary: TermDictionary, terms_before: int) -> bytes:
    """One commit-log record: dictionary growth + the recorded delta.

    ``terms_before`` is the dictionary size already covered by the log's
    prior state; the record carries the term ids ``[terms_before,
    len(dictionary))`` so a replayer's dictionary grows to exactly the
    encoder's.  O(delta + growth) -- the snapshot is never touched.
    """
    delta = version.delta_from_parent()
    if delta is None:
        raise WireFormatError(
            f"version {version.version_id!r} has no recorded commit delta"
        )
    terms_after = len(dictionary)
    if not 0 <= terms_before <= terms_after:
        raise WireFormatError(
            f"terms_before {terms_before} outside dictionary size {terms_after}"
        )
    header = {
        "version_id": version.version_id,
        "metadata": dict(version.metadata),
        "terms_before": terms_before,
        "terms_after": terms_after,
    }
    return b"".join(
        (
            _MAGIC_COMMIT,
            bytes([WIRE_VERSION]),
            _pack_frame(json.dumps(header, sort_keys=True).encode("utf-8")),
            _pack_frame(_pack_term_range(dictionary, terms_before, terms_after)),
            _pack_frame(
                _pack_keys(_keys_of(delta.added, dictionary), terms_after)
            ),
            _pack_frame(
                _pack_keys(_keys_of(delta.deleted, dictionary), terms_after)
            ),
        )
    )


def _decode_commit(reader: _Reader, dictionary: TermDictionary):
    reader.expect_magic(_MAGIC_COMMIT)
    header = json.loads(bytes(reader.frame()))
    terms_before = header.get("terms_before")
    terms_after = header.get("terms_after")
    if terms_before != len(dictionary):
        raise WireFormatError(
            f"commit record expects {terms_before} prior terms, "
            f"dictionary has {len(dictionary)} (log out of sync)"
        )
    grown = _unpack_term_range(_Reader(reader.frame()), dictionary, terms_before)
    if grown != terms_after:
        raise WireFormatError(
            f"commit record term growth ends at {grown}, header says {terms_after}"
        )
    materialize = dictionary.materialize
    added = [
        materialize(key) for key in _unpack_keys(_Reader(reader.frame()), grown)
    ]
    deleted = [
        materialize(key) for key in _unpack_keys(_Reader(reader.frame()), grown)
    ]
    return header["version_id"], header.get("metadata", {}), added, deleted


def decode_commit(data, dictionary: TermDictionary):
    """Inverse of :func:`encode_commit` against the replayer's dictionary.

    Appends the record's dictionary growth to ``dictionary`` and returns
    ``(version_id, metadata, added_triples, deleted_triples)``.
    """
    reader = _Reader(data)
    record = _decode_commit(reader, dictionary)
    if not reader.at_end():
        raise WireFormatError("trailing bytes after commit record")
    return record


def decode_commit_log(data, dictionary: TermDictionary):
    """Replay a concatenation of commit records (the on-disk commit log).

    Yields ``(version_id, metadata, added_triples, deleted_triples)`` per
    record, in order, growing ``dictionary`` as it goes.  A truncated or
    corrupted record raises :class:`WireFormatError` mid-iteration, after
    all prior intact records were yielded -- callers decide whether a torn
    tail is fatal.
    """
    reader = _Reader(data)
    while not reader.at_end():
        yield _decode_commit(reader, dictionary)


def iter_commit_headers(data):
    """The header JSON of every record in a commit log, skipping payloads."""
    for header, _start, _end in iter_commit_spans(data):
        yield header


def iter_commit_spans(data):
    """``(header, start, end)`` byte span of every record in a commit log.

    Header-only log sizing: payload frames are skipped, not decoded, so a
    caller can locate any record's boundaries -- which is what lets the
    store's chain-aware recovery truncate a log at the exact record where
    it stops chaining onto the base, and lets threshold checks know how
    many bytes each record costs, without touching a term table.
    """
    reader = _Reader(data)
    while not reader.at_end():
        start = reader._pos
        reader.expect_magic(_MAGIC_COMMIT)
        header = json.loads(bytes(reader.frame()))
        reader.frame()  # term growth
        reader.frame()  # added keys
        reader.frame()  # deleted keys
        yield header, start, reader._pos


def scan_commit_log(data) -> "Tuple[int, int]":
    """``(intact record count, intact end offset)`` of a commit log buffer.

    A frame-level walk (no term or key decoding): it stops at the first
    record that is truncated or fails the magic check, which is how the
    store's crash recovery finds the usable prefix of a log whose last
    append was torn by a crash between ``write`` and ``fsync``.
    """
    reader = _Reader(data)
    records = 0
    intact_end = 0
    while not reader.at_end():
        try:
            reader.expect_magic(_MAGIC_COMMIT)
            reader.frame()  # header JSON
            reader.frame()  # term growth
            reader.frame()  # added keys
            reader.frame()  # deleted keys
        except WireFormatError:
            break
        records += 1
        intact_end = reader._pos
    return records, intact_end


def dictionaries_identical(a: TermDictionary, b: TermDictionary) -> bool:
    """True when two dictionaries assign identical ids to identical terms."""
    if len(a) != len(b):
        return False
    return all(a.term(tid) == b.term(tid) for tid in range(len(a)))
