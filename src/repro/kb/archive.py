"""Archiving policies for version chains.

The paper motivates deltas with, among others, "the need for accessing
previous versions of a dataset to support historical or cross-snapshot
queries" and cites the archiving-policy line of work (Stefanidis et al.,
ER 2014).  Keeping every snapshot of a busy knowledge base is wasteful;
an :class:`ArchivingPolicy` decides which versions an archive retains.

Provided policies:

``KeepAll``
    The identity policy (baseline).
``KeepLastN(n)``
    A sliding window of the ``n`` most recent versions.
``ChangeThreshold(min_changes)``
    Walk the chain oldest-to-newest, keeping a version only when its
    low-level delta from the *previously kept* version reaches
    ``min_changes`` -- quiet periods collapse, bursts are preserved.
``ExponentialThinning(base)``
    Recent history at full resolution, older history exponentially
    sparser: keeps versions at offsets 0, 1, base, base^2, ... from the
    latest.

Every policy always retains the first and the latest version, so the
end-to-end delta of the archive equals that of the original chain (tested
as an invariant).
"""

from __future__ import annotations

import abc
from typing import List, Set

from repro.kb.errors import VersionError
from repro.kb.graph import Graph
from repro.kb.version import VersionedKnowledgeBase


def _delta_size(old: Graph, new: Graph) -> int:
    """``|delta+| + |delta-|`` without depending on the deltas layer.

    (The kb package sits below :mod:`repro.deltas`; importing it here would
    be circular.)
    """
    return len(new.difference(old)) + len(old.difference(new))


class ArchivingPolicy(abc.ABC):
    """Decides which version ids of a chain an archive keeps."""

    @abc.abstractmethod
    def select(self, kb: VersionedKnowledgeBase) -> List[str]:
        """The version ids to keep, in chain order.

        Implementations may assume a non-empty chain and must always
        include the first and the latest version id.
        """

    def apply(
        self, kb: VersionedKnowledgeBase, name: str | None = None
    ) -> VersionedKnowledgeBase:
        """A new, thinner knowledge base containing only the kept versions.

        ``name`` defaults to ``"{kb.name}-archive"``; pass ``name=kb.name``
        to keep the original identity -- what ``repro compact-store`` does
        when it thins a store in place, so the rolled-up base still
        answers to the same KB name.
        """
        if len(kb) == 0:
            raise VersionError("cannot archive an empty version chain")
        keep = self.select(kb)
        keep_set = set(keep)
        required = {kb.first().version_id, kb.latest().version_id}
        if not required <= keep_set:
            raise VersionError(
                f"{type(self).__name__} dropped a mandatory endpoint "
                f"(kept {sorted(keep_set)}, required {sorted(required)})"
            )
        archive = VersionedKnowledgeBase(name if name is not None else f"{kb.name}-archive")
        for version in kb:
            if version.version_id in keep_set:
                archive.commit(
                    version.graph,
                    version_id=version.version_id,
                    metadata=dict(version.metadata),
                )
        return archive


class KeepAll(ArchivingPolicy):
    """Keep every version (the baseline)."""

    def select(self, kb: VersionedKnowledgeBase) -> List[str]:
        return kb.version_ids()


class KeepLastN(ArchivingPolicy):
    """Keep the first version plus the ``n`` most recent ones."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self._n = n

    def select(self, kb: VersionedKnowledgeBase) -> List[str]:
        ids = kb.version_ids()
        kept = ids[-self._n :]
        if ids[0] not in kept:
            kept = [ids[0], *kept]
        return kept


class ChangeThreshold(ArchivingPolicy):
    """Keep a version only when enough changed since the last kept one."""

    def __init__(self, min_changes: int) -> None:
        if min_changes < 0:
            raise ValueError(f"min_changes must be >= 0, got {min_changes}")
        self._min_changes = min_changes

    def select(self, kb: VersionedKnowledgeBase) -> List[str]:
        versions = list(kb)
        kept = [versions[0].version_id]
        last_kept_graph = versions[0].graph
        for version in versions[1:-1]:
            if _delta_size(last_kept_graph, version.graph) >= self._min_changes:
                kept.append(version.version_id)
                last_kept_graph = version.graph
        if len(versions) > 1:
            kept.append(versions[-1].version_id)
        return kept


class ExponentialThinning(ArchivingPolicy):
    """Full resolution recently, exponentially sparser into the past."""

    def __init__(self, base: int = 2) -> None:
        if base < 2:
            raise ValueError(f"base must be >= 2, got {base}")
        self._base = base

    def select(self, kb: VersionedKnowledgeBase) -> List[str]:
        ids = kb.version_ids()
        n = len(ids)
        offsets: Set[int] = {0, n - 1}  # latest and first
        offset = 1
        while offset < n:
            offsets.add(offset)
            offset *= self._base
        # Offsets are measured backwards from the latest version.
        kept_indices = sorted(n - 1 - off for off in offsets if 0 <= off < n)
        return [ids[i] for i in kept_indices]


def policy_from_spec(spec: str) -> ArchivingPolicy:
    """Parse a CLI retention spec into a policy.

    Accepted forms (the ``repro compact-store --retain`` grammar)::

        all            -> KeepAll()
        last:N         -> KeepLastN(N)
        threshold:C    -> ChangeThreshold(C)
        thin           -> ExponentialThinning()      (base 2)
        thin:B         -> ExponentialThinning(B)
    """
    kind, _, arg = spec.partition(":")
    try:
        if kind == "all" and not arg:
            return KeepAll()
        if kind == "last":
            return KeepLastN(int(arg))
        if kind == "threshold":
            return ChangeThreshold(int(arg))
        if kind == "thin":
            return ExponentialThinning(int(arg) if arg else 2)
    except ValueError as exc:
        raise ValueError(f"bad retention spec {spec!r}: {exc}") from None
    raise ValueError(
        f"bad retention spec {spec!r} "
        "(expected all, last:N, threshold:C, thin or thin:B)"
    )
