"""RDF term model: IRIs, literals and blank nodes.

Terms are immutable, hashable and totally ordered (IRIs < blank nodes <
literals, then lexicographic), which gives graphs, deltas and test output a
stable canonical order.  The model is deliberately minimal -- exactly what the
evolution-measure pipeline needs -- but faithful: literals carry an optional
datatype or language tag, and the N-Triples serialisation round-trips.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Union

from repro.kb.errors import TermError

# Sort keys for the total order over term kinds.
_KIND_IRI = 0
_KIND_BNODE = 1
_KIND_LITERAL = 2

# Characters an IRI may not contain in N-Triples: one compiled-regex search
# instead of per-character Python scans -- IRIs are constructed in bulk by
# the N-Triples codec and validation used to dominate parse time.
_IRI_ILLEGAL_RE = re.compile(r'[\x00-\x20<>"{}|^`\\]')


@dataclass(frozen=True, order=False)
class IRI:
    """An IRI reference, e.g. ``IRI("http://example.org/Person")``.

    >>> IRI("http://example.org/a").n3()
    '<http://example.org/a>'
    """

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise TermError("IRI value must be a non-empty string")
        if _IRI_ILLEGAL_RE.search(self.value) is not None:
            raise TermError(f"IRI contains characters illegal in N-Triples: {self.value!r}")
        # IRIs are hashed billions of times by the graph indexes and the
        # centrality algorithms; caching beats the generated dataclass hash.
        object.__setattr__(self, "_cached_hash", hash(self.value))

    def __hash__(self) -> int:
        return self._cached_hash  # type: ignore[attr-defined]

    @property
    def local_name(self) -> str:
        """Best-effort local name: the segment after the last ``#`` or ``/``."""
        for sep in ("#", "/"):
            if sep in self.value:
                tail = self.value.rsplit(sep, 1)[1]
                if tail:
                    return tail
        return self.value

    def n3(self) -> str:
        """N-Triples serialisation."""
        return f"<{self.value}>"

    def _sort_key(self) -> tuple:
        return (_KIND_IRI, self.value)

    def __lt__(self, other: "Term") -> bool:
        return _term_lt(self, other)

    def __repr__(self) -> str:
        return f"IRI({self.value!r})"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=False)
class BNode:
    """A blank node with an explicit label, e.g. ``BNode("b0")``."""

    label: str

    def __post_init__(self) -> None:
        if not self.label:
            raise TermError("blank node label must be non-empty")
        if not all(c.isalnum() or c in "_-" for c in self.label):
            raise TermError(f"blank node label has illegal characters: {self.label!r}")

    def n3(self) -> str:
        """N-Triples serialisation."""
        return f"_:{self.label}"

    def _sort_key(self) -> tuple:
        return (_KIND_BNODE, self.label)

    def __lt__(self, other: "Term") -> bool:
        return _term_lt(self, other)

    def __repr__(self) -> str:
        return f"BNode({self.label!r})"

    def __str__(self) -> str:
        return f"_:{self.label}"


@dataclass(frozen=True, order=False)
class Literal:
    """An RDF literal with optional datatype IRI or language tag.

    A literal may carry a datatype *or* a language tag, never both
    (per RDF 1.1, language-tagged strings have the fixed datatype
    ``rdf:langString``, which we leave implicit).

    >>> Literal("42", datatype=IRI("http://www.w3.org/2001/XMLSchema#integer")).n3()
    '"42"^^<http://www.w3.org/2001/XMLSchema#integer>'
    >>> Literal("chat", language="fr").n3()
    '"chat"@fr'
    """

    lexical: str
    datatype: IRI | None = field(default=None)
    language: str | None = field(default=None)

    def __post_init__(self) -> None:
        if not isinstance(self.lexical, str):
            raise TermError(f"literal lexical form must be str, got {type(self.lexical).__name__}")
        if self.datatype is not None and self.language is not None:
            raise TermError("a literal cannot have both a datatype and a language tag")
        if self.language is not None and not self.language:
            raise TermError("language tag must be non-empty when given")

    def n3(self) -> str:
        """N-Triples serialisation with escaping."""
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if self.language is not None:
            return f'"{escaped}"@{self.language}'
        if self.datatype is not None:
            return f'"{escaped}"^^{self.datatype.n3()}'
        return f'"{escaped}"'

    def _sort_key(self) -> tuple:
        return (
            _KIND_LITERAL,
            self.lexical,
            self.datatype.value if self.datatype else "",
            self.language or "",
        )

    def __lt__(self, other: "Term") -> bool:
        return _term_lt(self, other)

    def __repr__(self) -> str:
        extras = []
        if self.datatype:
            extras.append(f"datatype={self.datatype!r}")
        if self.language:
            extras.append(f"language={self.language!r}")
        suffix = (", " + ", ".join(extras)) if extras else ""
        return f"Literal({self.lexical!r}{suffix})"

    def __str__(self) -> str:
        return self.lexical


Term = Union[IRI, BNode, Literal]
"""Union of the three RDF term kinds."""


def _term_lt(left: Term, right: object) -> bool:
    if not isinstance(right, (IRI, BNode, Literal)):
        return NotImplemented  # type: ignore[return-value]
    return left._sort_key() < right._sort_key()


def is_resource(term: Term) -> bool:
    """True for terms that may appear in subject position (IRI or BNode)."""
    return isinstance(term, (IRI, BNode))
