"""Namespace helpers and the standard vocabularies the substrate understands.

``Namespace`` builds :class:`~repro.kb.terms.IRI` terms by attribute or item
access:

>>> EX = Namespace("http://example.org/")
>>> EX.Person
IRI('http://example.org/Person')
>>> EX["has-part"]
IRI('http://example.org/has-part')
"""

from __future__ import annotations

from repro.kb.terms import IRI


class Namespace:
    """A base IRI from which term IRIs are minted."""

    def __init__(self, base: str) -> None:
        if not base:
            raise ValueError("namespace base must be non-empty")
        self._base = base

    @property
    def base(self) -> str:
        """The base IRI string."""
        return self._base

    def term(self, name: str) -> IRI:
        """Mint the IRI ``base + name``."""
        return IRI(self._base + name)

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.term(name)

    def __getitem__(self, name: str) -> IRI:
        return self.term(name)

    def __contains__(self, iri: IRI) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self._base)

    def __repr__(self) -> str:
        return f"Namespace({self._base!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
EX = Namespace("http://example.org/")

# Frequently used vocabulary terms, named once so call sites read naturally.
RDF_TYPE = RDF.type
RDFS_SUBCLASSOF = RDFS.subClassOf
RDFS_SUBPROPERTYOF = RDFS.subPropertyOf
RDFS_DOMAIN = RDFS.domain
RDFS_RANGE = RDFS.range
RDFS_LABEL = RDFS.label
RDFS_COMMENT = RDFS.comment
RDFS_CLASS = RDFS.Class
RDF_PROPERTY = RDF.Property
OWL_CLASS = OWL.Class
OWL_OBJECT_PROPERTY = OWL.ObjectProperty
XSD_STRING = XSD.string
XSD_INTEGER = XSD.integer
XSD_DOUBLE = XSD.double
XSD_BOOLEAN = XSD.boolean
