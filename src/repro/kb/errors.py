"""Exception hierarchy for the knowledge-base substrate.

All substrate errors derive from :class:`KnowledgeBaseError` so callers can
catch one type at the API boundary while tests assert on the precise subtype.
"""

from __future__ import annotations


class KnowledgeBaseError(Exception):
    """Base class for every error raised by :mod:`repro.kb`."""


class TermError(KnowledgeBaseError):
    """An RDF term was malformed (empty IRI, bad literal, ...)."""


class ParseError(KnowledgeBaseError):
    """An N-Triples document could not be parsed.

    Carries the 1-based line number of the offending line when known.
    """

    def __init__(self, message: str, line_no: int | None = None) -> None:
        self.line_no = line_no
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


class VersionError(KnowledgeBaseError):
    """A version chain was used inconsistently (unknown id, empty chain, ...)."""


class WireFormatError(KnowledgeBaseError):
    """A binary wire payload was malformed (bad magic, truncated frame, ...)."""


class SchemaError(KnowledgeBaseError):
    """A schema-level lookup failed (unknown class or property)."""
