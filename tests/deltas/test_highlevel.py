"""Unit and property tests for high-level change detection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deltas.highlevel import ChangeKind, detect_highlevel
from repro.deltas.lowlevel import LowLevelDelta
from repro.kb.graph import Graph
from repro.kb.namespaces import (
    EX,
    RDF_PROPERTY,
    RDF_TYPE,
    RDFS_CLASS,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
)
from repro.kb.schema import SchemaView
from repro.kb.terms import Literal
from repro.kb.triples import Triple


def _detect(old: Graph, new: Graph):
    delta = LowLevelDelta.compute(old, new)
    return detect_highlevel(delta, SchemaView(old), SchemaView(new))


def _base_graph() -> Graph:
    g = Graph()
    for cls in (EX.Person, EX.Student, EX.Course):
        g.add(Triple(cls, RDF_TYPE, RDFS_CLASS))
    g.add(Triple(EX.Student, RDFS_SUBCLASSOF, EX.Person))
    g.add(Triple(EX.enrolledIn, RDF_TYPE, RDF_PROPERTY))
    g.add(Triple(EX.enrolledIn, RDFS_DOMAIN, EX.Student))
    g.add(Triple(EX.enrolledIn, RDFS_RANGE, EX.Course))
    g.add(Triple(EX.ada, RDF_TYPE, EX.Student))
    g.add(Triple(EX.cs1, RDF_TYPE, EX.Course))
    g.add(Triple(EX.ada, EX.enrolledIn, EX.cs1))
    g.add(Triple(EX.ada, EX.gpa, Literal("3.9")))
    return g


class TestClassPatterns:
    def test_add_class(self):
        old = _base_graph()
        new = old.copy()
        new.add(Triple(EX.Professor, RDF_TYPE, RDFS_CLASS))
        new.add(Triple(EX.Professor, RDFS_SUBCLASSOF, EX.Person))
        hl = _detect(old, new)
        adds = [c for c in hl.changes if c.kind is ChangeKind.ADD_CLASS]
        assert len(adds) == 1 and adds[0].subject == EX.Professor
        # The subclass link is part of the class addition, not a separate change.
        assert hl.count(ChangeKind.ADD_SUBCLASS) == 0

    def test_delete_class(self):
        old = _base_graph()
        new = old.copy()
        new.remove(Triple(EX.Course, RDF_TYPE, RDFS_CLASS))
        new.remove(Triple(EX.enrolledIn, RDFS_RANGE, EX.Course))
        new.remove(Triple(EX.cs1, RDF_TYPE, EX.Course))
        new.remove(Triple(EX.ada, EX.enrolledIn, EX.cs1))
        hl = _detect(old, new)
        assert hl.count(ChangeKind.DELETE_CLASS) == 1
        # The instance typing into the vanished class is its own record.
        assert hl.count(ChangeKind.DELETE_INSTANCE) == 1

    def test_move_class(self):
        old = _base_graph()
        new = old.copy()
        new.add(Triple(EX.Agent, RDF_TYPE, RDFS_CLASS))
        old.add(Triple(EX.Agent, RDF_TYPE, RDFS_CLASS))
        new.remove(Triple(EX.Student, RDFS_SUBCLASSOF, EX.Person))
        new.add(Triple(EX.Student, RDFS_SUBCLASSOF, EX.Agent))
        hl = _detect(old, new)
        moves = [c for c in hl.changes if c.kind is ChangeKind.MOVE_CLASS]
        assert len(moves) == 1
        assert moves[0].subject == EX.Student
        assert moves[0].detail == (EX.Person, EX.Agent)  # old -> new superclass

    def test_add_and_delete_subclass_links(self):
        old = _base_graph()
        new = old.copy()
        new.add(Triple(EX.Course, RDFS_SUBCLASSOF, EX.Person))  # nonsense but legal
        hl = _detect(old, new)
        assert hl.count(ChangeKind.ADD_SUBCLASS) == 1

        hl_back = _detect(new, old)
        assert hl_back.count(ChangeKind.DELETE_SUBCLASS) == 1


class TestPropertyPatterns:
    def test_add_property(self):
        old = _base_graph()
        new = old.copy()
        new.add(Triple(EX.teaches, RDF_TYPE, RDF_PROPERTY))
        new.add(Triple(EX.teaches, RDFS_DOMAIN, EX.Person))
        hl = _detect(old, new)
        adds = [c for c in hl.changes if c.kind is ChangeKind.ADD_PROPERTY]
        assert [c.subject for c in adds] == [EX.teaches]

    def test_change_domain(self):
        old = _base_graph()
        new = old.copy()
        new.remove(Triple(EX.enrolledIn, RDFS_DOMAIN, EX.Student))
        new.add(Triple(EX.enrolledIn, RDFS_DOMAIN, EX.Person))
        hl = _detect(old, new)
        changes = [c for c in hl.changes if c.kind is ChangeKind.CHANGE_DOMAIN]
        assert len(changes) == 1
        assert changes[0].detail == (EX.Student, EX.Person)

    def test_change_range(self):
        old = _base_graph()
        new = old.copy()
        new.add(Triple(EX.Seminar, RDF_TYPE, RDFS_CLASS))
        old.add(Triple(EX.Seminar, RDF_TYPE, RDFS_CLASS))
        new.remove(Triple(EX.enrolledIn, RDFS_RANGE, EX.Course))
        new.add(Triple(EX.enrolledIn, RDFS_RANGE, EX.Seminar))
        hl = _detect(old, new)
        assert hl.count(ChangeKind.CHANGE_RANGE) == 1


class TestInstancePatterns:
    def test_add_instance(self):
        old = _base_graph()
        new = old.copy()
        new.add(Triple(EX.bob, RDF_TYPE, EX.Student))
        hl = _detect(old, new)
        adds = [c for c in hl.changes if c.kind is ChangeKind.ADD_INSTANCE]
        assert len(adds) == 1 and adds[0].subject == EX.bob
        assert adds[0].detail == (EX.Student,)

    def test_retype_instance(self):
        old = _base_graph()
        new = old.copy()
        new.remove(Triple(EX.ada, RDF_TYPE, EX.Student))
        new.add(Triple(EX.ada, RDF_TYPE, EX.Person))
        hl = _detect(old, new)
        retypes = [c for c in hl.changes if c.kind is ChangeKind.RETYPE_INSTANCE]
        assert len(retypes) == 1
        assert retypes[0].detail == (EX.Student, EX.Person)

    def test_add_and_delete_link(self):
        old = _base_graph()
        new = old.copy()
        new.add(Triple(EX.bob, RDF_TYPE, EX.Student))
        new.add(Triple(EX.bob, EX.enrolledIn, EX.cs1))
        hl = _detect(old, new)
        links = [c for c in hl.changes if c.kind is ChangeKind.ADD_LINK]
        assert len(links) == 1 and links[0].subject == EX.bob

    def test_change_attribute(self):
        old = _base_graph()
        new = old.copy()
        new.remove(Triple(EX.ada, EX.gpa, Literal("3.9")))
        new.add(Triple(EX.ada, EX.gpa, Literal("4.0")))
        hl = _detect(old, new)
        changes = [c for c in hl.changes if c.kind is ChangeKind.CHANGE_ATTRIBUTE]
        assert len(changes) == 1
        assert changes[0].detail == (EX.gpa, Literal("3.9"), Literal("4.0"))

    def test_add_attribute(self):
        old = _base_graph()
        new = old.copy()
        new.add(Triple(EX.ada, EX.email, Literal("ada@x.org")))
        hl = _detect(old, new)
        assert hl.count(ChangeKind.ADD_ATTRIBUTE) == 1


class TestDeltaProperties:
    def test_empty_delta(self):
        g = _base_graph()
        hl = _detect(g, g.copy())
        assert hl.size == 0
        assert hl.compression_ratio == 1.0

    def test_describe_is_readable(self):
        old = _base_graph()
        new = old.copy()
        new.add(Triple(EX.bob, RDF_TYPE, EX.Student))
        hl = _detect(old, new)
        descriptions = [c.describe() for c in hl.changes]
        assert any("add_instance(bob" in d for d in descriptions)

    def test_schema_vs_data_split(self):
        old = _base_graph()
        new = old.copy()
        new.add(Triple(EX.Professor, RDF_TYPE, RDFS_CLASS))
        new.add(Triple(EX.bob, RDF_TYPE, EX.Student))
        hl = _detect(old, new)
        assert {c.kind for c in hl.schema_changes()} == {ChangeKind.ADD_CLASS}
        assert {c.kind for c in hl.data_changes()} == {ChangeKind.ADD_INSTANCE}

    def test_changes_about(self):
        old = _base_graph()
        new = old.copy()
        new.add(Triple(EX.bob, RDF_TYPE, EX.Student))
        hl = _detect(old, new)
        assert len(hl.changes_about(EX.bob)) == 1
        assert len(hl.changes_about(EX.Student)) == 1  # via detail

    def test_by_kind_partitions_changes(self):
        old = _base_graph()
        new = old.copy()
        new.add(Triple(EX.bob, RDF_TYPE, EX.Student))
        new.add(Triple(EX.ada, EX.email, Literal("a@x")))
        hl = _detect(old, new)
        grouped = hl.by_kind()
        assert sum(len(v) for v in grouped.values()) == hl.size


# -- property test: high-level explains low-level exactly -------------------------

_class_ids = st.integers(0, 3)
_inst_ids = st.integers(0, 5)


@st.composite
def _evolution(draw):
    """A random (old, new) graph pair over a small schema vocabulary."""
    old = Graph()
    new = Graph()
    for graph in (old, new):
        for c in range(4):
            if draw(st.booleans()):
                graph.add(Triple(EX[f"C{c}"], RDF_TYPE, RDFS_CLASS))
        for c in range(3):
            if draw(st.booleans()):
                graph.add(Triple(EX[f"C{c}"], RDFS_SUBCLASSOF, EX[f"C{c + 1}"]))
        for i in range(4):
            if draw(st.booleans()):
                graph.add(Triple(EX[f"i{i}"], RDF_TYPE, EX[f"C{draw(_class_ids)}"]))
            if draw(st.booleans()):
                graph.add(Triple(EX[f"i{i}"], EX.links, EX[f"i{draw(_inst_ids)}"]))
            if draw(st.booleans()):
                graph.add(Triple(EX[f"i{i}"], EX.score, Literal(str(draw(st.integers(0, 3))))))
    return old, new


@settings(max_examples=80, deadline=None)
@given(pair=_evolution())
def test_highlevel_consumes_lowlevel_exactly(pair):
    """Every low-level triple is explained by at least one high-level change,
    and no high-level change invents triples outside the delta."""
    old, new = pair
    delta = LowLevelDelta.compute(old, new)
    hl = detect_highlevel(delta, SchemaView(old), SchemaView(new))

    all_low = delta.added | delta.deleted
    consumed = set()
    for change in hl.changes:
        consumed |= change.consumed
        assert change.consumed <= all_low
    assert consumed == all_low


@settings(max_examples=50, deadline=None)
@given(pair=_evolution())
def test_compression_ratio_positive_and_finite(pair):
    """The ratio is positive; it can dip below 1 only in corner cases where a
    single triple witnesses several schema facts (e.g. one subClassOf link
    between two brand-new classes)."""
    old, new = pair
    hl = _detect(old, new)
    assert hl.compression_ratio > 0.0
