"""Unit tests for the change log over version chains."""

import pytest

from repro.deltas.changelog import ChangeLog
from repro.kb.errors import VersionError
from repro.kb.graph import Graph
from repro.kb.namespaces import EX
from repro.kb.triples import Triple
from repro.kb.version import VersionedKnowledgeBase


def _t(i: int) -> Triple:
    return Triple(EX[f"s{i}"], EX.p, EX[f"o{i}"])


@pytest.fixture
def chain() -> VersionedKnowledgeBase:
    kb = VersionedKnowledgeBase("test")
    kb.commit(Graph([_t(1), _t(2)]), version_id="v1")
    kb.commit(Graph([_t(2), _t(3)]), version_id="v2")
    kb.commit(Graph([_t(3), _t(4), _t(5)]), version_id="v3")
    return kb


class TestChangeLog:
    def test_lowlevel_between_adjacent(self, chain):
        log = ChangeLog(chain)
        delta = log.lowlevel("v1", "v2")
        assert delta.added == {_t(3)} and delta.deleted == {_t(1)}

    def test_lowlevel_between_distant(self, chain):
        log = ChangeLog(chain)
        delta = log.lowlevel("v1", "v3")
        assert delta.added == {_t(3), _t(4), _t(5)}
        assert delta.deleted == {_t(1), _t(2)}

    def test_caching_returns_same_object(self, chain):
        log = ChangeLog(chain)
        assert log.lowlevel("v1", "v2") is log.lowlevel("v1", "v2")
        assert log.highlevel("v1", "v2") is log.highlevel("v1", "v2")

    def test_step_sizes(self, chain):
        log = ChangeLog(chain)
        assert log.step_sizes() == [2, 3]

    def test_total_change_counts_sums_steps(self, chain):
        log = ChangeLog(chain)
        totals = log.total_change_counts()
        # s3/o3 appear in both steps (added then kept -> only step 1; t3 added in
        # step v1->v2 and t3 kept in v3, so one change), s1 deleted once.
        assert totals[EX.s1] == 1
        assert totals[EX.s4] == 1
        assert totals[EX.p] == 5  # every changed triple uses predicate p

    def test_end_to_end(self, chain):
        log = ChangeLog(chain)
        assert log.end_to_end() == log.lowlevel("v1", "v3")

    def test_end_to_end_requires_two_versions(self):
        kb = VersionedKnowledgeBase()
        kb.commit(Graph())
        with pytest.raises(VersionError):
            ChangeLog(kb).end_to_end()

    def test_unknown_version_raises(self, chain):
        log = ChangeLog(chain)
        with pytest.raises(VersionError):
            log.lowlevel("v1", "nope")

    def test_highlevel_on_chain(self, chain):
        log = ChangeLog(chain)
        hl = log.highlevel("v1", "v2")
        assert hl.source is log.lowlevel("v1", "v2")
        assert hl.size >= 1
