"""Unit and property tests for low-level deltas (Section II.a)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deltas.lowlevel import LowLevelDelta
from repro.kb.graph import Graph
from repro.kb.namespaces import EX
from repro.kb.triples import Triple


def _t(i: int, j: int = 0, k: int = 0) -> Triple:
    return Triple(EX[f"s{i}"], EX[f"p{j}"], EX[f"o{k}"])


class TestCompute:
    def test_added_and_deleted(self):
        old = Graph([_t(1), _t(2)])
        new = Graph([_t(2), _t(3)])
        delta = LowLevelDelta.compute(old, new)
        assert delta.added == {_t(3)}
        assert delta.deleted == {_t(1)}

    def test_identical_graphs_empty_delta(self):
        g = Graph([_t(1)])
        delta = LowLevelDelta.compute(g, g.copy())
        assert delta.is_empty()
        assert delta.size == 0

    def test_size_is_sum(self):
        delta = LowLevelDelta.from_changes(added=[_t(1), _t(2)], deleted=[_t(3)])
        assert delta.size == 3
        assert len(delta) == 3

    def test_overlapping_add_delete_rejected(self):
        with pytest.raises(ValueError):
            LowLevelDelta.from_changes(added=[_t(1)], deleted=[_t(1)])


class TestSectionIIQuantities:
    def test_change_count_for_term(self):
        # delta(n): number of changed triples mentioning n.
        delta = LowLevelDelta.from_changes(
            added=[Triple(EX.a, EX.p, EX.n), Triple(EX.n, EX.p, EX.b)],
            deleted=[Triple(EX.c, EX.p, EX.d)],
        )
        assert delta.change_count(EX.n) == 2
        assert delta.change_count(EX.c) == 1
        assert delta.change_count(EX.unrelated) == 0

    def test_change_count_triple_with_repeated_term_counts_once(self):
        delta = LowLevelDelta.from_changes(added=[Triple(EX.n, EX.n, EX.n)])
        assert delta.change_count(EX.n) == 1

    def test_changes_for_restriction(self):
        keep = Triple(EX.n, EX.p, EX.a)
        drop = Triple(EX.x, EX.p, EX.y)
        delta = LowLevelDelta.from_changes(added=[keep, drop])
        sub = delta.changes_for(EX.n)
        assert sub.added == {keep}
        assert sub.deleted == frozenset()

    def test_change_counts_bulk_matches_per_term(self):
        delta = LowLevelDelta.from_changes(
            added=[Triple(EX.a, EX.p, EX.b)],
            deleted=[Triple(EX.b, EX.p, EX.c), Triple(EX.a, EX.q, EX.c)],
        )
        counts = delta.change_counts()
        for term in (EX.a, EX.b, EX.c, EX.p, EX.q):
            assert counts.get(term, 0) == delta.change_count(term)


class TestReplay:
    def test_apply_produces_new_graph(self):
        old = Graph([_t(1)])
        delta = LowLevelDelta.from_changes(added=[_t(2)], deleted=[_t(1)])
        new = delta.apply(old)
        assert set(new) == {_t(2)}
        assert set(old) == {_t(1)}  # original untouched

    def test_invert_roundtrip(self):
        delta = LowLevelDelta.from_changes(added=[_t(1)], deleted=[_t(2)])
        assert delta.invert().invert() == delta

    def test_invert_swaps(self):
        delta = LowLevelDelta.from_changes(added=[_t(1)], deleted=[_t(2)])
        inv = delta.invert()
        assert inv.added == {_t(2)} and inv.deleted == {_t(1)}


# -- property tests: the paper's definitional invariants --------------------------

_triples = st.builds(
    _t, st.integers(0, 4), st.integers(0, 2), st.integers(0, 3)
)
_graphs = st.sets(_triples, max_size=25).map(Graph)


@settings(max_examples=100, deadline=None)
@given(old=_graphs, new=_graphs)
def test_apply_diff_reconstructs_target(old, new):
    """apply(V1, diff(V1, V2)) == V2 -- deltas are exact."""
    delta = LowLevelDelta.compute(old, new)
    assert delta.apply(old) == new


@settings(max_examples=100, deadline=None)
@given(old=_graphs, new=_graphs)
def test_size_equals_sum_of_parts(old, new):
    """|delta| = |delta+| + |delta-| (Section II.a)."""
    delta = LowLevelDelta.compute(old, new)
    assert delta.size == len(delta.added) + len(delta.deleted)


@settings(max_examples=100, deadline=None)
@given(old=_graphs, new=_graphs)
def test_inverse_delta_reverses_evolution(old, new):
    delta = LowLevelDelta.compute(old, new)
    assert delta.invert().apply(new) == old


@settings(max_examples=100, deadline=None)
@given(g1=_graphs, g2=_graphs, g3=_graphs)
def test_composition_equals_sequential_application(g1, g2, g3):
    d12 = LowLevelDelta.compute(g1, g2)
    d23 = LowLevelDelta.compute(g2, g3)
    assert d12.compose(d23).apply(g1) == g3


@settings(max_examples=60, deadline=None)
@given(old=_graphs, new=_graphs)
def test_change_count_consistent_with_restriction(old, new):
    delta = LowLevelDelta.compute(old, new)
    for term in (EX.s0, EX.p0, EX.o0):
        assert delta.change_count(term) == delta.changes_for(term).size
