"""Round-trip tests for on-disk formats."""

import json

import pytest

from repro.io import (
    load_feedback,
    load_graph,
    load_kb,
    load_users,
    package_to_dict,
    save_feedback,
    save_graph,
    save_kb,
    save_package,
    save_users,
)
from repro.kb.graph import Graph
from repro.kb.namespaces import EX, RDF_TYPE, RDFS_CLASS
from repro.kb.terms import Literal
from repro.kb.triples import Triple
from repro.kb.version import VersionedKnowledgeBase
from repro.measures.base import MeasureFamily, TargetKind
from repro.profiles.feedback import FeedbackEvent, FeedbackStore
from repro.profiles.user import InterestProfile, User
from repro.recommender.items import (
    RecommendationItem,
    RecommendationPackage,
    ScoredItem,
)


def _graph() -> Graph:
    return Graph(
        [
            Triple(EX.Person, RDF_TYPE, RDFS_CLASS),
            Triple(EX.ada, RDF_TYPE, EX.Person),
            Triple(EX.ada, EX.name, Literal('Ada "the first"')),
        ]
    )


class TestGraphRoundTrip:
    def test_roundtrip(self, tmp_path):
        path = save_graph(_graph(), tmp_path / "g.nt")
        assert load_graph(path) == _graph()

    def test_creates_parent_dirs(self, tmp_path):
        save_graph(_graph(), tmp_path / "deep/nested/g.nt")
        assert (tmp_path / "deep/nested/g.nt").exists()


class TestKbRoundTrip:
    def _kb(self) -> VersionedKnowledgeBase:
        kb = VersionedKnowledgeBase("demo")
        kb.commit(_graph(), version_id="v1", metadata={"author": "x"})
        g2 = _graph()
        g2.add(Triple(EX.bob, RDF_TYPE, EX.Person))
        kb.commit(g2, version_id="v2")
        return kb

    def test_roundtrip(self, tmp_path):
        save_kb(self._kb(), tmp_path / "kb")
        loaded = load_kb(tmp_path / "kb")
        original = self._kb()
        assert loaded.name == "demo"
        assert loaded.version_ids() == ["v1", "v2"]
        for a, b in zip(original, loaded):
            assert a.graph == b.graph
        assert loaded.version("v1").metadata == {"author": "x"}

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_kb(tmp_path)


class TestUsersRoundTrip:
    def test_roundtrip(self, tmp_path):
        users = [
            User(
                "u1",
                InterestProfile(
                    class_weights={EX.Person: 0.8},
                    family_weights={MeasureFamily.SEMANTIC: 0.5},
                ),
                name="Ada",
            ),
            User("u2"),
        ]
        save_users(users, tmp_path / "users.json")
        loaded = load_users(tmp_path / "users.json")
        assert [u.user_id for u in loaded] == ["u1", "u2"]
        assert loaded[0].profile.interest_in(EX.Person) == 0.8
        assert loaded[0].profile.family_preference(MeasureFamily.SEMANTIC) == 0.5
        assert loaded[0].name == "Ada"
        assert loaded[1].profile.is_empty()


class TestFeedbackRoundTrip:
    def test_roundtrip(self, tmp_path):
        store = FeedbackStore(
            [FeedbackEvent("u1", "m||http://x/a", 0.7), FeedbackEvent("u2", "k", 0.0)]
        )
        save_feedback(store, tmp_path / "fb.jsonl")
        loaded = load_feedback(tmp_path / "fb.jsonl")
        assert len(loaded) == 2
        assert loaded.rating("u1", "m||http://x/a") == 0.7

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "fb.jsonl"
        path.write_text('{"user_id": "u", "item_key": "k", "rating": 0.5}\n\n')
        assert len(load_feedback(path)) == 1


class TestPackageSerialisation:
    def _package(self) -> RecommendationPackage:
        item = RecommendationItem(
            measure_name="class_change_count",
            family=MeasureFamily.COUNT,
            target_kind=TargetKind.CLASS,
            target=EX.Person,
            evolution_score=0.9,
        )
        return RecommendationPackage(
            items=(ScoredItem(item, 0.45),),
            audience="u1",
            explanations={item.key: "because"},
            metadata={"context": "v1->v2"},
        )

    def test_to_dict(self):
        payload = package_to_dict(self._package())
        assert payload["audience"] == "u1"
        assert payload["items"][0]["rank"] == 1
        assert payload["items"][0]["target"] == EX.Person.value
        assert payload["items"][0]["explanation"] == "because"

    def test_save_is_valid_json(self, tmp_path):
        path = save_package(self._package(), tmp_path / "p.json")
        payload = json.loads(path.read_text())
        assert payload["metadata"]["context"] == "v1->v2"
