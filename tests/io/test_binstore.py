"""Store-format suite: the binary on-disk KB store round-trips bit-identically.

Save/load/commit-append must reproduce the exact interned state -- term
ids, recorded deltas, downstream measure results and recommendations --
including after ``compact()``; corrupted or truncated files must fail
loudly with :class:`WireFormatError`; and ``convert_kb`` must move a KB
between the ``.nt`` and binary layouts losslessly in both directions.
"""

import pytest

from repro.io import (
    BinaryKBStore,
    convert_kb,
    decode_store_payload,
    load_kb,
    save_kb,
)
from repro.io.store import BASE_FILE, LOG_FILE
from repro.io.storage import package_to_dict
from repro.kb import wire
from repro.kb.errors import WireFormatError
from repro.kb.graph import Graph
from repro.kb.namespaces import EX, RDF_TYPE, RDFS_CLASS
from repro.kb.terms import Literal
from repro.kb.triples import Triple
from repro.kb.version import VersionedKnowledgeBase
from repro.measures.base import EvolutionContext
from repro.measures.catalog import default_catalog
from repro.profiles.user import InterestProfile, User
from repro.recommender.engine import EngineConfig, RecommenderEngine
from repro.synthetic.world import generate_world


def _kb() -> VersionedKnowledgeBase:
    kb = VersionedKnowledgeBase("demo")
    kb.commit(
        Graph(
            [
                Triple(EX.Person, RDF_TYPE, RDFS_CLASS),
                Triple(EX.ada, RDF_TYPE, EX.Person),
                Triple(EX.ada, EX.name, Literal('Ada "the first"')),
            ]
        ),
        version_id="v1",
        metadata={"author": "x"},
    )
    kb.commit_changes(
        added=[Triple(EX.bob, RDF_TYPE, EX.Person)],
        deleted=[Triple(EX.ada, EX.name, Literal('Ada "the first"'))],
        version_id="v2",
    )
    kb.commit_changes(
        added=[Triple(EX.eve, RDF_TYPE, EX.Person), Triple(EX.eve, EX.name, Literal("Eve"))],
        version_id="v3",
        metadata={"note": "growth"},
    )
    return kb


def _assert_chains_identical(a: VersionedKnowledgeBase, b: VersionedKnowledgeBase):
    assert a.name == b.name
    assert a.version_ids() == b.version_ids()
    assert wire.dictionaries_identical(
        a.first().graph.dictionary, b.first().graph.dictionary
    )
    for va, vb in zip(a, b):
        assert va.metadata == vb.metadata
        assert va.graph == vb.graph
        da, db = va.delta_from_parent(), vb.delta_from_parent()
        if da is None:
            assert db is None
        else:
            assert set(da.added) == set(db.added)
            assert set(da.deleted) == set(db.deleted)


class TestSaveLoadRoundTrip:
    def test_bit_identical(self, tmp_path):
        kb = _kb()
        save_kb(kb, tmp_path / "store", format="binary")
        assert BinaryKBStore.is_store(tmp_path / "store")
        _assert_chains_identical(kb, load_kb(tmp_path / "store"))

    def test_lazy_load_materialises_root_and_head_pair_only(self, tmp_path):
        world = generate_world(seed=5, n_classes=25, n_versions=5, n_users=3)
        save_kb(world.kb, tmp_path / "store", format="binary")
        loaded = load_kb(tmp_path / "store")
        flags = [v.is_materialized for v in loaded]
        assert flags == [True, False, False, True, True]
        # Middle versions rematerialise transparently and identically.
        for original, replica in zip(world.kb, loaded):
            assert original.graph == replica.graph

    def test_eager_load(self, tmp_path):
        save_kb(_kb(), tmp_path / "store", format="binary")
        loaded = load_kb(tmp_path / "store", lazy=False)
        assert all(v.is_materialized for v in loaded)

    def test_compacted_chain_round_trips(self, tmp_path):
        kb = _kb()
        kb.compact()
        save_kb(kb, tmp_path / "store", format="binary")
        _assert_chains_identical(_kb(), load_kb(tmp_path / "store"))

    def test_downstream_results_bit_identical(self, tmp_path):
        world = generate_world(seed=7, n_classes=30, n_versions=3, n_users=4)
        save_kb(world.kb, tmp_path / "store", format="binary")
        replica = load_kb(tmp_path / "store")
        catalog = default_catalog()
        original = catalog.compute_all(
            EvolutionContext(list(world.kb)[-2], list(world.kb)[-1])
        )
        decoded = catalog.compute_all(
            EvolutionContext(list(replica)[-2], list(replica)[-1])
        )
        assert {name: result.scores for name, result in original.items()} == {
            name: result.scores for name, result in decoded.items()
        }
        user = world.users[0]
        config = EngineConfig(k=5, spread_depth=1)
        package_a = RecommenderEngine(world.kb, config=config).recommend(user)
        package_b = RecommenderEngine(replica, config=config).recommend(user)
        assert package_to_dict(package_a) == package_to_dict(package_b)

    def test_save_kb_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="unknown KB format"):
            save_kb(_kb(), tmp_path / "store", format="parquet")

    def test_load_kb_reports_both_layouts_in_error(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest.json or kb.rpw"):
            load_kb(tmp_path)


class TestCommitLogAppend:
    def test_sync_appends_without_rewriting_base(self, tmp_path):
        kb = _kb()
        store = BinaryKBStore.save(kb, tmp_path / "store")
        base_bytes = (tmp_path / "store" / BASE_FILE).read_bytes()
        kb.commit_changes(
            added=[Triple(EX.zoe, RDF_TYPE, EX.Person)], version_id="v4"
        )
        kb.commit_changes(
            deleted=[Triple(EX.zoe, RDF_TYPE, EX.Person)], version_id="v5"
        )
        assert store.sync(kb) == 2
        assert store.sync(kb) == 0  # idempotent
        assert (tmp_path / "store" / BASE_FILE).read_bytes() == base_bytes
        assert (tmp_path / "store" / LOG_FILE).stat().st_size > 0
        _assert_chains_identical(kb, load_kb(tmp_path / "store"))

    def test_append_preserves_new_terms(self, tmp_path):
        kb = _kb()
        store = BinaryKBStore.save(kb, tmp_path / "store")
        kb.commit_changes(
            added=[Triple(EX.fresh, EX.brand_new_prop, Literal("né", language="fr"))],
            version_id="v4",
        )
        store.sync(kb)
        _assert_chains_identical(kb, load_kb(tmp_path / "store"))

    def test_open_then_load_then_sync(self, tmp_path):
        BinaryKBStore.save(_kb(), tmp_path / "store")
        store = BinaryKBStore.open(tmp_path / "store")
        kb = store.load()
        kb.commit_changes(added=[Triple(EX.zoe, RDF_TYPE, EX.Person)], version_id="v4")
        assert store.sync(kb) == 1
        assert load_kb(tmp_path / "store").version_ids() == ["v1", "v2", "v3", "v4"]

    def test_sync_requires_cursor(self, tmp_path):
        BinaryKBStore.save(_kb(), tmp_path / "store")
        fresh_handle = BinaryKBStore.open(tmp_path / "store")
        with pytest.raises(WireFormatError, match="cursor"):
            fresh_handle.sync(_kb())

    def test_sync_rejects_non_prefix_chain(self, tmp_path):
        store = BinaryKBStore.save(_kb(), tmp_path / "store")
        other = VersionedKnowledgeBase("demo")
        other.commit(Graph(), version_id="different_root")
        with pytest.raises(WireFormatError, match="not a prefix"):
            store.sync(other)

    def test_describe_reads_headers_only(self, tmp_path):
        kb = _kb()
        store = BinaryKBStore.save(kb, tmp_path / "store")
        kb.commit_changes(added=[Triple(EX.zoe, RDF_TYPE, EX.Person)], version_id="v4")
        store.sync(kb)
        name, ids = BinaryKBStore.open(tmp_path / "store").describe()
        assert name == "demo"
        assert ids == ["v1", "v2", "v3", "v4"]

    def test_describe_tolerates_a_torn_log_tail(self, tmp_path):
        # The sharded serve path calls describe() on the raw bytes before
        # any load-time vetting: it must not refuse a store the load path
        # would recover.
        kb = _kb()
        store = BinaryKBStore.save(kb, tmp_path / "store")
        kb.commit_changes(added=[Triple(EX.zoe, RDF_TYPE, EX.Person)], version_id="v4")
        store.sync(kb)
        kb.commit_changes(added=[Triple(EX.max, RDF_TYPE, EX.Person)], version_id="v5")
        store.sync(kb)
        log = tmp_path / "store" / LOG_FILE
        log.write_bytes(log.read_bytes()[:-7])  # tear the v5 record
        _, ids = BinaryKBStore.open(tmp_path / "store").describe()
        assert ids == ["v1", "v2", "v3", "v4"]

    def test_describe_ignores_a_stale_log(self, tmp_path):
        kb = _kb()
        store = BinaryKBStore.save(kb, tmp_path / "store")
        kb.commit_changes(added=[Triple(EX.zoe, RDF_TYPE, EX.Person)], version_id="v4")
        store.sync(kb)
        stale_log = (tmp_path / "store" / LOG_FILE).read_bytes()
        BinaryKBStore.save(kb, tmp_path / "store")
        (tmp_path / "store" / LOG_FILE).write_bytes(stale_log)
        _, ids = BinaryKBStore.open(tmp_path / "store").describe()
        assert ids == ["v1", "v2", "v3", "v4"]

    def test_log_replay_warms_the_true_head_pair(self, tmp_path):
        # The head-pair snapshots must track the chain's real head after
        # the log replay, not the base payload's head -- a restarted
        # --persist deployment must serve its first request with zero
        # delta replay regardless of log length.
        kb = _kb()
        store = BinaryKBStore.save(kb, tmp_path / "store")
        for i in range(4):
            kb.commit_changes(
                added=[Triple(EX[f"inst{i}"], RDF_TYPE, EX.Person)],
                version_id=f"v_log{i}",
            )
        store.sync(kb)
        loaded = load_kb(tmp_path / "store")
        flags = {v.version_id: v.is_materialized for v in loaded}
        assert flags["v_log3"] and flags["v_log2"]  # true head pair
        assert not flags["v_log0"] and not flags["v_log1"]  # lazy tail
        assert not flags["v2"] and not flags["v3"]  # base head is lazy too
        assert flags["v1"]  # root anchors the delta chain
        _assert_chains_identical(kb, loaded)

    def test_bootstrap_payload_decodes_identically(self, tmp_path):
        kb = _kb()
        store = BinaryKBStore.save(kb, tmp_path / "store")
        kb.commit_changes(added=[Triple(EX.zoe, RDF_TYPE, EX.Person)], version_id="v4")
        store.sync(kb)
        replica = decode_store_payload(*store.bootstrap_payload())
        _assert_chains_identical(kb, replica)

    def test_resave_truncates_stale_log(self, tmp_path):
        kb = _kb()
        store = BinaryKBStore.save(kb, tmp_path / "store")
        kb.commit_changes(added=[Triple(EX.zoe, RDF_TYPE, EX.Person)], version_id="v4")
        store.sync(kb)
        BinaryKBStore.save(kb, tmp_path / "store")  # base now holds v1..v4
        assert (tmp_path / "store" / LOG_FILE).stat().st_size == 0
        assert load_kb(tmp_path / "store").version_ids() == ["v1", "v2", "v3", "v4"]


class TestCorruption:
    def test_truncated_base_raises(self, tmp_path):
        save_kb(_kb(), tmp_path / "store", format="binary")
        base = tmp_path / "store" / BASE_FILE
        base.write_bytes(base.read_bytes()[: base.stat().st_size // 2])
        with pytest.raises(WireFormatError):
            load_kb(tmp_path / "store")

    def test_torn_log_tail_recovers_the_intact_prefix(self, tmp_path):
        # A crash between write and fsync tears the final record: the load
        # must warn, replay everything before it, and truncate the file so
        # later appends chain onto intact records.
        kb = _kb()
        store = BinaryKBStore.save(kb, tmp_path / "store")
        kb.commit_changes(added=[Triple(EX.zoe, RDF_TYPE, EX.Person)], version_id="v4")
        store.sync(kb)
        intact = (tmp_path / "store" / LOG_FILE).read_bytes()
        kb.commit_changes(added=[Triple(EX.max, RDF_TYPE, EX.Person)], version_id="v5")
        store.sync(kb)
        log = tmp_path / "store" / LOG_FILE
        log.write_bytes(log.read_bytes()[:-7])  # tear the v5 record
        with pytest.warns(RuntimeWarning, match="torn tail"):
            loaded = load_kb(tmp_path / "store")
        assert loaded.version_ids() == ["v1", "v2", "v3", "v4"]
        assert log.read_bytes() == intact  # file truncated to the prefix
        # A later load is clean (no warning) and appends chain correctly.
        reloaded = BinaryKBStore.open(tmp_path / "store")
        kb2 = reloaded.load()
        kb2.commit_changes(added=[Triple(EX.eve2, RDF_TYPE, EX.Person)], version_id="v5b")
        reloaded.sync(kb2)
        assert load_kb(tmp_path / "store").version_ids() == ["v1", "v2", "v3", "v4", "v5b"]

    def test_torn_only_record_recovers_to_base(self, tmp_path):
        kb = _kb()
        store = BinaryKBStore.save(kb, tmp_path / "store")
        kb.commit_changes(added=[Triple(EX.zoe, RDF_TYPE, EX.Person)], version_id="v4")
        store.sync(kb)
        log = tmp_path / "store" / LOG_FILE
        log.write_bytes(log.read_bytes()[:-7])
        with pytest.warns(RuntimeWarning, match="torn tail"):
            loaded = load_kb(tmp_path / "store")
        assert loaded.version_ids() == ["v1", "v2", "v3"]
        assert log.stat().st_size == 0

    def test_stale_log_after_interrupted_save_is_discarded(self, tmp_path):
        # Crash window in save(): new base replaced, old log not yet
        # truncated.  The stale records' versions are already inside the
        # new base, so the load must discard the log, not refuse to boot.
        kb = _kb()
        store = BinaryKBStore.save(kb, tmp_path / "store")
        kb.commit_changes(added=[Triple(EX.zoe, RDF_TYPE, EX.Person)], version_id="v4")
        store.sync(kb)
        stale_log = (tmp_path / "store" / LOG_FILE).read_bytes()
        BinaryKBStore.save(kb, tmp_path / "store")  # new base holds v1..v4
        (tmp_path / "store" / LOG_FILE).write_bytes(stale_log)  # simulate the crash
        with pytest.warns(RuntimeWarning, match="does not chain"):
            loaded = load_kb(tmp_path / "store")
        assert loaded.version_ids() == ["v1", "v2", "v3", "v4"]
        assert (tmp_path / "store" / LOG_FILE).stat().st_size == 0
        _assert_chains_identical(kb, loaded)

    def test_garbage_magic_raises(self, tmp_path):
        save_kb(_kb(), tmp_path / "store", format="binary")
        base = tmp_path / "store" / BASE_FILE
        base.write_bytes(b"XXXX" + base.read_bytes()[4:])
        with pytest.raises(WireFormatError, match="bad magic"):
            load_kb(tmp_path / "store")

    def test_empty_base_raises(self, tmp_path):
        save_kb(_kb(), tmp_path / "store", format="binary")
        (tmp_path / "store" / BASE_FILE).write_bytes(b"")
        with pytest.raises(WireFormatError, match="empty store base"):
            load_kb(tmp_path / "store")

    def test_open_missing_store(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            BinaryKBStore.open(tmp_path)


class TestConvert:
    def test_nt_to_binary_to_nt_is_lossless(self, tmp_path):
        kb = _kb()
        save_kb(kb, tmp_path / "nt")
        convert_kb(tmp_path / "nt", tmp_path / "bin", to="binary")
        convert_kb(tmp_path / "bin", tmp_path / "nt2", to="nt")
        _assert_chains_identical(kb, load_kb(tmp_path / "bin"))
        _assert_chains_identical(kb, load_kb(tmp_path / "nt2"))
        # The .nt round-trip is byte-identical file by file.
        for source in sorted((tmp_path / "nt").iterdir()):
            assert source.read_bytes() == (tmp_path / "nt2" / source.name).read_bytes()

    def test_convert_recommendations_identical(self, tmp_path):
        world = generate_world(seed=9, n_classes=25, n_versions=3, n_users=3)
        save_kb(world.kb, tmp_path / "nt")
        convert_kb(tmp_path / "nt", tmp_path / "bin", to="binary")
        config = EngineConfig(k=5, spread_depth=1)
        user = world.users[0]
        from_nt = RecommenderEngine(load_kb(tmp_path / "nt"), config=config).recommend(user)
        from_bin = RecommenderEngine(load_kb(tmp_path / "bin"), config=config).recommend(user)
        assert package_to_dict(from_nt) == package_to_dict(from_bin)

    def test_same_directory_rejected(self, tmp_path):
        save_kb(_kb(), tmp_path / "kb")
        with pytest.raises(ValueError, match="distinct"):
            convert_kb(tmp_path / "kb", tmp_path / "kb")

    def test_saving_one_layout_evicts_the_other(self, tmp_path):
        # A directory holds exactly one layout: writing .nt over a binary
        # store must not leave a stale kb.rpw winning auto-detection (and
        # vice versa for a stale manifest).
        kb = _kb()
        target = tmp_path / "kb"
        save_kb(kb, target, format="binary")
        other = VersionedKnowledgeBase("other")
        other.commit(Graph([Triple(EX.only, RDF_TYPE, RDFS_CLASS)]), version_id="o1")
        save_kb(other, target)  # nt layout over the binary store
        assert not (target / BASE_FILE).exists()
        assert load_kb(target).name == "other"
        save_kb(kb, target, format="binary")  # and back
        assert not (target / "manifest.json").exists()
        assert list(target.glob("*.nt")) == []  # no orphaned version files
        assert load_kb(target).name == "demo"

    def test_unknown_target_format_rejected(self, tmp_path):
        save_kb(_kb(), tmp_path / "kb")
        with pytest.raises(ValueError, match="unknown KB format"):
            convert_kb(tmp_path / "kb", tmp_path / "out", to="xml")


class TestTenantPersistenceHook:
    def test_on_commit_appends_to_store(self, tmp_path):
        from repro.service.registry import Tenant

        kb = _kb()
        store = BinaryKBStore.save(kb, tmp_path / "store")
        users = [User("u1", InterestProfile(class_weights={EX.Person: 1.0}))]
        tenant = Tenant(
            "demo", kb, users, on_commit=lambda version: store.sync(kb)
        )
        tenant.commit_changes(
            added=[Triple(EX.zoe, RDF_TYPE, EX.Person)], version_id="v_live"
        )
        reloaded = load_kb(tmp_path / "store")
        assert reloaded.version_ids() == ["v1", "v2", "v3", "v_live"]
        _assert_chains_identical(kb, reloaded)

    def test_failing_hook_warns_and_the_next_sync_catches_up(self, tmp_path):
        # A persistence failure must not fail the request: the commit is
        # already live in memory, and sync() appends every version still
        # missing from disk once it succeeds again.
        from repro.service.registry import Tenant

        kb = _kb()
        store = BinaryKBStore.save(kb, tmp_path / "store")
        fail = {"on": True}

        def hook(version):
            if fail["on"]:
                raise OSError("disk full")
            store.sync(kb)

        tenant = Tenant("demo", kb, on_commit=hook)
        with pytest.warns(RuntimeWarning, match="post-commit hook failed"):
            version = tenant.commit_changes(
                added=[Triple(EX.zoe, RDF_TYPE, EX.Person)], version_id="v_lost"
            )
        assert version.version_id == "v_lost"  # commit itself succeeded
        assert load_kb(tmp_path / "store").version_ids() == ["v1", "v2", "v3"]
        fail["on"] = False
        tenant.commit_changes(
            added=[Triple(EX.max, RDF_TYPE, EX.Person)], version_id="v_next"
        )
        assert load_kb(tmp_path / "store").version_ids() == [
            "v1", "v2", "v3", "v_lost", "v_next",
        ]


class TestStoreLifecycle:
    """close() releases the lazy load's pinned memory maps (satellite of
    the replica plane: fd/mmap lifetime is owned by the store, released on
    tenant eviction / service shutdown, not whenever GC runs)."""

    def test_close_is_idempotent(self, tmp_path):
        save_kb(_kb(), tmp_path / "store", format="binary")
        store = BinaryKBStore.open(tmp_path / "store")
        kb = store.load(lazy=False)  # eager: nothing stays pinned
        assert kb.version_ids() == ["v1", "v2", "v3"]
        store.close()
        store.close()  # idempotent

    def test_context_manager_closes(self, tmp_path):
        save_kb(_kb(), tmp_path / "store", format="binary")
        with BinaryKBStore.open(tmp_path / "store") as store:
            kb = store.load(lazy=False)
        assert kb.version_ids() == ["v1", "v2", "v3"]
        store.close()  # still idempotent after __exit__

    def test_close_releases_lazy_load_fds(self, tmp_path):
        import gc
        import os

        world = generate_world(seed=5, n_classes=25, n_versions=5, n_users=3)
        save_kb(world.kb, tmp_path / "store", format="binary")
        gc.collect()
        before = len(os.listdir("/proc/self/fd"))
        store = BinaryKBStore.open(tmp_path / "store")
        kb = store.load()  # lazy: term table and key arrays view the mmap
        assert len(kb) == 5
        # Lazy versions must stay readable while the store is open...
        assert all(len(v.graph) > 0 for v in kb)
        del kb
        gc.collect()
        store.close()
        gc.collect()
        assert len(os.listdir("/proc/self/fd")) == before

    def test_tenant_close_hook_runs_store_close(self, tmp_path):
        from repro.service.registry import Tenant, TenantRegistry

        save_kb(_kb(), tmp_path / "store", format="binary")
        store = BinaryKBStore.open(tmp_path / "store")
        kb = store.load()
        registry = TenantRegistry()
        registry.add("demo", kb, on_close=store.close)
        removed = registry.remove("demo")
        assert removed is not None
        store.close()  # already closed by the eviction hook; stays a no-op

    def test_failing_close_hook_warns(self):
        from repro.service.registry import Tenant

        def bad_close():
            raise OSError("already unmapped")

        tenant = Tenant("demo", _kb(), on_close=bad_close)
        with pytest.warns(RuntimeWarning, match="close hook failed"):
            tenant.close()
        tenant.close()  # idempotent: the hook does not run twice


class TestRollup:
    """Threshold-driven roll-up: absorb the log into a fresh base."""

    def test_sync_rolls_up_at_the_record_threshold(self, tmp_path):
        kb = _kb()
        store = BinaryKBStore.save(kb, tmp_path / "store", rollup_records=3)
        base_before = (tmp_path / "store" / BASE_FILE).read_bytes()
        for i in range(3):
            kb.commit_changes(
                added=[Triple(EX[f"roll{i}"], RDF_TYPE, EX.Person)],
                version_id=f"r{i}",
            )
        assert store.sync(kb) == 3
        # The third append crossed the threshold: base rewritten from the
        # live chain, log truncated -- and nothing lost.
        assert (tmp_path / "store" / BASE_FILE).read_bytes() != base_before
        assert (tmp_path / "store" / LOG_FILE).stat().st_size == 0
        _assert_chains_identical(kb, load_kb(tmp_path / "store"))

    def test_sync_rolls_up_at_the_byte_threshold(self, tmp_path):
        kb = _kb()
        store = BinaryKBStore.save(kb, tmp_path / "store", rollup_bytes=1)
        kb.commit_changes(
            added=[Triple(EX.zoe, RDF_TYPE, EX.Person)], version_id="v4"
        )
        assert store.sync(kb) == 1
        assert (tmp_path / "store" / LOG_FILE).stat().st_size == 0
        assert load_kb(tmp_path / "store").version_ids() == ["v1", "v2", "v3", "v4"]

    def test_below_threshold_stays_an_append(self, tmp_path):
        kb = _kb()
        store = BinaryKBStore.save(kb, tmp_path / "store", rollup_records=10)
        base_before = (tmp_path / "store" / BASE_FILE).read_bytes()
        kb.commit_changes(
            added=[Triple(EX.zoe, RDF_TYPE, EX.Person)], version_id="v4"
        )
        store.sync(kb)
        assert (tmp_path / "store" / BASE_FILE).read_bytes() == base_before
        assert store.log_stats() == (1, (tmp_path / "store" / LOG_FILE).stat().st_size)

    def test_rollup_returns_absorbed_count(self, tmp_path):
        kb = _kb()
        store = BinaryKBStore.save(kb, tmp_path / "store")
        for i in range(2):
            kb.commit_changes(
                added=[Triple(EX[f"roll{i}"], RDF_TYPE, EX.Person)],
                version_id=f"r{i}",
            )
        store.sync(kb)
        assert store.rollup(kb) == 2
        assert store.rollup(kb) == 0  # idempotent: nothing left to absorb
        assert (tmp_path / "store" / LOG_FILE).stat().st_size == 0
        _assert_chains_identical(kb, load_kb(tmp_path / "store"))

    def test_open_survives_a_rollup_cursorwise(self, tmp_path):
        # A reload after roll-up must report the rolled-up chain and keep
        # appending from the right cursor.
        kb = _kb()
        store = BinaryKBStore.save(kb, tmp_path / "store", rollup_records=2)
        for i in range(2):
            kb.commit_changes(
                added=[Triple(EX[f"roll{i}"], RDF_TYPE, EX.Person)],
                version_id=f"r{i}",
            )
        store.sync(kb)  # rolled up
        reopened = BinaryKBStore.open(tmp_path / "store")
        kb2 = reopened.load()
        assert kb2.version_ids() == ["v1", "v2", "v3", "r0", "r1"]
        kb2.commit_changes(
            added=[Triple(EX.after, RDF_TYPE, EX.Person)], version_id="after"
        )
        reopened.sync(kb2)
        assert load_kb(tmp_path / "store").version_ids() == [
            "v1", "v2", "v3", "r0", "r1", "after",
        ]

    def test_rollup_requires_cursor(self, tmp_path):
        BinaryKBStore.save(_kb(), tmp_path / "store")
        fresh_handle = BinaryKBStore.open(tmp_path / "store")
        with pytest.raises(WireFormatError, match="cursor"):
            fresh_handle.rollup(_kb())

    @pytest.mark.parametrize("knob", ["rollup_bytes", "rollup_records"])
    def test_thresholds_must_be_positive(self, tmp_path, knob):
        with pytest.raises(ValueError, match=knob):
            BinaryKBStore(tmp_path / "store", **{knob: 0})


class TestChainAwareLogVetting:
    """The log check walks the whole chain, not just the first record."""

    def test_mid_log_chain_break_keeps_only_the_chained_prefix(self, tmp_path):
        # A record re-listing an id already on the chain (a replayed
        # append) starts mid-log, so the old first-record-only stale check
        # missed it and double-listed v4.  The chain walk stops there.
        kb = _kb()
        store = BinaryKBStore.save(kb, tmp_path / "store")
        kb.commit_changes(
            added=[Triple(EX.zoe, RDF_TYPE, EX.Person)], version_id="v4"
        )
        store.sync(kb)
        log = tmp_path / "store" / LOG_FILE
        record = log.read_bytes()
        log.write_bytes(record + record)  # duplicate v4 record in the log
        _, ids = BinaryKBStore.open(tmp_path / "store").describe()
        assert ids == ["v1", "v2", "v3", "v4"]  # listed once, not twice
        with pytest.warns(RuntimeWarning, match="does not chain"):
            loaded = load_kb(tmp_path / "store")
        assert loaded.version_ids() == ["v1", "v2", "v3", "v4"]
        assert log.read_bytes() == record  # truncated to the chained prefix

    def test_interrupted_rollup_discards_the_superseded_log(self, tmp_path):
        # Roll-up's crash window: new base published, log not yet
        # truncated.  Every log record's version is already inside the new
        # base, so the whole log is superseded -- discard, lose nothing.
        kb = _kb()
        store = BinaryKBStore.save(kb, tmp_path / "store")
        for i in range(3):
            kb.commit_changes(
                added=[Triple(EX[f"roll{i}"], RDF_TYPE, EX.Person)],
                version_id=f"r{i}",
            )
        store.sync(kb)
        superseded = (tmp_path / "store" / LOG_FILE).read_bytes()
        store.rollup(kb)
        (tmp_path / "store" / LOG_FILE).write_bytes(superseded)  # the crash
        _, ids = BinaryKBStore.open(tmp_path / "store").describe()
        assert ids == kb.version_ids()
        with pytest.warns(RuntimeWarning, match="does not chain"):
            loaded = load_kb(tmp_path / "store")
        _assert_chains_identical(kb, loaded)
        assert (tmp_path / "store" / LOG_FILE).stat().st_size == 0


class TestTmpHygiene:
    """Stranded ``*.rpw.tmp`` files (crash before the atomic replace)."""

    def test_open_clears_a_stranded_tmp_base(self, tmp_path):
        save_kb(_kb(), tmp_path / "store", format="binary")
        stranded = tmp_path / "store" / "kb.rpw.tmp"
        stranded.write_bytes(b"half-written base")
        BinaryKBStore.open(tmp_path / "store")
        assert not stranded.exists()

    def test_save_clears_a_stranded_tmp_base(self, tmp_path):
        target = tmp_path / "store"
        save_kb(_kb(), target, format="binary")
        stranded = target / "kb.rpw.tmp"
        stranded.write_bytes(b"junk from a crashed writer")
        BinaryKBStore.save(_kb(), target)
        assert not stranded.exists()
        assert load_kb(target).version_ids() == ["v1", "v2", "v3"]

    def test_load_kb_warns_on_a_dual_layout_directory(self, tmp_path):
        # Auto-detection must not silently *guess* when a directory holds
        # both layouts: the binary store wins, with a warning naming the
        # remnants.
        target = tmp_path / "store"
        save_kb(_kb(), target, format="binary")
        (target / "manifest.json").write_text("{}")
        with pytest.warns(RuntimeWarning, match="both a binary store"):
            loaded = load_kb(target)
        assert loaded.version_ids() == ["v1", "v2", "v3"]
