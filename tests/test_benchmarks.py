"""Smoke test: the standalone benchmark harness can't silently rot.

Runs ``benchmarks/run_bench.py`` in-process in ``--quick`` mode (shrunk
world, minimal rounds) and checks the report shape, so a refactor that
breaks any benchmark workload fails the suite instead of the next perf
investigation.
"""

import importlib.util
import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def run_bench():
    spec = importlib.util.spec_from_file_location(
        "run_bench", ROOT / "benchmarks" / "run_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quick_run_produces_complete_report(run_bench, tmp_path):
    output = tmp_path / "bench.json"
    report = run_bench.run(output, quick=True)
    assert output.exists()
    on_disk = json.loads(output.read_text())
    assert on_disk["benchmarks"].keys() == report["benchmarks"].keys()

    expected = {name for name, _ in run_bench._build_benchmarks(run_bench.QUICK_CONFIG)}
    assert report["benchmarks"].keys() == expected
    assert "cold_first_evaluation" in expected
    assert report["meta"]["quick"] is True
    assert report["meta"]["rounds"] <= 3
    for name, timing in report["benchmarks"].items():
        assert timing["mean_s"] > 0.0, name
        assert timing["min_s"] <= timing["mean_s"] <= timing["max_s"]


def test_quick_flag_parses_from_cli(run_bench, tmp_path, capsys):
    output = tmp_path / "cli.json"
    assert run_bench.main(["--quick", "-o", str(output), "--only", "graph_copy"]) == 0
    report = json.loads(output.read_text())
    assert set(report["benchmarks"]) == {"graph_copy"}
    assert report["meta"]["quick"] is True


def test_unknown_benchmark_name_rejected(run_bench, tmp_path):
    with pytest.raises(SystemExit):
        run_bench.run(tmp_path / "x.json", quick=True, only=["no_such_bench"])


@pytest.fixture(scope="module")
def bench_durability():
    spec = importlib.util.spec_from_file_location(
        "bench_durability", ROOT / "benchmarks" / "bench_durability.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchDurabilityPieces:
    """Unit pieces of the kill-and-reboot soak (the soak itself runs in CI).

    The full harness spawns subprocesses and SIGKILLs them; here we pin
    the deterministic pieces the zero-loss verdict depends on -- the
    commit stream shared by child and control, the torn-ack tolerance,
    and the crash-plan coverage.
    """

    def test_delta_stream_is_deterministic(self, bench_durability):
        assert bench_durability._delta_for(7) == bench_durability._delta_for(7)
        added, deleted = bench_durability._delta_for(3)
        assert added and deleted  # the deleted-keys half is exercised too
        # Every deletion removes a triple an earlier commit added.
        earlier_added, _ = bench_durability._delta_for(1)
        assert deleted[0] in earlier_added

    def test_vids_sort_in_commit_order(self, bench_durability):
        vids = [bench_durability._vid(i) for i in (0, 9, 10, 99, 100)]
        assert vids == sorted(vids)
        assert len(set(vids)) == len(vids)

    def test_read_acks_ignores_a_torn_last_line(self, bench_durability, tmp_path):
        ack = tmp_path / "acks"
        assert bench_durability._read_acks(ack) == []  # no file yet
        ack.write_bytes(b"c00001\nc00002\nc000")  # killed mid-ack-write
        assert bench_durability._read_acks(ack) == ["c00001", "c00002"]

    def test_crash_plan_covers_append_and_rollup_at_every_site(
        self, bench_durability
    ):
        specs = bench_durability.FULL_CRASHES
        assert len(specs) == 12  # (2 append + 4 rollup sites) x before/after
        assert {spec.split(":")[0] for spec in specs} == {"append", "rollup"}
        assert {spec.rsplit(":", 1)[1] for spec in specs} == {"before", "after"}
        assert set(bench_durability.QUICK_CRASHES) <= set(specs)

    def test_recovery_budget_matches_the_committed_baseline(
        self, bench_durability
    ):
        baseline = json.loads((ROOT / "BENCH_substrate.json").read_text())
        recovery = baseline["durability"]["recovery"]
        assert recovery["budget_s"] == bench_durability.RECOVERY_BUDGET_S
        assert recovery["max_s"] <= recovery["budget_s"]
