"""Smoke test: the standalone benchmark harness can't silently rot.

Runs ``benchmarks/run_bench.py`` in-process in ``--quick`` mode (shrunk
world, minimal rounds) and checks the report shape, so a refactor that
breaks any benchmark workload fails the suite instead of the next perf
investigation.
"""

import importlib.util
import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def run_bench():
    spec = importlib.util.spec_from_file_location(
        "run_bench", ROOT / "benchmarks" / "run_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quick_run_produces_complete_report(run_bench, tmp_path):
    output = tmp_path / "bench.json"
    report = run_bench.run(output, quick=True)
    assert output.exists()
    on_disk = json.loads(output.read_text())
    assert on_disk["benchmarks"].keys() == report["benchmarks"].keys()

    expected = {name for name, _ in run_bench._build_benchmarks(run_bench.QUICK_CONFIG)}
    assert report["benchmarks"].keys() == expected
    assert "cold_first_evaluation" in expected
    assert report["meta"]["quick"] is True
    assert report["meta"]["rounds"] <= 3
    for name, timing in report["benchmarks"].items():
        assert timing["mean_s"] > 0.0, name
        assert timing["min_s"] <= timing["mean_s"] <= timing["max_s"]


def test_quick_flag_parses_from_cli(run_bench, tmp_path, capsys):
    output = tmp_path / "cli.json"
    assert run_bench.main(["--quick", "-o", str(output), "--only", "graph_copy"]) == 0
    report = json.loads(output.read_text())
    assert set(report["benchmarks"]) == {"graph_copy"}
    assert report["meta"]["quick"] is True


def test_unknown_benchmark_name_rejected(run_bench, tmp_path):
    with pytest.raises(SystemExit):
        run_bench.run(tmp_path / "x.json", quick=True, only=["no_such_bench"])
