"""Cross-module integration tests: the full paper pipeline, end to end.

These tests exercise contracts *between* subsystems: synthetic world ->
measures -> recommendation -> feedback loop -> anonymised reporting ->
provenance, plus persistence round-trips of live engine artefacts.
"""

import pytest

from repro.io import load_kb, load_users, save_kb, save_users
from repro.measures.catalog import default_catalog
from repro.measures.mix import persona_mix
from repro.measures.trends import TrendAnalysis
from repro.measures.counts import ClassChangeCount
from repro.privacy.loss import ranking_utility
from repro.profiles.feedback import FeedbackEvent, FeedbackStore
from repro.provenance.store import ProvenanceStore
from repro.recommender.engine import EngineConfig, RecommenderEngine
from repro.synthetic.config import (
    EvolutionConfig,
    SchemaConfig,
    UserConfig,
    WorldConfig,
)
from repro.synthetic.users import simulate_feedback
from repro.synthetic.world import generate_world


@pytest.fixture(scope="module")
def world():
    config = WorldConfig(
        schema=SchemaConfig(n_classes=40, n_properties=25),
        evolution=EvolutionConfig(n_versions=4, changes_per_version=70),
        users=UserConfig(n_users=8),
    )
    return generate_world(seed=99, config=config)


class TestMeasureToRecommendationContract:
    def test_recommended_targets_were_scored_by_their_measure(self, world):
        engine = RecommenderEngine(world.kb)
        results = engine.measure_results()
        package = engine.recommend(world.users[0], k=8)
        for scored in package:
            result = results[scored.item.measure_name]
            assert scored.item.target in result.scores
            normalised = result.normalized()
            assert scored.item.evolution_score == pytest.approx(
                normalised.score(scored.item.target)
            )

    def test_hotspot_classes_surface_in_some_measure_top(self, world):
        context = world.latest_context()
        results = default_catalog().compute_all(context)
        step_counts = world.trace.effect_counts(step=len(world.kb) - 1)
        if not step_counts:
            pytest.skip("no ops in final step")
        most_hit = max(step_counts, key=step_counts.get)
        tops = set()
        for result in results.values():
            tops.update(t for t, s in result.top(10) if s > 0)
        assert most_hit in tops


class TestFeedbackLoop:
    def test_closing_the_loop_improves_personalisation(self, world):
        """Recommend -> collect (ground-truth-driven) feedback -> re-rank:
        the collaborative component must push well-rated items up for a
        user whose semantic profile is silent on them."""
        engine = RecommenderEngine(world.kb, config=EngineConfig(diversifier="none"))
        candidates = engine.candidates()
        target_item = candidates[len(candidates) // 2]

        # Everyone (including our user) rates that one item highly.
        store = FeedbackStore()
        for user in world.users:
            store.add(FeedbackEvent(user.user_id, target_item.key, 1.0))

        engine_fb = RecommenderEngine(
            world.kb,
            config=EngineConfig(diversifier="none", alpha=0.1),
            feedback=store,
        )
        user = world.users[0]
        before = RecommenderEngine(
            world.kb, config=EngineConfig(diversifier="none")
        ).recommend(user, k=len(candidates))
        after = engine_fb.recommend(user, k=len(candidates))
        assert after.keys().index(target_item.key) <= before.keys().index(
            target_item.key
        )

    def test_simulated_feedback_respects_ground_truth_ordering(self, world):
        engine = RecommenderEngine(world.kb)
        candidates = engine.candidates()[:30]
        users = world.users[:4]
        store = simulate_feedback(
            users,
            [c.key for c in candidates],
            relevance=lambda u, key: 1.0 if key == candidates[0].key else 0.0,
            config=UserConfig(n_users=4, events_per_user=30, feedback_noise=0.05),
        )
        top_ratings = store.ratings_by_item(candidates[0].key)
        other_ratings = store.ratings_by_item(candidates[1].key)
        if top_ratings and other_ratings:
            assert (sum(top_ratings.values()) / len(top_ratings)) > (
                sum(other_ratings.values()) / len(other_ratings)
            )


class TestPrivacyIntegration:
    def test_report_covers_delta_contributors(self, world):
        engine = RecommenderEngine(world.kb)
        report = engine.change_report()
        context = engine.context()
        # Every contributor in the report appears in the delta.
        delta_subjects = {
            str(t.subject) for t in context.delta.added | context.delta.deleted
        }
        for row in report.rows():
            assert set(row.contributors) <= delta_subjects

    def test_anonymised_report_remains_useful(self, world):
        engine = RecommenderEngine(world.kb)
        report = engine.change_report()
        released = engine.anonymized_report(k=2)
        assert released.is_k_anonymous()
        assert ranking_utility(report, released) > 0.4


class TestProvenanceIntegration:
    def test_package_lineage_reaches_measure_results(self, world):
        store = ProvenanceStore()
        engine = RecommenderEngine(world.kb, provenance_store=store)
        engine.recommend(world.users[0], k=3)
        package_entities = [
            e
            for e in (
                store.entity(rel.source)
                for rel in store.relations()
                if rel.source.startswith("entity")
            )
            if "package" in (e.label or "")
        ]
        assert package_entities
        lineage = store.lineage(package_entities[0].entity_id)
        labels = {store.entity(a).label for a in lineage}
        assert any("utilities" in (label or "") for label in labels)


class TestMixAndTrendIntegration:
    def test_persona_mix_recommendable_through_engine(self, world):
        user = world.users[0]
        catalog = default_catalog()
        mix = persona_mix("persona_mix", catalog, user.profile)
        catalog.register(mix)
        engine = RecommenderEngine(world.kb, catalog=catalog)
        package = engine.recommend(user, k=10)
        assert len(package) == 10  # mix candidates compete with primitives

    def test_trends_over_generated_world(self, world):
        analysis = TrendAnalysis(world.kb, ClassChangeCount())
        assert len(analysis) > 0
        hottest = analysis.hottest(5)
        assert len(hottest) == 5
        # The hottest class overall must have experienced real ops.
        counts = world.trace.effect_counts()
        assert counts.get(hottest[0].target, 0) > 0


class TestPersistenceIntegration:
    def test_engine_runs_identically_on_reloaded_world(self, tmp_path, world):
        save_kb(world.kb, tmp_path / "kb")
        save_users(world.users, tmp_path / "users.json")
        reloaded_kb = load_kb(tmp_path / "kb")
        reloaded_users = load_users(tmp_path / "users.json")

        original = RecommenderEngine(world.kb).recommend(world.users[0], k=5)
        reloaded = RecommenderEngine(reloaded_kb).recommend(reloaded_users[0], k=5)
        assert original.keys() == reloaded.keys()
        assert [s.utility for s in original] == pytest.approx(
            [s.utility for s in reloaded]
        )
