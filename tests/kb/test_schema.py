"""Unit tests for the schema view."""

import pytest

from repro.kb.errors import SchemaError
from repro.kb.graph import Graph
from repro.kb.namespaces import (
    EX,
    RDF_PROPERTY,
    RDF_TYPE,
    RDFS_CLASS,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
)
from repro.kb.schema import PropertyEdge, SchemaView
from repro.kb.terms import Literal
from repro.kb.triples import Triple


@pytest.fixture
def university() -> SchemaView:
    """A small university ontology with instances.

    Agent <- Person <- (Student, Professor); Course.
    teaches: Professor -> Course; enrolledIn: Student -> Course.
    """
    g = Graph()
    for cls in (EX.Agent, EX.Person, EX.Student, EX.Professor, EX.Course):
        g.add(Triple(cls, RDF_TYPE, RDFS_CLASS))
    g.add(Triple(EX.Person, RDFS_SUBCLASSOF, EX.Agent))
    g.add(Triple(EX.Student, RDFS_SUBCLASSOF, EX.Person))
    g.add(Triple(EX.Professor, RDFS_SUBCLASSOF, EX.Person))
    for prop, dom, rng in (
        (EX.teaches, EX.Professor, EX.Course),
        (EX.enrolledIn, EX.Student, EX.Course),
    ):
        g.add(Triple(prop, RDF_TYPE, RDF_PROPERTY))
        g.add(Triple(prop, RDFS_DOMAIN, dom))
        g.add(Triple(prop, RDFS_RANGE, rng))
    # Instances: 2 students, 1 professor, 2 courses.
    g.add(Triple(EX.ada, RDF_TYPE, EX.Student))
    g.add(Triple(EX.bob, RDF_TYPE, EX.Student))
    g.add(Triple(EX.turing, RDF_TYPE, EX.Professor))
    g.add(Triple(EX.cs101, RDF_TYPE, EX.Course))
    g.add(Triple(EX.cs202, RDF_TYPE, EX.Course))
    g.add(Triple(EX.turing, EX.teaches, EX.cs101))
    g.add(Triple(EX.ada, EX.enrolledIn, EX.cs101))
    g.add(Triple(EX.ada, EX.enrolledIn, EX.cs202))
    g.add(Triple(EX.bob, EX.enrolledIn, EX.cs101))
    g.add(Triple(EX.ada, EX.name, Literal("Ada")))
    return SchemaView(g)


class TestClassesAndProperties:
    def test_classes(self, university):
        assert university.classes() == frozenset(
            {EX.Agent, EX.Person, EX.Student, EX.Professor, EX.Course}
        )

    def test_builtin_excluded_by_default(self, university):
        assert RDFS_CLASS not in university.classes()
        assert RDFS_CLASS in university.classes(include_builtin=True)

    def test_properties(self, university):
        props = university.properties()
        assert EX.teaches in props and EX.enrolledIn in props
        assert EX.name in props  # used as a predicate

    def test_is_class(self, university):
        assert university.is_class(EX.Person)
        assert not university.is_class(EX.teaches)
        assert not university.is_class(Literal("x"))

    def test_is_property(self, university):
        assert university.is_property(EX.teaches)
        assert not university.is_property(EX.Person)

    def test_class_from_type_assertion_only(self):
        g = Graph([Triple(EX.x, RDF_TYPE, EX.Widget)])
        assert EX.Widget in SchemaView(g).classes()


class TestSubsumption:
    def test_direct_superclasses(self, university):
        assert university.superclasses(EX.Student) == frozenset({EX.Person})

    def test_transitive_superclasses(self, university):
        assert university.superclasses(EX.Student, transitive=True) == frozenset(
            {EX.Person, EX.Agent}
        )

    def test_direct_subclasses(self, university):
        assert university.subclasses(EX.Person) == frozenset({EX.Student, EX.Professor})

    def test_transitive_subclasses(self, university):
        assert university.subclasses(EX.Agent, transitive=True) == frozenset(
            {EX.Person, EX.Student, EX.Professor}
        )

    def test_roots(self, university):
        assert university.roots() == frozenset({EX.Agent, EX.Course})

    def test_depth(self, university):
        assert university.depth(EX.Agent) == 0
        assert university.depth(EX.Person) == 1
        assert university.depth(EX.Student) == 2

    def test_depth_unknown_class_raises(self, university):
        with pytest.raises(SchemaError):
            university.depth(EX.Nothing)

    def test_cycle_terminates(self):
        g = Graph(
            [
                Triple(EX.A, RDFS_SUBCLASSOF, EX.B),
                Triple(EX.B, RDFS_SUBCLASSOF, EX.A),
            ]
        )
        view = SchemaView(g)
        assert view.superclasses(EX.A, transitive=True) == frozenset({EX.A, EX.B})
        assert view.depth(EX.A) >= 0  # must not loop forever


class TestPropertyStructure:
    def test_domain_range(self, university):
        assert university.domain(EX.teaches) == frozenset({EX.Professor})
        assert university.range(EX.teaches) == frozenset({EX.Course})

    def test_missing_domain_is_empty(self, university):
        assert university.domain(EX.name) == frozenset()

    def test_property_edges(self, university):
        assert PropertyEdge(EX.Professor, EX.teaches, EX.Course) in university.property_edges()

    def test_outgoing_incoming(self, university):
        assert {e.prop for e in university.outgoing_properties(EX.Student)} == {EX.enrolledIn}
        assert {e.prop for e in university.incoming_properties(EX.Course)} == {
            EX.teaches,
            EX.enrolledIn,
        }


class TestInstances:
    def test_direct_instances(self, university):
        assert university.instances_of(EX.Student) == frozenset({EX.ada, EX.bob})

    def test_transitive_instances(self, university):
        assert university.instances_of(EX.Person, transitive=True) == frozenset(
            {EX.ada, EX.bob, EX.turing}
        )

    def test_instance_count(self, university):
        assert university.instance_count(EX.Course) == 2
        assert university.instance_count(EX.Person) == 0
        assert university.instance_count(EX.Person, transitive=True) == 3

    def test_total_instances(self, university):
        assert university.total_instances() == 5

    def test_classes_of(self, university):
        assert university.classes_of(EX.ada) == frozenset({EX.Student})

    def test_classes_are_not_instances(self, university):
        # Student is typed rdfs:Class; it must not appear as an instance.
        for cls in university.classes():
            assert EX.Student not in university.instances_of(cls)


class TestNeighborhood:
    def test_neighborhood_subsumption_and_properties(self, university):
        assert university.neighborhood(EX.Student) == frozenset({EX.Person, EX.Course})

    def test_neighborhood_excludes_self(self, university):
        assert EX.Course not in university.neighborhood(EX.Course)

    def test_neighborhood_incoming_properties_count(self, university):
        assert university.neighborhood(EX.Course) == frozenset({EX.Professor, EX.Student})


class TestClassEdges:
    def test_edges_are_undirected_and_deduplicated(self, university):
        edges = university.class_edges()
        for a, b in edges:
            assert a.value <= b.value
        assert (
            (EX.Person, EX.Student) in edges
            or (EX.Student, EX.Person) in edges
        )

    def test_without_subsumption(self, university):
        edges = university.class_edges(include_subsumption=False)
        assert all(
            {a, b} in ({EX.Professor, EX.Course}, {EX.Student, EX.Course}) for a, b in edges
        )


class TestInstanceConnections:
    def test_connection_count(self, university):
        assert university.instance_connections(EX.enrolledIn, EX.Student, EX.Course) == 3
        assert university.instance_connections(EX.teaches, EX.Professor, EX.Course) == 1

    def test_no_instances_gives_zero(self, university):
        assert university.instance_connections(EX.teaches, EX.Agent, EX.Course) == 0

    def test_instance_link_count(self, university):
        # 3 enrolledIn + 1 teaches links touch Student/Course instances.
        assert university.instance_link_count([EX.Student, EX.Course]) == 4


class TestStalenessInvalidation:
    """Mutating a graph after a view is taken must never serve stale values.

    Regression tests for the cache-invalidation audit: every SchemaView
    cache -- including the ``memo`` store the betweenness / semantic
    centrality artefacts live in -- is pinned to the graph's mutation
    counter and self-invalidates on next access.
    """

    def _grown_graph(self) -> Graph:
        g = Graph()
        for cls in (EX.A, EX.B, EX.C):
            g.add(Triple(cls, RDF_TYPE, RDFS_CLASS))
        g.add(Triple(EX.B, RDFS_SUBCLASSOF, EX.A))
        g.add(Triple(EX.p, RDF_TYPE, RDF_PROPERTY))
        g.add(Triple(EX.p, RDFS_DOMAIN, EX.A))
        g.add(Triple(EX.p, RDFS_RANGE, EX.C))
        g.add(Triple(EX.x, RDF_TYPE, EX.A))
        g.add(Triple(EX.y, RDF_TYPE, EX.C))
        g.add(Triple(EX.x, EX.p, EX.y))
        return g

    def test_memo_is_dropped_when_graph_mutates(self):
        view = SchemaView(self._grown_graph())
        view.memo["structural:betweenness"] = ("sentinel-graph", {"stale": 1.0})
        view.graph.add(Triple(EX.D, RDF_TYPE, RDFS_CLASS))
        assert "structural:betweenness" not in view.memo

    def test_stale_betweenness_artefact_is_recomputed_not_served(self):
        from repro.measures.structural import BETWEENNESS_KEY, betweenness_artefact

        view = SchemaView(self._grown_graph())
        graph_before, betweenness_before = betweenness_artefact(view)
        assert BETWEENNESS_KEY in view.memo
        # New hub class wired to everything: betweenness must change.
        view.graph.add(Triple(EX.hub, RDF_TYPE, RDFS_CLASS))
        view.graph.add(Triple(EX.q, RDFS_DOMAIN, EX.hub))
        view.graph.add(Triple(EX.q, RDFS_RANGE, EX.B))
        view.graph.add(Triple(EX.r, RDFS_DOMAIN, EX.hub))
        view.graph.add(Triple(EX.r, RDFS_RANGE, EX.C))
        graph_after, _ = betweenness_artefact(view)
        assert graph_after is not graph_before
        assert EX.hub in graph_after
        assert EX.hub not in graph_before

    def test_stale_semantic_centrality_is_recomputed_not_served(self):
        from repro.measures.semantic import centrality

        view = SchemaView(self._grown_graph())
        before = centrality(view, EX.A)
        assert before > 0.0
        # Removing the only instance link empties every relative
        # cardinality; serving the memoised value would be stale.
        view.graph.remove(Triple(EX.x, EX.p, EX.y))
        assert centrality(view, EX.A) == 0.0

    def test_classes_and_instances_refresh_after_mutation(self):
        view = SchemaView(self._grown_graph())
        assert EX.D not in view.classes()
        assert view.instance_count(EX.A) == 1
        view.graph.add(Triple(EX.D, RDF_TYPE, RDFS_CLASS))
        view.graph.add(Triple(EX.z, RDF_TYPE, EX.A))
        assert EX.D in view.classes()
        assert view.instance_count(EX.A) == 2

    def test_parent_hint_is_dropped_on_mutation(self):
        parent_graph = self._grown_graph()
        parent = SchemaView(parent_graph)
        child_graph = parent_graph.copy()
        added = Triple(EX.z, RDF_TYPE, EX.A)
        child_graph.add(added)
        child = SchemaView(child_graph)
        child.seed_from_parent(parent, [added], [])
        assert child.parent_hint() is not None
        assert child.delta_affected_classes() is not None
        # After a mutation the recorded delta no longer describes the
        # parent->child difference, so the hint must not survive.
        child_graph.add(Triple(EX.w, RDF_TYPE, EX.C))
        assert child.parent_hint() is None
        assert child.delta_affected_classes() is None

    def test_neighborhood_cache_refreshes(self):
        view = SchemaView(self._grown_graph())
        assert EX.C in view.neighborhood(EX.A)
        view.graph.remove(Triple(EX.p, RDFS_RANGE, EX.C))
        assert EX.C not in view.neighborhood(EX.A)

    def test_parent_hint_is_dropped_when_parent_graph_mutates(self):
        # Regression: a re-warmed parent cache (refilled against a mutated
        # parent graph) must not leak into the child through the frozen
        # delta hint -- the hint is revision-pinned to *both* graphs.
        from repro.measures.semantic import centrality

        parent_graph = self._grown_graph()
        parent = SchemaView(parent_graph)
        child_graph = parent_graph.copy()
        added = Triple(EX.z, RDF_TYPE, EX.A)
        child_graph.add(added)
        child = SchemaView(child_graph)
        child.seed_from_parent(parent, [added], [])
        assert centrality(parent, EX.A) > 0.0  # warm the parent cache
        # Mutate the parent graph and re-warm: its self-invalidated cache
        # now holds values for a graph the recorded delta does not describe.
        parent_graph.remove(Triple(EX.x, EX.p, EX.y))
        assert centrality(parent, EX.A) == 0.0
        assert child.parent_hint() is None
        assert centrality(child, EX.A) > 0.0  # cold, correct -- not carried
