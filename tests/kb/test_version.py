"""Unit tests for the versioned knowledge base."""

import pytest

from repro.kb.errors import VersionError
from repro.kb.graph import Graph
from repro.kb.namespaces import EX
from repro.kb.triples import Triple
from repro.kb.version import VersionedKnowledgeBase


def _t(i: int) -> Triple:
    return Triple(EX[f"s{i}"], EX.p, EX[f"o{i}"])


class TestCommit:
    def test_auto_version_ids(self):
        kb = VersionedKnowledgeBase()
        kb.commit(Graph())
        kb.commit(Graph())
        assert kb.version_ids() == ["v1", "v2"]

    def test_explicit_version_id(self):
        kb = VersionedKnowledgeBase()
        kb.commit(Graph(), version_id="release-1")
        assert "release-1" in kb

    def test_duplicate_id_rejected(self):
        kb = VersionedKnowledgeBase()
        kb.commit(Graph(), version_id="v1")
        with pytest.raises(VersionError):
            kb.commit(Graph(), version_id="v1")

    def test_commit_copies_by_default(self):
        kb = VersionedKnowledgeBase()
        g = Graph()
        kb.commit(g)
        g.add(_t(1))
        assert len(kb.latest().graph) == 0

    def test_commit_no_copy_adopts(self):
        kb = VersionedKnowledgeBase()
        g = Graph()
        kb.commit(g, copy=False)
        g.add(_t(1))
        assert len(kb.latest().graph) == 1

    def test_metadata_stored(self):
        kb = VersionedKnowledgeBase()
        v = kb.commit(Graph(), metadata={"author": "curator-1"})
        assert v.metadata["author"] == "curator-1"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            VersionedKnowledgeBase("")


class TestCommitChanges:
    def test_applies_additions_and_deletions(self):
        kb = VersionedKnowledgeBase()
        kb.commit(Graph([_t(1), _t(2)]))
        kb.commit_changes(added=[_t(3)], deleted=[_t(1)])
        latest = kb.latest().graph
        assert _t(3) in latest and _t(2) in latest and _t(1) not in latest

    def test_on_empty_chain_starts_from_nothing(self):
        kb = VersionedKnowledgeBase()
        kb.commit_changes(added=[_t(1)])
        assert len(kb.latest().graph) == 1


class TestAccess:
    def test_version_lookup(self):
        kb = VersionedKnowledgeBase()
        kb.commit(Graph(), version_id="a")
        assert kb.version("a").version_id == "a"

    def test_unknown_version_raises_with_available_ids(self):
        kb = VersionedKnowledgeBase()
        kb.commit(Graph(), version_id="a")
        with pytest.raises(VersionError, match="a"):
            kb.version("missing")

    def test_latest_first(self):
        kb = VersionedKnowledgeBase()
        kb.commit(Graph(), version_id="a")
        kb.commit(Graph(), version_id="b")
        assert kb.first().version_id == "a"
        assert kb.latest().version_id == "b"

    def test_latest_on_empty_raises(self):
        with pytest.raises(VersionError):
            VersionedKnowledgeBase().latest()

    def test_pairs(self):
        kb = VersionedKnowledgeBase()
        for vid in ("a", "b", "c"):
            kb.commit(Graph(), version_id=vid)
        assert [(x.version_id, y.version_id) for x, y in kb.pairs()] == [
            ("a", "b"),
            ("b", "c"),
        ]

    def test_len_and_iter(self):
        kb = VersionedKnowledgeBase()
        kb.commit(Graph())
        assert len(kb) == 1
        assert [v.version_id for v in kb] == ["v1"]

    def test_schema_view_cached(self):
        kb = VersionedKnowledgeBase()
        v = kb.commit(Graph([_t(1)]))
        assert v.schema is v.schema

    def test_version_len(self):
        kb = VersionedKnowledgeBase()
        v = kb.commit(Graph([_t(1), _t(2)]))
        assert len(v) == 2
