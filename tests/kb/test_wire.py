"""Round-trip tests for the binary wire format (:mod:`repro.kb.wire`).

The format's contract is *bit-identity*, not just semantic equality: a
decoded replica must reproduce the exact interned state -- same dense term
ids, same triple sets, same recorded commit deltas -- so that every
derived artefact (measure results, recommendations) is bit-for-bit equal
between a source chain and its decoded copy.  The suite checks exactly
that, property-style over randomized graphs and evolution chains, plus
the compaction interplay the sharded serving plane depends on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kb import wire
from repro.kb.errors import WireFormatError
from repro.kb.graph import Graph
from repro.kb.interning import TermDictionary
from repro.kb.namespaces import EX, RDF_TYPE, XSD
from repro.kb.terms import BNode, IRI, Literal
from repro.kb.triples import Triple
from repro.kb.version import VersionedKnowledgeBase

# -- strategies -------------------------------------------------------------------

_safe_text = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_characters='<>"{}|^`\\', min_codepoint=0x21
    ),
    min_size=1,
    max_size=12,
)

_iris = st.builds(lambda s: IRI(f"http://example.org/{s}"), _safe_text)
_bnodes = st.builds(
    BNode, st.text(alphabet="abcdefghij0123456789_-", min_size=1, max_size=8)
)
_plain_literals = st.builds(Literal, st.text(max_size=16))
_typed_literals = st.builds(
    lambda lex: Literal(lex, datatype=XSD.integer), st.text(max_size=8)
)
_tagged_literals = st.builds(
    lambda lex, tag: Literal(lex, language=tag),
    st.text(max_size=8),
    st.sampled_from(["en", "fr", "de-AT"]),
)
_subjects = st.one_of(_iris, _bnodes)
_objects = st.one_of(_iris, _bnodes, _plain_literals, _typed_literals, _tagged_literals)

_triples = st.builds(Triple, _subjects, _iris, _objects)
_triple_lists = st.lists(_triples, max_size=30)

#: An evolution chain: root triples plus per-step (added, delete-count).
_chains = st.tuples(
    _triple_lists,
    st.lists(st.tuples(_triple_lists, st.integers(0, 5)), max_size=4),
)


def _assert_dictionaries_identical(a: TermDictionary, b: TermDictionary) -> None:
    assert len(a) == len(b)
    for tid in range(len(a)):
        assert a.term(tid) == b.term(tid), tid
    assert wire.dictionaries_identical(a, b)


def _assert_graphs_bit_identical(a: Graph, b: Graph) -> None:
    _assert_dictionaries_identical(a.dictionary, b.dictionary)
    assert len(a) == len(b)
    assert set(a) == set(b)
    for triple in a:
        assert a.dictionary.key_of(triple) == b.dictionary.key_of(triple)


def _build_chain(root, steps) -> VersionedKnowledgeBase:
    kb = VersionedKnowledgeBase("prop")
    kb.commit(Graph(root), version_id="v0", copy=False)
    for index, (added, delete_count) in enumerate(steps, start=1):
        graph = kb.latest().graph.copy()
        victims = graph.sorted_triples()[:delete_count]
        graph.remove_all(victims)
        graph.add_all(added)
        kb.commit(graph, version_id=f"v{index}", copy=False, metadata={"step": str(index)})
    return kb


# -- graphs -----------------------------------------------------------------------


class TestGraphRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(_triple_lists)
    def test_graph_round_trip_is_bit_identical(self, triples):
        graph = Graph(triples)
        decoded = wire.decode_graph(wire.encode_graph(graph))
        _assert_graphs_bit_identical(graph, decoded)

    def test_empty_graph(self):
        decoded = wire.decode_graph(wire.encode_graph(Graph()))
        assert len(decoded) == 0 and len(decoded.dictionary) == 0

    def test_unused_dictionary_terms_keep_their_ids(self):
        graph = Graph([Triple(EX.a, RDF_TYPE, EX.B)])
        # Interned but never used by any triple -- e.g. terms left behind by
        # deleted triples along a chain.  Their ids are still part of the
        # chain's addressing and must survive.
        orphan = graph.dictionary.intern(EX.orphan)
        decoded = wire.decode_graph(wire.encode_graph(graph))
        assert decoded.dictionary.id_of(EX.orphan) == orphan
        _assert_graphs_bit_identical(graph, decoded)

    def test_encoding_is_canonical(self):
        triples = [Triple(EX[f"s{i}"], EX.p, EX[f"o{i}"]) for i in range(10)]
        a = Graph()
        for t in triples:
            a.add(t)
        b = Graph()
        for t in reversed(triples):
            b.add(t)
        # Same interned ids (same insertion order of terms) + sorted key
        # packing = equal graphs encode to equal bytes.
        b2 = Graph(dictionary=a.dictionary)
        b2.add_all(triples)
        assert wire.encode_graph(a) == wire.encode_graph(b2)


class TestTriplesPayload:
    @settings(max_examples=25, deadline=None)
    @given(_triple_lists)
    def test_triples_round_trip(self, triples):
        decoded = wire.decode_triples(wire.encode_triples(triples))
        assert set(decoded) == set(triples)

    def test_empty_batch(self):
        assert wire.decode_triples(wire.encode_triples([])) == []


# -- version chains ---------------------------------------------------------------


class TestKbRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(_chains)
    def test_chain_round_trip_is_bit_identical(self, chain):
        root, steps = chain
        kb = _build_chain(root, steps)
        decoded = wire.decode_kb(wire.encode_kb(kb))
        assert decoded.name == kb.name
        assert decoded.version_ids() == kb.version_ids()
        _assert_dictionaries_identical(
            kb.first().graph.dictionary, decoded.first().graph.dictionary
        )
        for vid in kb.version_ids():
            original, replica = kb.version(vid), decoded.version(vid)
            assert replica.metadata == original.metadata
            _assert_graphs_bit_identical(original.graph, replica.graph)
            original_delta = original.delta_from_parent()
            replica_delta = replica.delta_from_parent()
            if original_delta is None:
                assert replica_delta is None
            else:
                assert replica_delta.added == original_delta.added
                assert replica_delta.deleted == original_delta.deleted

    @settings(max_examples=10, deadline=None)
    @given(_chains)
    def test_compacted_chain_encodes_identically(self, chain):
        root, steps = chain
        kb = _build_chain(root, steps)
        data = wire.encode_kb(kb)
        kb.compact()
        # encode_kb reads the *recorded* deltas: compaction must not force
        # rematerialisation, and the bytes must not change.
        assert wire.encode_kb(kb) == data
        decoded = wire.decode_kb(data)
        for vid in kb.version_ids():
            _assert_graphs_bit_identical(kb.version(vid).graph, decoded.version(vid).graph)

    def test_decoded_replica_compacts_and_rematerialises(self):
        kb = _build_chain(
            [Triple(EX[f"s{i}"], RDF_TYPE, EX.C) for i in range(8)],
            [([Triple(EX[f"a{i}_{j}"], EX.p, EX.o)], 1) for i in range(4) for j in range(2)],
        )
        decoded = wire.decode_kb(wire.encode_kb(kb))
        assert decoded.compact() > 0
        for vid in kb.version_ids():
            assert set(decoded.version(vid).graph) == set(kb.version(vid).graph)

    def test_empty_chain(self):
        decoded = wire.decode_kb(wire.encode_kb(VersionedKnowledgeBase("empty")))
        assert decoded.name == "empty" and len(decoded) == 0


class TestDownstreamBitIdentity:
    """The point of the format: decoded replicas serve identical answers."""

    @pytest.fixture(scope="class")
    def world(self):
        from repro.synthetic.config import (
            EvolutionConfig,
            InstanceConfig,
            SchemaConfig,
            UserConfig,
            WorldConfig,
        )
        from repro.synthetic.world import generate_world

        return generate_world(
            seed=23,
            config=WorldConfig(
                schema=SchemaConfig(n_classes=20, n_properties=12),
                instances=InstanceConfig(base_instances_per_class=6),
                evolution=EvolutionConfig(n_versions=3, changes_per_version=30),
                users=UserConfig(n_users=4, events_per_user=8),
            ),
        )

    def test_measure_results_identical(self, world):
        from repro.measures.base import EvolutionContext
        from repro.measures.catalog import default_catalog

        decoded = wire.decode_kb(wire.encode_kb(world.kb))
        ids = world.kb.version_ids()
        catalog = default_catalog()
        original = catalog.compute_all(
            EvolutionContext(world.kb.version(ids[-2]), world.kb.version(ids[-1]))
        )
        replica = catalog.compute_all(
            EvolutionContext(decoded.version(ids[-2]), decoded.version(ids[-1]))
        )
        assert original.keys() == replica.keys()
        for name in original:
            assert original[name].scores == replica[name].scores, name

    def test_recommendations_identical(self, world):
        from repro.recommender.engine import EngineConfig, RecommenderEngine

        decoded = wire.decode_kb(wire.encode_kb(world.kb))
        original_engine = RecommenderEngine(world.kb, config=EngineConfig(k=5))
        replica_engine = RecommenderEngine(decoded, config=EngineConfig(k=5))
        for user in world.users:
            original = original_engine.recommend(user)
            replica = replica_engine.recommend(user)
            assert [s.item.key for s in original] == [s.item.key for s in replica]
            assert [s.utility for s in original] == [s.utility for s in replica]
            assert original.explanations == replica.explanations

    def test_measure_results_identical_after_compaction_round_trip(self, world):
        from repro.measures.base import EvolutionContext
        from repro.measures.catalog import default_catalog

        data = wire.encode_kb(world.kb)
        decoded = wire.decode_kb(data)
        decoded.compact()  # middle snapshots rebuild through delta replay
        ids = world.kb.version_ids()
        catalog = default_catalog()
        original = catalog.compute_all(
            EvolutionContext(world.kb.version(ids[0]), world.kb.version(ids[1]))
        )
        replica = catalog.compute_all(
            EvolutionContext(decoded.version(ids[0]), decoded.version(ids[1]))
        )
        for name in original:
            assert original[name].scores == replica[name].scores, name


# -- malformed input --------------------------------------------------------------


class TestMalformedPayloads:
    def test_bad_magic(self):
        with pytest.raises(WireFormatError):
            wire.decode_graph(b"NOPE" + b"\x01" + b"\x00" * 16)

    def test_truncated(self):
        data = wire.encode_graph(Graph([Triple(EX.a, RDF_TYPE, EX.B)]))
        with pytest.raises(WireFormatError):
            wire.decode_graph(data[: len(data) // 2])

    def test_wrong_container(self):
        graph_bytes = wire.encode_graph(Graph())
        with pytest.raises(WireFormatError):
            wire.decode_kb(graph_bytes)

    def test_unsupported_version(self):
        data = wire.encode_graph(Graph())
        corrupted = data[:4] + bytes([99]) + data[5:]
        with pytest.raises(WireFormatError):
            wire.decode_graph(corrupted)

    def test_invalid_utf8_in_string_blob(self):
        data = wire.encode_graph(Graph([Triple(EX.abcdefgh, RDF_TYPE, EX.B)]))
        # Clobber part of the string blob (the tail of the payload) with a
        # byte sequence that is invalid UTF-8 at every alignment.
        corrupted = data[:-6] + b"\xff\xff\xff\xff\xff\xff"
        with pytest.raises(WireFormatError):
            wire.decode_graph(corrupted)

    def test_flipped_bits_never_escape_wire_errors(self):
        # Whatever a corrupt payload does, it must fail inside the module's
        # documented exception contract (or decode to a valid graph when
        # the flip lands in padding) -- never leak numpy/unicode internals.
        data = wire.encode_graph(
            Graph([Triple(EX[f"s{i}"], RDF_TYPE, EX[f"C{i}"]) for i in range(5)])
        )
        for position in range(8, len(data), 7):
            corrupted = data[:position] + bytes([data[position] ^ 0xFF]) + data[position + 1 :]
            try:
                wire.decode_graph(corrupted)
            except Exception as exc:
                # KnowledgeBaseError covers WireFormatError and TermError
                # (a flip may corrupt term *content* into an invalid term).
                assert type(exc).__module__.startswith("repro."), (position, exc)


# -- warm-handoff artefact frames --------------------------------------------------


class TestArtefactFrames:
    """The RPWA codec: measure caches round-trip bit-exactly, canonically."""

    @pytest.fixture()
    def graph(self):
        graph = Graph([Triple(EX[f"s{i}"], RDF_TYPE, EX[f"C{i % 3}"]) for i in range(6)])
        return graph

    def _artefacts(self):
        return {
            "v1": {
                "betweenness": {EX.C0: 0.125, EX.C1: 0.375, EX.C2: 0.0},
                "rc": {(EX.p, EX.C0, EX.C1): 0.5, (EX.p, EX.C1, EX.C2): 1.0 / 3.0},
                "centrality": {EX.C0: 2.0, EX.C1: 0.1 + 0.2},
            },
            "v2": {"betweenness": {EX.C2: 7.25}},
        }

    def test_round_trip_is_bit_identical(self, graph):
        dictionary = graph.dictionary
        for term in (EX.p,):
            dictionary.intern(term)
        artefacts = self._artefacts()
        decoded = wire.decode_artefacts(
            wire.encode_artefacts(artefacts, dictionary), dictionary
        )
        assert decoded == artefacts
        # Float bit-identity, not approximate equality: struct-pack both sides.
        import struct

        for vid, entry in artefacts.items():
            for key, cache in entry.items():
                for k, v in cache.items():
                    assert struct.pack("<d", v) == struct.pack(
                        "<d", decoded[vid][key][k]
                    ), (vid, key, k)

    def test_encoding_is_canonical(self, graph):
        dictionary = graph.dictionary
        dictionary.intern(EX.p)
        artefacts = self._artefacts()
        shuffled = {
            vid: {key: dict(reversed(list(cache.items()))) for key, cache in entry.items()}
            for vid, entry in reversed(list(artefacts.items()))
        }
        assert wire.encode_artefacts(artefacts, dictionary) == wire.encode_artefacts(
            shuffled, dictionary
        )

    def test_partial_caches_encode_only_their_flags(self, graph):
        dictionary = graph.dictionary
        artefacts = {"v9": {"centrality": {EX.C0: 1.5}}}
        decoded = wire.decode_artefacts(
            wire.encode_artefacts(artefacts, dictionary), dictionary
        )
        assert decoded == artefacts
        assert set(decoded["v9"]) == {"centrality"}

    def test_unknown_term_is_a_wire_error(self, graph):
        with pytest.raises(WireFormatError):
            wire.encode_artefacts(
                {"v1": {"betweenness": {EX.never_interned: 1.0}}}, graph.dictionary
            )

    def test_out_of_range_id_is_a_wire_error(self, graph):
        dictionary = graph.dictionary
        data = wire.encode_artefacts({"v1": {"centrality": {EX.C0: 1.0}}}, dictionary)
        small = TermDictionary()
        with pytest.raises(WireFormatError):
            wire.decode_artefacts(data, small)

    def test_trailing_bytes_are_a_wire_error(self, graph):
        data = wire.encode_artefacts(
            {"v1": {"centrality": {EX.C0: 1.0}}}, graph.dictionary
        )
        with pytest.raises(WireFormatError):
            wire.decode_artefacts(data + b"\x00", graph.dictionary)


class TestStorePayloadArtefactFrame:
    """The optional third store frame stays invisible to legacy decoders."""

    def test_full_unpack_round_trips_all_three_frames(self):
        data = wire.pack_store_payload(b"base", b"log", artefacts=b"warm")
        assert wire.unpack_store_payload(data) == (b"base", b"log")
        assert wire.unpack_store_payload_full(data) == (b"base", b"log", b"warm")

    def test_absent_artefacts_decode_to_none(self):
        data = wire.pack_store_payload(b"base", b"log")
        assert wire.unpack_store_payload_full(data) == (b"base", b"log", None)

    def test_zero_filled_slack_decodes_to_none(self):
        # A shared-memory segment rounds up to page size: the bytes past
        # the payload are zero, and must not be mistaken for a frame.
        data = wire.pack_store_payload(b"base", b"log") + b"\x00" * 64
        assert wire.unpack_store_payload_full(data) == (b"base", b"log", None)
        data = wire.pack_store_payload(b"base", b"log", artefacts=b"warm") + b"\x00" * 64
        assert wire.unpack_store_payload_full(data) == (b"base", b"log", b"warm")

    def test_sizes_account_for_the_optional_frame(self):
        with_frame = wire.store_payload_size(4, 3, artefacts_len=4)
        without = wire.store_payload_size(4, 3)
        assert with_frame == without + 8 + 4
        buffer = bytearray(with_frame)
        written = wire.pack_store_payload_into(buffer, b"base", b"log", artefacts=b"warm")
        assert written == with_frame
        assert bytes(buffer) == wire.pack_store_payload(b"base", b"log", artefacts=b"warm")
