"""Archiving policies composed with the binary wire format.

A thinned archive is exactly what a shard would bootstrap from when a
tenant's history has been aged out; these tests serialise chains thinned
by :class:`KeepLastN` / :class:`ExponentialThinning`, deserialise them --
including in a genuinely *fresh process* with no shared interpreter state
-- and assert the end-to-end delta invariant (first -> latest changes
preserved) still holds on the replica.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.deltas.lowlevel import LowLevelDelta
from repro.kb import wire
from repro.kb.archive import ExponentialThinning, KeepLastN
from repro.kb.graph import Graph
from repro.kb.namespaces import EX
from repro.kb.triples import Triple
from repro.kb.version import VersionedKnowledgeBase

_SRC_DIR = Path(repro.__file__).resolve().parents[1]

#: Run in the child: decode the wire payload and print the canonical
#: end-to-end delta (sorted N-Triples lines of added / deleted).
_CHILD_SCRIPT = """
import json, sys
from repro.deltas.lowlevel import LowLevelDelta
from repro.kb import wire

kb = wire.decode_kb(open(sys.argv[1], "rb").read())
delta = LowLevelDelta.compute(kb.first().graph, kb.latest().graph)
print(json.dumps({
    "versions": kb.version_ids(),
    "added": sorted(t.n3() for t in delta.added),
    "deleted": sorted(t.n3() for t in delta.deleted),
    "dictionary_size": len(kb.first().graph.dictionary),
}))
"""


def _chain(n_versions: int = 8, step: int = 4) -> VersionedKnowledgeBase:
    """A chain that both adds and deletes, so thinning has real deltas."""
    kb = VersionedKnowledgeBase("audit")
    graph = Graph(Triple(EX[f"seed{i}"], EX.p, EX.o) for i in range(step))
    kb.commit(graph, version_id="v1", copy=False)
    counter = 0
    for index in range(2, n_versions + 1):
        graph = kb.latest().graph.copy()
        victims = graph.sorted_triples()[:1]
        graph.remove_all(victims)
        for _ in range(step):
            graph.add(Triple(EX[f"s{counter}"], EX.p, EX[f"o{counter % 3}"]))
            counter += 1
        kb.commit(graph, version_id=f"v{index}", copy=False)
    return kb


def _end_to_end(kb: VersionedKnowledgeBase) -> LowLevelDelta:
    return LowLevelDelta.compute(kb.first().graph, kb.latest().graph)


@pytest.mark.parametrize(
    "policy", [KeepLastN(2), KeepLastN(4), ExponentialThinning(2)],
    ids=["keep_last_2", "keep_last_4", "exp_thin_2"],
)
class TestThinnedChainRoundTrip:
    def test_in_process_round_trip_preserves_invariant(self, policy):
        kb = _chain()
        archive = policy.apply(kb)
        replica = wire.decode_kb(wire.encode_kb(archive))
        assert replica.version_ids() == archive.version_ids()
        original = _end_to_end(kb)
        decoded = _end_to_end(replica)
        # The invariant chain: original == archive == wire-decoded archive.
        assert decoded.added == original.added
        assert decoded.deleted == original.deleted
        for vid in archive.version_ids():
            assert set(replica.version(vid).graph) == set(archive.version(vid).graph)

    def test_fresh_process_decode_preserves_invariant(self, policy, tmp_path):
        kb = _chain()
        archive = policy.apply(kb)
        payload = tmp_path / "archive.wire"
        payload.write_bytes(wire.encode_kb(archive))

        env = dict(os.environ)
        env["PYTHONPATH"] = str(_SRC_DIR) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        result = subprocess.run(
            [sys.executable, "-c", _CHILD_SCRIPT, str(payload)],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        child = json.loads(result.stdout)

        original = _end_to_end(kb)
        assert child["versions"] == archive.version_ids()
        assert child["added"] == sorted(t.n3() for t in original.added)
        assert child["deleted"] == sorted(t.n3() for t in original.deleted)
        # Interned state crossed the process boundary bit-identically.
        assert child["dictionary_size"] == len(archive.first().graph.dictionary)


def test_thinned_then_compacted_archive_still_encodes(tmp_path):
    # compact() the thinned archive (drop middle snapshots) before encoding:
    # the wire layer must read recorded deltas, not force rematerialisation.
    kb = _chain()
    archive = KeepLastN(4).apply(kb)
    data_before = wire.encode_kb(archive)
    assert archive.compact() > 0
    assert wire.encode_kb(archive) == data_before
    replica = wire.decode_kb(data_before)
    original = _end_to_end(kb)
    decoded = _end_to_end(replica)
    assert decoded.added == original.added
    assert decoded.deleted == original.deleted
