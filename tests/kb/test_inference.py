"""Tests for RDFS-lite materialisation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kb.graph import Graph
from repro.kb.inference import entails, rdfs_closure
from repro.kb.namespaces import (
    EX,
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
)
from repro.kb.schema import SchemaView
from repro.kb.terms import Literal
from repro.kb.triples import Triple


class TestRules:
    def test_rdfs11_subclass_transitivity(self):
        g = Graph(
            [
                Triple(EX.A, RDFS_SUBCLASSOF, EX.B),
                Triple(EX.B, RDFS_SUBCLASSOF, EX.C),
            ]
        )
        closed = rdfs_closure(g)
        assert Triple(EX.A, RDFS_SUBCLASSOF, EX.C) in closed

    def test_rdfs9_type_inheritance(self):
        g = Graph(
            [
                Triple(EX.Student, RDFS_SUBCLASSOF, EX.Person),
                Triple(EX.ada, RDF_TYPE, EX.Student),
            ]
        )
        closed = rdfs_closure(g)
        assert Triple(EX.ada, RDF_TYPE, EX.Person) in closed

    def test_rdfs9_through_chain(self):
        g = Graph(
            [
                Triple(EX.A, RDFS_SUBCLASSOF, EX.B),
                Triple(EX.B, RDFS_SUBCLASSOF, EX.C),
                Triple(EX.x, RDF_TYPE, EX.A),
            ]
        )
        closed = rdfs_closure(g)
        assert Triple(EX.x, RDF_TYPE, EX.C) in closed

    def test_rdfs2_domain(self):
        g = Graph(
            [
                Triple(EX.teaches, RDFS_DOMAIN, EX.Professor),
                Triple(EX.turing, EX.teaches, EX.cs1),
            ]
        )
        closed = rdfs_closure(g)
        assert Triple(EX.turing, RDF_TYPE, EX.Professor) in closed

    def test_rdfs3_range(self):
        g = Graph(
            [
                Triple(EX.teaches, RDFS_RANGE, EX.Course),
                Triple(EX.turing, EX.teaches, EX.cs1),
            ]
        )
        closed = rdfs_closure(g)
        assert Triple(EX.cs1, RDF_TYPE, EX.Course) in closed

    def test_rdfs3_skips_literals(self):
        g = Graph(
            [
                Triple(EX.name, RDFS_RANGE, EX.NameThing),
                Triple(EX.ada, EX.name, Literal("Ada")),
            ]
        )
        closed = rdfs_closure(g)
        assert not list(closed.match(None, RDF_TYPE, EX.NameThing))

    def test_rdfs7_subproperty(self):
        g = Graph(
            [
                Triple(EX.advises, RDFS_SUBPROPERTYOF, EX.knows),
                Triple(EX.turing, EX.advises, EX.ada),
            ]
        )
        closed = rdfs_closure(g)
        assert Triple(EX.turing, EX.knows, EX.ada) in closed

    def test_rdfs5_subproperty_transitivity(self):
        g = Graph(
            [
                Triple(EX.p, RDFS_SUBPROPERTYOF, EX.q),
                Triple(EX.q, RDFS_SUBPROPERTYOF, EX.r),
            ]
        )
        closed = rdfs_closure(g)
        assert Triple(EX.p, RDFS_SUBPROPERTYOF, EX.r) in closed

    def test_rule_interaction_subproperty_then_domain(self):
        """rdfs7 output feeds rdfs2: advising implies teaching's domain type."""
        g = Graph(
            [
                Triple(EX.advises, RDFS_SUBPROPERTYOF, EX.teaches),
                Triple(EX.teaches, RDFS_DOMAIN, EX.Professor),
                Triple(EX.turing, EX.advises, EX.ada),
            ]
        )
        closed = rdfs_closure(g)
        assert Triple(EX.turing, RDF_TYPE, EX.Professor) in closed


class TestClosureProperties:
    def test_input_preserved(self):
        g = Graph([Triple(EX.a, EX.p, EX.b)])
        closed = rdfs_closure(g)
        assert Triple(EX.a, EX.p, EX.b) in closed

    def test_input_not_mutated(self):
        g = Graph(
            [
                Triple(EX.Student, RDFS_SUBCLASSOF, EX.Person),
                Triple(EX.ada, RDF_TYPE, EX.Student),
            ]
        )
        before = len(g)
        rdfs_closure(g)
        assert len(g) == before

    def test_cycle_terminates(self):
        g = Graph(
            [
                Triple(EX.A, RDFS_SUBCLASSOF, EX.B),
                Triple(EX.B, RDFS_SUBCLASSOF, EX.A),
                Triple(EX.x, RDF_TYPE, EX.A),
            ]
        )
        closed = rdfs_closure(g)
        assert Triple(EX.x, RDF_TYPE, EX.B) in closed

    def test_entails(self):
        g = Graph(
            [
                Triple(EX.Student, RDFS_SUBCLASSOF, EX.Person),
                Triple(EX.ada, RDF_TYPE, EX.Student),
            ]
        )
        assert entails(g, Triple(EX.ada, RDF_TYPE, EX.Person))
        assert entails(g, Triple(EX.ada, RDF_TYPE, EX.Student))
        assert not entails(g, Triple(EX.ada, RDF_TYPE, EX.Course))

    def test_closure_affects_instance_counts(self):
        """Materialisation makes transitive membership direct (the reason
        the semantic measures may want closed graphs)."""
        g = Graph(
            [
                Triple(EX.Student, RDFS_SUBCLASSOF, EX.Person),
                Triple(EX.ada, RDF_TYPE, EX.Student),
            ]
        )
        raw = SchemaView(g)
        closed = SchemaView(rdfs_closure(g))
        assert raw.instance_count(EX.Person) == 0
        assert closed.instance_count(EX.Person) == 1


# -- property tests --------------------------------------------------------------

_classes = st.integers(0, 3).map(lambda i: EX[f"C{i}"])
_instances = st.integers(0, 3).map(lambda i: EX[f"x{i}"])
_props = st.integers(0, 2).map(lambda i: EX[f"p{i}"])

_triples = st.one_of(
    st.builds(lambda a, b: Triple(a, RDFS_SUBCLASSOF, b), _classes, _classes),
    st.builds(lambda x, c: Triple(x, RDF_TYPE, c), _instances, _classes),
    st.builds(lambda p, c: Triple(p, RDFS_DOMAIN, c), _props, _classes),
    st.builds(lambda p, c: Triple(p, RDFS_RANGE, c), _props, _classes),
    st.builds(lambda x, p, y: Triple(x, p, y), _instances, _props, _instances),
    st.builds(lambda p, q: Triple(p, RDFS_SUBPROPERTYOF, q), _props, _props),
)


@settings(max_examples=60, deadline=None)
@given(triples=st.sets(_triples, max_size=14))
def test_closure_is_idempotent(triples):
    g = Graph(triples)
    once = rdfs_closure(g)
    twice = rdfs_closure(once)
    assert once == twice


@settings(max_examples=60, deadline=None)
@given(triples=st.sets(_triples, max_size=14))
def test_closure_is_monotone_and_contains_input(triples):
    g = Graph(triples)
    closed = rdfs_closure(g)
    for t in g:
        assert t in closed
    assert len(closed) >= len(g)
